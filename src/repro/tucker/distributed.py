"""Distributed Boolean Tucker factorization on the simulated engine.

The journal extension of DBTF generalizes its distributed machinery from CP
to Tucker.  The key observation that keeps the row-summation cache usable:
in the mode-1 matricized form

    X_(1)  ≈  A ∘ [ G_(1) (C ⊗ B)ᵀ ]

the coverage of component p inside PVM block k is

    OR over (q, r) with g_pqr AND c_kr of  b_:q
      =  row p of  (S_u ∘ Bᵀ),   where  S_u[p, q] = OR_r g_pqr AND u_r

and ``u = c_k:``.  The *effective basis matrix* ``S_u ∘ Bᵀ`` therefore only
depends on the outer row's bit pattern ``u`` — there are at most
``min(K, 2**R3)`` distinct patterns — so each partition builds one
row-summation cache table per distinct pattern and the CP update kernel
carries over: key = the target row's bitmask, candidate-1 evaluated as a
delta over newly covered cells.

The binary core is updated on the driver (entry-wise greedy against
coverage counts, as in :mod:`repro.tucker.decompose`); in the journal
algorithm the core update is likewise a driver-coordinated step since the
core is tiny compared to the factors.
"""

from __future__ import annotations

import numpy as np

from ..bitops import BitMatrix, boolean_matmul, packing
from ..bitops.ops import xor_popcount_rows
from ..core.cache import RowSummationCache
from ..observability.trace import kernel_span
from ..core.decompose import prepare_partitioned_unfoldings
from ..core.partition import PartitionData
from ..core.update import _masks_with_bit_cleared
from ..distengine import DEFAULT_CLUSTER, Distributed, SimulatedRuntime
from ..tensor import SparseBoolTensor
from .decompose import (
    BooleanTuckerConfig,
    BooleanTuckerResult,
    _sampled_tucker_factors,
    _update_core,
)

__all__ = ["dbtf_tucker", "TuckerCachedPartition", "update_tucker_factor"]


class TuckerCachedPartition:
    """A partition plus per-pattern effective-basis caches.

    Blocks are grouped by the bit pattern of their PVM's outer-factor row;
    each distinct pattern gets the effective basis ``S_u ∘ innerᵀ`` and a
    full row-summation cache over its ``R_target`` rows.
    """

    __slots__ = ("data", "entries", "n_rows")

    def __init__(
        self,
        data: PartitionData,
        outer: BitMatrix,
        inner: BitMatrix,
        core_perm: np.ndarray,
        group_size: int,
    ):
        self.data = data
        self.n_rows = data.n_rows
        inner_dense = inner.to_dense().astype(np.int64)
        caches: dict[int, tuple[RowSummationCache, np.ndarray]] = {}
        # (block, cache, sliced tables, coverage rows sliced, tensor words)
        self.entries: list[tuple] = []
        build_span = kernel_span(
            "tucker.cacheBuild", n_blocks=len(data.plan.blocks)
        )
        with build_span:
            self._build(data, outer, inner, inner_dense, caches,
                        core_perm, group_size)
            build_span.set(n_patterns=len(caches))

    def _build(self, data, outer, inner, inner_dense, caches,
               core_perm, group_size) -> None:
        for block, tensor_words in zip(data.plan.blocks, data.block_words):
            pattern = outer.row_mask(block.pvm_index)
            if pattern not in caches:
                bits = np.array(
                    [(pattern >> r) & 1 for r in range(outer.n_cols)],
                    dtype=np.int64,
                )
                selector = (core_perm.astype(np.int64) @ bits) > 0  # (Rt, Ri)
                coverage_dense = ((selector.astype(np.int64) @ inner_dense.T) > 0)
                coverage = BitMatrix.from_dense(coverage_dense.astype(np.uint8))
                cache = RowSummationCache(coverage.transpose(), group_size)
                caches[pattern] = (cache, coverage.words)
            cache, coverage_words = caches[pattern]
            tables = cache.tables_for(block.start, block.stop)
            if block.is_full:
                coverage_sliced = coverage_words
            else:
                coverage_sliced = packing.slice_bits(
                    coverage_words, block.start, block.stop
                )
            self.entries.append(
                (block, cache, tables, coverage_sliced, tensor_words)
            )

    def column_errors(
        self, masks_if_zero: np.ndarray, column: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Partition-local errors for both values of ``target[:, column]``.

        Unlike CP, the cache key is the target row's mask alone — the outer
        factor's influence is baked into each block's pattern table.
        """
        with kernel_span("tucker.columnErrors", rows=self.n_rows,
                         column=column, n_blocks=len(self.entries)):
            return self._column_errors(masks_if_zero, column)

    def _column_errors(
        self, masks_if_zero: np.ndarray, column: int
    ) -> tuple[np.ndarray, np.ndarray]:
        error_if_zero = np.zeros(self.n_rows, dtype=np.int64)
        delta_if_one = np.zeros(self.n_rows, dtype=np.int64)
        keys = None
        for block, cache, tables, coverage_sliced, tensor_words in self.entries:
            if keys is None:
                keys = cache.group_keys(masks_if_zero)
            rec_zero = cache.fetch(tables, keys)
            error_if_zero += xor_popcount_rows(rec_zero, tensor_words)
            addition = coverage_sliced[column]
            newly = addition[None, :] & ~rec_zero
            delta_if_one += packing.popcount_rows(newly)
            delta_if_one -= 2 * packing.popcount_rows(newly & tensor_words)
        return error_if_zero, error_if_zero + delta_if_one


class _BuildTuckerCache:
    """Stage payload: build per-pattern effective-basis caches per partition.

    Module-level and attribute-carrying (instead of a closure over driver
    locals) so it pickles to process-pool workers.
    """

    __slots__ = ("outer", "inner", "core_perm", "group_size")

    def __init__(self, outer: BitMatrix, inner: BitMatrix, core_perm, group_size):
        self.outer = outer
        self.inner = inner
        self.core_perm = core_perm
        self.group_size = group_size

    def __call__(self, data) -> TuckerCachedPartition:
        return TuckerCachedPartition(
            data, self.outer, self.inner, self.core_perm, self.group_size
        )


class _TuckerColumnErrorsTask:
    """Legacy stage payload: one Tucker column's error evaluation.

    Embeds the full target masks per task — the traffic the broadcast-handle
    path eliminates.  Kept behind ``ClusterConfig(handle_broadcasts=False)``
    as the A/B baseline.
    """

    __slots__ = ("masks_if_zero", "column")

    def __init__(self, masks_if_zero: np.ndarray, column: int):
        self.masks_if_zero = masks_if_zero
        self.column = column

    def __call__(self, cached: TuckerCachedPartition):
        return cached.column_errors(self.masks_if_zero, self.column)


class _BuildTuckerCacheFromHandle:
    """Stage payload: build the Tucker caches from a broadcast handle.

    The handle resolves to ``[target_words, outer_words, inner_words,
    core_perm]`` worker-side; only matrix dimensions ride in the payload.
    """

    __slots__ = ("factors", "outer_shape", "inner_shape", "group_size")

    def __init__(self, factors, outer_shape, inner_shape, group_size):
        self.factors = factors
        self.outer_shape = outer_shape
        self.inner_shape = inner_shape
        self.group_size = group_size

    def __call__(self, data) -> TuckerCachedPartition:
        _, outer_words, inner_words, core_perm = self.factors.value
        outer = BitMatrix(*self.outer_shape, outer_words)
        inner = BitMatrix(*self.inner_shape, inner_words)
        return TuckerCachedPartition(
            data, outer, inner, core_perm, self.group_size
        )


class _TuckerColumnErrorsDeltaTask:
    """Stage payload: one Tucker column's errors, delta-only traffic.

    Same reconstruction discipline as the CP
    :class:`~repro.core.update._ColumnErrorsDeltaTask`: base target words
    from the handle, prior columns re-applied from packed deltas, this
    column cleared in place — a pure function of the payload, so results
    stay bit-identical across backends.
    """

    __slots__ = ("factors", "column", "deltas", "n_rows")

    def __init__(self, factors, column: int, deltas: tuple, n_rows: int):
        self.factors = factors
        self.column = column
        self.deltas = deltas
        self.n_rows = n_rows

    def __call__(self, cached: TuckerCachedPartition):
        target_words = self.factors.value[0]
        masks = target_words.copy()
        for applied_column, delta in self.deltas:
            chosen = np.unpackbits(delta.value, count=self.n_rows)
            packing.set_bit_column(masks, applied_column, chosen)
        word_index, offset = divmod(self.column, packing.WORD_BITS)
        masks[:, word_index] &= ~np.uint64(1 << offset)
        return cached.column_errors(masks, self.column)


def update_tucker_factor(
    data_rdd: Distributed,
    target: BitMatrix,
    outer: BitMatrix,
    inner: BitMatrix,
    core_perm: np.ndarray,
    group_size: int,
    runtime: SimulatedRuntime,
) -> tuple[BitMatrix, int]:
    """Distributed greedy column update of one Tucker factor."""
    handles = runtime.config.handle_broadcasts
    factors = runtime.broadcast(
        [target.words, outer.words, inner.words, core_perm],
        name="updateTuckerFactor.broadcast",
    )
    # Persisted for the same reason as the CP update: every column stage
    # reuses the per-pattern caches, and the plan layer fuses the build
    # into the first column's stage via a persist tap.
    build_task = (
        _BuildTuckerCacheFromHandle(
            factors, outer.shape, inner.shape, group_size
        )
        if handles
        else _BuildTuckerCache(outer, inner, core_perm, group_size)
    )
    cached_rdd = data_rdd.map(build_task, name="cacheTuckerSummations").persist()
    updated = target.copy()
    error_after = 0
    deltas: list[tuple] = []
    for column in range(target.n_cols):
        if handles:
            task = _TuckerColumnErrorsDeltaTask(
                factors, column, tuple(deltas), updated.n_rows
            )
        else:
            task = _TuckerColumnErrorsTask(
                _masks_with_bit_cleared(updated.words, column), column
            )
        per_partition = cached_rdd.map(
            task, name="tuckerColumnErrors"
        ).collect(name="collectTuckerColumnErrors")
        error_if_zero = np.zeros(updated.n_rows, dtype=np.int64)
        error_if_one = np.zeros(updated.n_rows, dtype=np.int64)
        for partial_zero, partial_one in per_partition:
            error_if_zero += partial_zero
            error_if_one += partial_one
        chosen = (error_if_one < error_if_zero).astype(np.uint8)
        updated.set_column(column, chosen)
        error_after = int(np.minimum(error_if_zero, error_if_one).sum())
        delta = runtime.broadcast(np.packbits(chosen), name="tuckerColumnUpdate")
        if handles:
            deltas.append((column, delta))
    cached_rdd.unpersist()
    return updated, error_after


# Per mode: (outer factor index, inner factor index, core permutation) such
# that S_u[t, i] = OR_o core_perm[t, i, o] AND u_o with u the outer row.
_TUCKER_MODE_ROLES = {
    0: (2, 1, (0, 1, 2)),  # update A: outer C (R3), inner B (R2)
    1: (2, 0, (1, 0, 2)),  # update B: outer C (R3), inner A (R1)
    2: (1, 0, (2, 0, 1)),  # update C: outer B (R2), inner A (R1)
}


def dbtf_tucker(
    tensor: SparseBoolTensor,
    core_shape: tuple[int, int, int] | None = None,
    config: BooleanTuckerConfig | None = None,
    n_partitions: int = 16,
    cache_group_size: int = 15,
    runtime: SimulatedRuntime | None = None,
    backend: str = "serial",
    n_workers: int | None = None,
) -> BooleanTuckerResult:
    """Distributed Boolean Tucker decomposition (journal-style DBTF).

    Factor updates run through the simulated engine with per-pattern
    effective-basis caches; core updates run on the driver.  Results match
    :func:`repro.tucker.boolean_tucker` for the same initialization because
    both implement the same greedy updates.  ``backend``/``n_workers``
    select the host-side stage executor when no ``runtime`` is supplied;
    results and metered costs are backend-invariant.
    """
    if tensor.ndim != 3:
        raise ValueError(
            f"dbtf_tucker factorizes three-way tensors, got {tensor.ndim}-way"
        )
    if config is None:
        if core_shape is None:
            raise ValueError("either core_shape or config must be provided")
        config = BooleanTuckerConfig(core_shape=core_shape)
    if n_partitions <= 0:
        raise ValueError(f"n_partitions must be positive, got {n_partitions}")
    owns_runtime = runtime is None
    if runtime is None:
        runtime = SimulatedRuntime(
            DEFAULT_CLUSTER.with_backend(backend, n_workers)
        )

    mode_rdds: list[Distributed] = []
    try:
        mode_rdds = prepare_partitioned_unfoldings(tensor, n_partitions, runtime)
        dense = tensor.to_dense()

        best: BooleanTuckerResult | None = None
        for restart in range(config.n_initial_sets):
            rng = np.random.default_rng(config.seed + restart)
            candidate = _solve_once_distributed(
                tensor, dense, mode_rdds, config, cache_group_size, runtime, rng
            )
            if best is None or candidate.error < best.error:
                best = candidate
    finally:
        for rdd in mode_rdds:
            rdd.unpersist()
        if owns_runtime:
            runtime.close()
    return best


def _solve_once_distributed(
    tensor: SparseBoolTensor,
    dense: np.ndarray,
    mode_rdds: list[Distributed],
    config: BooleanTuckerConfig,
    cache_group_size: int,
    runtime: SimulatedRuntime,
    rng: np.random.Generator,
) -> BooleanTuckerResult:
    factors_dense = list(_sampled_tucker_factors(tensor, config, rng))
    core = np.zeros(config.core_shape, dtype=np.uint8)
    for r in range(min(config.core_shape)):
        core[r, r, r] = 1

    errors: list[int] = []
    converged = False
    threshold = config.tolerance * max(tensor.nnz, 1)
    for _ in range(config.max_iterations):
        for mode in range(3):
            outer_index, inner_index, permutation = _TUCKER_MODE_ROLES[mode]
            updated, _ = update_tucker_factor(
                mode_rdds[mode],
                BitMatrix.from_dense(factors_dense[mode]),
                BitMatrix.from_dense(factors_dense[outer_index]),
                BitMatrix.from_dense(factors_dense[inner_index]),
                core.transpose(permutation),
                cache_group_size,
                runtime,
            )
            factors_dense[mode] = updated.to_dense()
        core, error = _update_core(dense, core, tuple(factors_dense))
        if errors and errors[-1] - error <= threshold:
            errors.append(error)
            converged = True
            break
        errors.append(error)

    return BooleanTuckerResult(
        core=SparseBoolTensor.from_dense(core),
        factors=tuple(BitMatrix.from_dense(factor) for factor in factors_dense),
        error=errors[-1],
        input_nnz=tensor.nnz,
        errors_per_iteration=tuple(errors),
        converged=converged,
    )
