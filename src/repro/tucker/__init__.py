"""Boolean Tucker decomposition (extension beyond the conference paper)."""

from .decompose import (
    BooleanTuckerConfig,
    BooleanTuckerResult,
    boolean_tucker,
    tucker_reconstruct,
)
from .distributed import dbtf_tucker, update_tucker_factor

__all__ = [
    "boolean_tucker",
    "dbtf_tucker",
    "update_tucker_factor",
    "tucker_reconstruct",
    "BooleanTuckerConfig",
    "BooleanTuckerResult",
]
