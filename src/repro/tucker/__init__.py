"""Boolean Tucker decomposition (extension beyond the conference paper)."""

from .decompose import (
    BooleanTuckerConfig,
    BooleanTuckerResult,
    boolean_tucker,
    boolean_tucker_steps,
    tucker_reconstruct,
)
from .distributed import dbtf_tucker, update_tucker_factor

__all__ = [
    "boolean_tucker",
    "boolean_tucker_steps",
    "dbtf_tucker",
    "update_tucker_factor",
    "tucker_reconstruct",
    "BooleanTuckerConfig",
    "BooleanTuckerResult",
]
