"""Boolean Tucker decomposition — the paper's natural extension.

The conference paper covers Boolean CP; its journal extension (and the
Walk'n'Merge line of work) generalizes to **Boolean Tucker**:

    x_ijk  ≈  OR over (p, q, r) of  g_pqr AND a_ip AND b_jq AND c_kr

with a binary core tensor **G** (R1 x R2 x R3) and binary factor matrices
A (I x R1), B (J x R2), C (K x R3).  CP is the special case of a
hyper-diagonal core.

The solver is the same alternating greedy scheme as DBTF's CP updates,
adapted to the Tucker structure:

* each factor matrix is updated column by column; component p's coverage
  slab ``Cov_p = (B ∘ G_p ∘ Cᵀ)`` is precomputed once per update, so a row
  entry's error delta only needs the newly covered cells;
* the core is updated entry by entry against the coverage *count* of all
  other core entries, so flipping ``g_pqr`` is an O(IJK) delta, not a full
  reconstruction.

This module is single-machine (an extension, not the paper's headline
algorithm) and works on dense Boolean arrays at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from ..bitops import BitMatrix
from ..core.steps import StepEvent, drive
from ..resilience import CheckpointConfig, CheckpointManager, config_fingerprint
from ..tensor import SparseBoolTensor

__all__ = [
    "BooleanTuckerConfig",
    "BooleanTuckerResult",
    "boolean_tucker",
    "boolean_tucker_steps",
    "tucker_reconstruct",
]


@dataclass(frozen=True)
class BooleanTuckerConfig:
    """Hyper-parameters of the Boolean Tucker solver.

    ``checkpoint`` snapshots at *iteration* granularity within each
    restart (the Tucker core update is the slowest loop in the repo), with
    the snapshot step encoded as ``restart * max_iterations + iteration``
    and the best completed-restart result carried along — so a killed
    sweep resumes mid-restart, bit-identically.
    """

    core_shape: tuple[int, int, int]
    max_iterations: int = 10
    tolerance: float = 0.0
    n_initial_sets: int = 1
    seed: int = 0
    checkpoint: CheckpointConfig | None = None

    def __post_init__(self) -> None:
        if len(self.core_shape) != 3 or any(r <= 0 for r in self.core_shape):
            raise ValueError(
                f"core_shape must be three positive sizes, got {self.core_shape}"
            )
        if self.max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {self.tolerance}")
        if self.n_initial_sets <= 0:
            raise ValueError(
                f"n_initial_sets must be positive, got {self.n_initial_sets}"
            )


@dataclass(frozen=True)
class BooleanTuckerResult:
    """Outcome of a Boolean Tucker decomposition."""

    core: SparseBoolTensor
    factors: tuple[BitMatrix, BitMatrix, BitMatrix]
    error: int
    input_nnz: int
    errors_per_iteration: tuple[int, ...]
    converged: bool

    @property
    def relative_error(self) -> float:
        return self.error / self.input_nnz if self.input_nnz else float(self.error)

    @property
    def n_iterations(self) -> int:
        return len(self.errors_per_iteration)

    def reconstruct(self) -> SparseBoolTensor:
        factors_dense = tuple(factor.to_dense() for factor in self.factors)
        dense = _reconstruct_dense(self.core.to_dense(), factors_dense)
        return SparseBoolTensor.from_dense(dense)


def tucker_reconstruct(
    core: SparseBoolTensor, factors: tuple[BitMatrix, BitMatrix, BitMatrix]
) -> SparseBoolTensor:
    """Boolean Tucker reconstruction ``G ×₁ A ×₂ B ×₃ C``."""
    dense = _reconstruct_dense(
        core.to_dense(), tuple(factor.to_dense() for factor in factors)
    )
    return SparseBoolTensor.from_dense(dense)


def _reconstruct_dense(core: np.ndarray, factors: tuple[np.ndarray, ...]) -> np.ndarray:
    """Dense Boolean mode products; Boolean algebra is a semiring, so each
    mode product can clamp independently."""
    a, b, c = (factor.astype(np.int64) for factor in factors)
    stage = np.einsum("ip,pqr->iqr", a, core.astype(np.int64))
    stage = (stage > 0).astype(np.int64)
    stage = np.einsum("jq,iqr->ijr", b, stage)
    stage = (stage > 0).astype(np.int64)
    stage = np.einsum("kr,ijr->ijk", c, stage)
    return (stage > 0).astype(np.uint8)


def _coverage_slabs(
    core: np.ndarray, second: np.ndarray, third: np.ndarray
) -> np.ndarray:
    """Per-component coverage for the mode being updated.

    For mode 1 (updating A): slab p covers the (J, K) cells
    ``OR over (q, r) of g_pqr AND b_jq AND c_kr`` — computed as two Boolean
    matrix products per component.
    """
    r1 = core.shape[0]
    slabs = np.zeros((r1, second.shape[0], third.shape[0]), dtype=bool)
    second_int = second.astype(np.int64)
    third_int = third.astype(np.int64)
    for p in range(r1):
        middle = second_int @ core[p].astype(np.int64)  # (J, R3) counts
        slabs[p] = (middle.astype(bool).astype(np.int64) @ third_int.T) > 0
    return slabs


def _update_factor_dense(
    unfolded: np.ndarray, factor: np.ndarray, slabs: np.ndarray
) -> tuple[np.ndarray, int]:
    """Greedy column-wise update of one factor given coverage slabs.

    ``unfolded`` is the tensor with the updated mode first, flattened to
    (n_rows, cells); ``slabs`` is (rank, cells) Boolean coverage per
    component.  Mirrors DBTF's Algorithm 4 on dense arrays.
    """
    n_rows, rank = factor.shape
    updated = factor.copy()
    error_after = 0
    for column in range(rank):
        cover_others = np.zeros_like(unfolded, dtype=bool)
        for component in range(rank):
            if component == column:
                continue
            users = updated[:, component].astype(bool)
            if users.any():
                cover_others[users] |= slabs[component]
        error_if_zero = (cover_others ^ unfolded).sum(axis=1)
        newly = slabs[column][None, :] & ~cover_others
        delta = newly.sum(axis=1) - 2 * (newly & unfolded).sum(axis=1)
        error_if_one = error_if_zero + delta
        updated[:, column] = (error_if_one < error_if_zero).astype(np.uint8)
        error_after = int(np.minimum(error_if_zero, error_if_one).sum())
    return updated, error_after


def _update_core(
    dense: np.ndarray,
    core: np.ndarray,
    factors: tuple[np.ndarray, np.ndarray, np.ndarray],
) -> tuple[np.ndarray, int]:
    """Greedy entry-wise core update against coverage counts.

    ``counts[i, j, k]`` is the number of active core entries covering a
    cell; removing one entry's block subtracts its indicator, so each flip
    is evaluated with a local delta instead of a fresh reconstruction.
    """
    a, b, c = (factor.astype(bool) for factor in factors)
    r1, r2, r3 = core.shape
    updated = core.copy()
    # Integer coverage counts under the current core.
    counts = np.einsum(
        "pqr,ip,jq,kr->ijk",
        updated.astype(np.int64), a.astype(np.int64),
        b.astype(np.int64), c.astype(np.int64),
    )
    tensor_bool = dense.astype(bool)
    for p in range(r1):
        for q in range(r2):
            for r in range(r3):
                block = (
                    a[:, p][:, None, None]
                    & b[:, q][None, :, None]
                    & c[:, r][None, None, :]
                )
                if updated[p, q, r]:
                    counts_without = counts - block.astype(np.int64)
                else:
                    counts_without = counts
                # Cells only this entry would cover.
                exclusive = block & (counts_without == 0)
                gain = int((exclusive & tensor_bool).sum())
                cost = int((exclusive & ~tensor_bool).sum())
                keep = gain > cost
                if keep and not updated[p, q, r]:
                    updated[p, q, r] = 1
                    counts += block.astype(np.int64)
                elif not keep and updated[p, q, r]:
                    updated[p, q, r] = 0
                    counts = counts_without
    error = int(((counts > 0) ^ tensor_bool).sum())
    return updated, error


def _sampled_tucker_factors(
    tensor: SparseBoolTensor,
    config: BooleanTuckerConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Seed factor columns from fibers through random nonzeros.

    The first ``min(core_shape)`` components share one anchor nonzero
    across all three modes, exactly like DBTF's CP initialization — paired
    with a hyper-diagonal initial core, each seeds a coherent rank-1 block.
    Any surplus columns (non-cubic cores) get independent anchors.
    """
    coords = tensor.coords
    factors = [
        np.zeros((tensor.shape[mode], config.core_shape[mode]), dtype=np.uint8)
        for mode in range(3)
    ]
    if tensor.nnz == 0:
        return tuple(factors)

    def fill_column(mode: int, column: int, anchor: np.ndarray) -> None:
        others = [m for m in range(3) if m != mode]
        mask = (coords[:, others[0]] == anchor[others[0]]) & (
            coords[:, others[1]] == anchor[others[1]]
        )
        factors[mode][coords[mask][:, mode], column] = 1

    shared = min(config.core_shape)
    for r in range(shared):
        anchor = coords[int(rng.integers(0, tensor.nnz))]
        for mode in range(3):
            fill_column(mode, r, anchor)
    for mode in range(3):
        for r in range(shared, config.core_shape[mode]):
            anchor = coords[int(rng.integers(0, tensor.nnz))]
            fill_column(mode, r, anchor)
    return tuple(factors)


def boolean_tucker(
    tensor: SparseBoolTensor,
    core_shape: tuple[int, int, int] | None = None,
    config: BooleanTuckerConfig | None = None,
) -> BooleanTuckerResult:
    """Boolean Tucker decomposition of a three-way binary tensor.

    Parameters
    ----------
    tensor:
        The binary input tensor.
    core_shape:
        Core sizes ``(R1, R2, R3)`` (ignored when ``config`` is given).
    config:
        Full configuration.

    Returns
    -------
    BooleanTuckerResult
        Binary core, binary factors, and the error trace.
    """
    if config is None:
        if core_shape is None:
            raise ValueError("either core_shape or config must be provided")
        config = BooleanTuckerConfig(core_shape=core_shape)
    return drive(boolean_tucker_steps(tensor, config))


def boolean_tucker_steps(
    tensor: SparseBoolTensor,
    config: BooleanTuckerConfig,
) -> Generator[StepEvent, None, BooleanTuckerResult]:
    """Cooperatively-stepped Boolean Tucker: one iteration per ``next()``.

    Yields a :class:`~repro.core.steps.StepEvent` after every alternating
    iteration of every restart — the solver's checkpoint boundary, with the
    step encoded as ``restart * max_iterations + iteration`` exactly like
    the snapshot filenames — so a consumer may cancel mid-restart and a
    resumed run continues bit-identically.  Draining the generator is
    :func:`boolean_tucker`.
    """
    if tensor.ndim != 3:
        raise ValueError(
            f"Boolean Tucker factorizes three-way tensors, got {tensor.ndim}-way"
        )

    manager = None
    if config.checkpoint is not None:
        manager = CheckpointManager(
            config.checkpoint, _tucker_fingerprint(tensor, config)
        )

    dense = tensor.to_dense()
    best: BooleanTuckerResult | None = None
    start_restart = 0
    resume_state = None
    if manager is not None and config.checkpoint.resume:
        loaded = manager.load_latest()
        if loaded is not None:
            _step, state = loaded
            best = state["best"]
            start_restart = int(state["restart"])
            resume_state = state
    for restart in range(start_restart, config.n_initial_sets):
        rng = np.random.default_rng(config.seed + restart)
        save_fn = None
        if manager is not None:
            save_fn = _make_tucker_saver(manager, config, restart, best)
        solver = _solve_steps(
            tensor, dense, config, rng, save_fn=save_fn, resume=resume_state
        )
        candidate = None
        while candidate is None:
            try:
                iteration, error, restart_converged = next(solver)
            except StopIteration as stop:
                candidate = stop.value
                break
            yield StepEvent(
                restart * config.max_iterations + iteration,
                error,
                restart_converged,
            )
        resume_state = None
        if best is None or candidate.error < best.error:
            best = candidate
    return best


def _tucker_fingerprint(
    tensor: SparseBoolTensor, config: BooleanTuckerConfig
) -> str:
    """Fingerprint of everything shaping the Tucker trajectory.

    ``max_iterations`` is included (the snapshot step encoding depends on
    it) along with everything that would change the alternating updates.
    """
    return config_fingerprint(
        {
            "algorithm": "boolean_tucker",
            "core_shape": list(config.core_shape),
            "seed": config.seed,
            "n_initial_sets": config.n_initial_sets,
            "max_iterations": config.max_iterations,
            "tolerance": config.tolerance,
            "shape": list(tensor.shape),
            "nnz": tensor.nnz,
        }
    )


def _make_tucker_saver(
    manager: CheckpointManager,
    config: BooleanTuckerConfig,
    restart: int,
    best: "BooleanTuckerResult | None",
):
    """Bind one restart's snapshot writer for :func:`_solve_steps`."""

    def save(iteration, core, factors, errors, converged):
        if not (manager.should_save(iteration) or converged):
            return
        manager.save(
            restart * config.max_iterations + iteration,
            {
                "restart": restart,
                "iteration": iteration,
                "core": core.copy(),
                "factors": tuple(factor.copy() for factor in factors),
                "errors": list(errors),
                "converged": converged,
                "best": best,
            },
        )

    return save


def _solve_steps(
    tensor: SparseBoolTensor,
    dense: np.ndarray,
    config: BooleanTuckerConfig,
    rng: np.random.Generator,
    save_fn=None,
    resume: "dict | None" = None,
) -> "Generator[tuple[int, int, bool], None, BooleanTuckerResult]":
    """One alternating-minimization run from one initialization.

    Yields ``(iteration, error, converged)`` after each iteration — after
    ``save_fn`` has snapshotted it — and returns the restart's result.

    ``resume`` is a checkpoint state for *this* restart: initialization is
    skipped (its rng draws already happened before the snapshot) and the
    loop continues from the saved iteration's core/factors/errors.
    """
    if resume is not None:
        core = np.array(resume["core"], dtype=np.uint8)
        factors = tuple(
            np.array(factor, dtype=np.uint8) for factor in resume["factors"]
        )
        errors = list(resume["errors"])
        converged = bool(resume["converged"])
        start_iteration = int(resume["iteration"]) + 1
    else:
        factors = _sampled_tucker_factors(tensor, config, rng)
        # Hyper-diagonal initial core: component r glues the three fiber
        # columns seeded from the same anchor (the CP special case).
        core = np.zeros(config.core_shape, dtype=np.uint8)
        for r in range(min(config.core_shape)):
            core[r, r, r] = 1
        errors = []
        converged = False
        start_iteration = 0

    threshold = config.tolerance * max(tensor.nnz, 1)
    for iteration in range(start_iteration, config.max_iterations):
        if converged:
            break
        # Mode 1: rows are i, cells are (j, k) flattened.
        slabs = _coverage_slabs(core, factors[1], factors[2])
        new_a, error = _update_factor_dense(
            dense.reshape(dense.shape[0], -1),
            factors[0],
            slabs.reshape(slabs.shape[0], -1),
        )
        factors = (new_a, factors[1], factors[2])
        # Mode 2: permute so j comes first; core modes follow the same
        # permutation (q, p, r).
        slabs = _coverage_slabs(core.transpose(1, 0, 2), factors[0], factors[2])
        new_b, error = _update_factor_dense(
            dense.transpose(1, 0, 2).reshape(dense.shape[1], -1),
            factors[1],
            slabs.reshape(slabs.shape[0], -1),
        )
        factors = (factors[0], new_b, factors[2])
        # Mode 3: permutation (r, p, q).
        slabs = _coverage_slabs(core.transpose(2, 0, 1), factors[0], factors[1])
        new_c, error = _update_factor_dense(
            dense.transpose(2, 0, 1).reshape(dense.shape[2], -1),
            factors[2],
            slabs.reshape(slabs.shape[0], -1),
        )
        factors = (factors[0], factors[1], new_c)
        # Core last: with refreshed factors it can recruit off-diagonal
        # entries (the structure CP cannot express).
        core, error = _update_core(dense, core, factors)

        if errors and errors[-1] - error <= threshold:
            converged = True
        errors.append(error)
        if save_fn is not None:
            save_fn(iteration, core, factors, errors, converged)
        yield iteration, error, converged
        if converged:
            break

    return BooleanTuckerResult(
        core=SparseBoolTensor.from_dense(core),
        factors=tuple(BitMatrix.from_dense(factor) for factor in factors),
        error=errors[-1],
        input_nnz=tensor.nnz,
        errors_per_iteration=tuple(errors),
        converged=converged,
    )
