"""Incremental epoch-evolving factorization: advance, don't recompute.

A :class:`FactorizationSession` factorizes a tensor once, then *advances*
the factorization through a stream of :class:`~repro.tensor.TensorDelta`\\ s
instead of re-running DBTF from scratch on every snapshot:

* the partitioned, cached unfoldings are **patched in place** from the
  delta (O(|Δ|) shuffled bytes against the O(|X|) rebuild —
  :class:`~repro.core.PartitionedUnfoldings`);
* the solver **warm-starts** from the previous epoch's factors, RNG state,
  and error trace (the checkpoint-format carrier on
  ``DecompositionResult.state``);
* the first warm iteration only re-sweeps the factor columns whose
  Khatri-Rao support rectangles intersect the delta's touched fibers
  (:func:`~repro.core.dirty_columns_for_delta`), escalating to full sweeps
  the moment any column's decision actually moves — so quiet deltas cost a
  handful of column evaluations while adversarial ones degrade gracefully
  to exactly the batch trajectory.

Example::

    from repro import DbtfConfig, FactorizationSession
    from repro.tensor import TensorDelta

    session = FactorizationSession(tensor, DbtfConfig(rank=8, seed=0))
    with session:
        first = session.factorize()          # epoch 0: batch DBTF
        for delta in deltas:                 # epochs 1..T: advance
            epoch = session.advance(delta)
            print(epoch.epoch, epoch.result.error, epoch.columns_swept)

With a ``checkpoint_root``, every epoch snapshots into its own
``epoch-%04d`` subdirectory (a delta changes the tensor, hence the
checkpoint fingerprint, so epochs cannot share one directory); replaying
the same delta stream after a crash fast-forwards through completed epochs
via their converged snapshots, and stale epoch directories are pruned so at
most ``keep_last`` epochs of snapshots ever sit on disk.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Generator, Iterable

from .core import (
    DbtfConfig,
    DecompositionResult,
    PartitionedUnfoldings,
    baseline_error_after_delta,
    dbtf_steps,
    dirty_columns_for_delta,
    drive,
)
from .core.steps import StepEvent
from .distengine import SimulatedRuntime
from .resilience import CheckpointConfig, factors_from_state
from .tensor import SparseBoolTensor, TensorDelta

__all__ = ["EpochResult", "SessionResult", "FactorizationSession"]

_EPOCH_DIR_FORMAT = "epoch-{:04d}"


@dataclass(frozen=True)
class EpochResult:
    """One epoch's outcome plus its incremental-work accounting.

    Attributes
    ----------
    epoch:
        Epoch index; 0 is the initial batch factorization.
    result:
        The solver result — factors, error trace, engine report, and the
        warm-start ``state`` the next epoch consumed.
    n_changes:
        Cells the epoch's delta flipped (0 for epoch 0).
    dirty_columns:
        Per-mode counts of columns the delta could have moved (all 0 for
        epoch 0 — the batch path sweeps everything unconditionally).
    columns_swept / columns_skipped:
        Scoped-sweep column evaluations performed / skipped during this
        epoch (deltas of the runtime's incremental counters; both 0 for
        epoch 0 and for any escalated full sweep, which runs on the
        unmetered batch path).
    """

    epoch: int
    result: DecompositionResult
    n_changes: int = 0
    dirty_columns: tuple[int, int, int] = (0, 0, 0)
    columns_swept: int = 0
    columns_skipped: int = 0

    @property
    def error(self) -> int:
        return self.result.error

    @property
    def converged(self) -> bool:
        return self.result.converged


@dataclass(frozen=True)
class SessionResult:
    """A whole epoch stream's outcomes, as returned by the service path."""

    epochs: tuple[EpochResult, ...]

    @property
    def final(self) -> EpochResult:
        return self.epochs[-1]

    @property
    def error(self) -> int:
        return self.final.error

    @property
    def converged(self) -> bool:
        return self.final.converged

    @property
    def errors_per_epoch(self) -> tuple[int, ...]:
        return tuple(epoch.error for epoch in self.epochs)


class FactorizationSession:
    """A DBTF factorization advanced delta by delta over one live runtime.

    The session owns what batch runs rebuild every time: the partitioned,
    cached unfoldings (patched per epoch, never rebuilt), the warm-start
    state chain, and — when ``checkpoint_root`` is given — the per-epoch
    checkpoint directories.

    Parameters
    ----------
    tensor:
        The epoch-0 tensor; :meth:`advance` evolves the session's copy via
        ``apply_delta``, so ``session.tensor`` always reflects the current
        epoch.
    config:
        Solver configuration.  Must not carry its own ``checkpoint`` —
        the session derives a per-epoch checkpoint config from
        ``checkpoint_root`` instead (every epoch factorizes a different
        tensor, hence a different checkpoint fingerprint).
    runtime:
        Optional caller-owned runtime (e.g. a service lease); one is built
        from the config and closed with the session otherwise.
    checkpoint_root:
        Directory under which epoch ``e`` snapshots into ``epoch-%04d``.
        ``None`` disables checkpointing.
    checkpoint_every / keep_last:
        Snapshot cadence within an epoch, and how many *epoch directories*
        (and snapshots within each) are retained — advancing to epoch
        ``e`` prunes directories below ``e - keep_last + 1``.
    """

    def __init__(
        self,
        tensor: SparseBoolTensor,
        config: DbtfConfig,
        runtime: "SimulatedRuntime | None" = None,
        *,
        checkpoint_root: "str | Path | None" = None,
        checkpoint_every: int = 1,
        keep_last: int = 2,
    ):
        if tensor.ndim != 3:
            raise ValueError(
                f"incremental sessions factorize three-way tensors, got "
                f"{tensor.ndim}-way"
            )
        if config.checkpoint is not None:
            raise ValueError(
                "config.checkpoint must be None — the session manages "
                "per-epoch checkpoint directories via checkpoint_root"
            )
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.tensor = tensor
        self.config = config
        self._owns_runtime = runtime is None
        self.runtime = (
            runtime
            if runtime is not None
            else SimulatedRuntime(config.resolved_cluster())
        )
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.keep_last = keep_last
        self._unfoldings: "PartitionedUnfoldings | None" = None
        self._state: "dict | None" = None
        self.history: list[EpochResult] = []
        self.closed = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Index of the last completed epoch (-1 before :meth:`factorize`)."""
        return len(self.history) - 1

    def factorize(self) -> EpochResult:
        """Run epoch 0: the ordinary batch factorization of ``tensor``."""
        self._check_open()
        if self.history:
            raise RuntimeError(
                "epoch 0 already ran; use advance(delta) to continue"
            )
        return drive(self._epoch_steps(0, None))

    def advance(self, delta: TensorDelta) -> EpochResult:
        """Apply one delta and bring the factorization up to date.

        Patches the cached unfoldings in place, computes the dirty-column
        sets and the warm factors' exact baseline error on the new tensor,
        and warm-starts the solver — all falling back to full sweeps the
        moment a scoped column actually changes.
        """
        self._check_open()
        if not self.history:
            raise RuntimeError("call factorize() before advance(delta)")
        return drive(self._epoch_steps(len(self.history), delta))

    def run(
        self, deltas: "Iterable[TensorDelta]"
    ) -> SessionResult:
        """Epoch 0 plus one epoch per delta, in order."""
        return drive(self.steps(deltas))

    def steps(
        self, deltas: "Iterable[TensorDelta]"
    ) -> Generator[StepEvent, None, SessionResult]:
        """The whole epoch stream as one cooperative step generator.

        This is the service-facing shape: every solver iteration of every
        epoch yields, so a scheduler can interleave an epochs job with its
        peers and preempt it at any checkpoint boundary; replaying the
        stream after a kill fast-forwards through completed epochs via
        their converged snapshots.  Closing the generator (or finishing)
        releases the session's cached unfoldings — the runtime lease stays
        the caller's to manage.
        """
        self._check_open()
        if self.history:
            raise RuntimeError(
                "steps() replays a whole stream and needs a fresh session"
            )
        try:
            yield from self._epoch_steps(0, None)
            for index, delta in enumerate(deltas, start=1):
                yield from self._epoch_steps(index, delta)
            return SessionResult(epochs=tuple(self.history))
        finally:
            self._release_unfoldings()

    def close(self) -> None:
        """Release cached unfoldings and, when owned, the runtime."""
        if self.closed:
            return
        self.closed = True
        self._release_unfoldings()
        if self._owns_runtime:
            self.runtime.close()

    def __enter__(self) -> "FactorizationSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Epoch internals
    # ------------------------------------------------------------------
    def _epoch_steps(
        self, epoch: int, delta: "TensorDelta | None"
    ) -> Generator[StepEvent, None, EpochResult]:
        if self._unfoldings is None:
            self._unfoldings = PartitionedUnfoldings.prepare(
                self.tensor, self.config.resolved_partitions(), self.runtime
            )
        config = self._epoch_config(epoch)
        swept_before, skipped_before = self._sweep_counters()
        if delta is None:
            n_changes = 0
            dirty_counts = (0, 0, 0)
            result = yield from dbtf_steps(
                self.tensor,
                config,
                self.runtime,
                shared_unfoldings=self._unfoldings.rdds,
            )
        else:
            warm = self._state
            if warm is None:
                raise RuntimeError(
                    "no warm-start state recorded — the previous epoch's "
                    "solver did not export one"
                )
            self.tensor = self.tensor.apply_delta(delta)
            self._unfoldings.patch(delta)
            warm_factors = factors_from_state(warm["factors"])
            dirty = dirty_columns_for_delta(delta, warm_factors)
            baseline = baseline_error_after_delta(
                int(warm["errors"][-1]), delta, warm_factors
            )
            n_changes = delta.n_changes
            dirty_counts = tuple(len(columns) for columns in dirty)
            result = yield from dbtf_steps(
                self.tensor,
                config,
                self.runtime,
                warm_start=warm,
                shared_unfoldings=self._unfoldings.rdds,
                dirty_columns=dirty,
                baseline_error=baseline,
            )
        self._state = result.state
        swept_after, skipped_after = self._sweep_counters()
        epoch_result = EpochResult(
            epoch=epoch,
            result=result,
            n_changes=n_changes,
            dirty_columns=dirty_counts,
            columns_swept=int(swept_after - swept_before),
            columns_skipped=int(skipped_after - skipped_before),
        )
        self.history.append(epoch_result)
        self._prune_epoch_dirs(epoch)
        return epoch_result

    def _epoch_config(self, epoch: int) -> DbtfConfig:
        if self.checkpoint_root is None:
            return self.config
        checkpoint = CheckpointConfig(
            directory=self.checkpoint_root / _EPOCH_DIR_FORMAT.format(epoch),
            every=self.checkpoint_every,
            keep_last=self.keep_last,
            resume=True,
        )
        return replace(self.config, checkpoint=checkpoint)

    def _prune_epoch_dirs(self, completed_epoch: int) -> None:
        """Drop epoch directories older than the retention window.

        Without this, an epoch stream leaks one checkpoint directory per
        epoch forever (each epoch's tensor fingerprint differs, so the
        in-epoch ``keep_last`` pruning never crosses directories).
        """
        if self.checkpoint_root is None or not self.checkpoint_root.exists():
            return
        floor = completed_epoch - self.keep_last + 1
        if floor <= 0:
            return
        for path in sorted(self.checkpoint_root.glob("epoch-*")):
            try:
                index = int(path.name.split("-", 1)[1])
            except (IndexError, ValueError):
                continue
            if index < floor:
                shutil.rmtree(path, ignore_errors=True)

    def _sweep_counters(self) -> tuple[float, float]:
        value = self.runtime.metrics.value
        return (
            value("incremental_columns_swept_total"),
            value("incremental_columns_skipped_total"),
        )

    def _release_unfoldings(self) -> None:
        if self._unfoldings is not None:
            self._unfoldings.unpersist()
            self._unfoldings = None

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("FactorizationSession is closed")

    def __repr__(self) -> str:
        return (
            f"FactorizationSession(epoch={self.epoch}, "
            f"shape={tuple(self.tensor.shape)}, nnz={self.tensor.nnz}, "
            f"closed={self.closed})"
        )
