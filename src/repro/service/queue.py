"""Admission control and the pending-job queue.

The queue is the service's front door: it decides whether a submission is
*admitted* (per-tenant and global pending caps) and keeps the pending jobs
ordered the way the scheduler consumes them — within a tenant by
``(-priority, submission sequence)``, so urgent work jumps the tenant's own
line but tenants cannot jump each other's (cross-tenant ordering belongs to
the fair-share scheduler, not the queue).

Everything here is deterministic: admission depends only on counts, and the
head-of-line job per tenant is a pure function of the queue contents —
no wall clock, no iteration order over unordered sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from .job import Job

__all__ = ["TenantQuota", "AdmissionError", "JobQueue"]


class AdmissionError(RuntimeError):
    """A submission was refused by quota; resubmit after the queue drains."""


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits and fair-share weight.

    Attributes
    ----------
    max_pending:
        Most jobs a tenant may have waiting in the queue; submissions past
        this raise :class:`AdmissionError` (back-pressure, not silent
        dropping).
    max_running:
        Most of a tenant's jobs that may hold live runtimes at once.
    weight:
        Fair-share weight: a tenant with weight 2 receives twice the
        iteration throughput of a tenant with weight 1 under contention.
    """

    max_pending: int = 64
    max_running: int = 4
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.max_running < 1:
            raise ValueError(f"max_running must be >= 1, got {self.max_running}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


class JobQueue:
    """Pending jobs, partitioned by tenant, under admission control."""

    def __init__(
        self,
        default_quota: TenantQuota = TenantQuota(),
        quotas: "dict[str, TenantQuota] | None" = None,
        max_pending_total: "int | None" = None,
    ):
        self.default_quota = default_quota
        self.quotas = dict(quotas or {})
        self.max_pending_total = max_pending_total
        self._pending: dict[str, list[Job]] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Admit one pending job or raise :class:`AdmissionError`."""
        quota = self.quota_for(job.tenant)
        backlog = self._pending.setdefault(job.tenant, [])
        if len(backlog) >= quota.max_pending:
            raise AdmissionError(
                f"tenant {job.tenant!r} has {len(backlog)} pending jobs "
                f"(quota {quota.max_pending}); retry after the queue drains"
            )
        if (
            self.max_pending_total is not None
            and self.total_depth() >= self.max_pending_total
        ):
            raise AdmissionError(
                f"service queue is full ({self.max_pending_total} pending "
                f"jobs); retry after the queue drains"
            )
        self.requeue(job)

    def requeue(self, job: Job) -> None:
        """Re-enter a job without admission checks (preemption path).

        A preempted job was already admitted once; bouncing it on quota
        while it holds completed work would lose the job entirely.  It
        keeps its original sequence number, so it keeps its place in its
        tenant's line rather than going to the back.
        """
        backlog = self._pending.setdefault(job.tenant, [])
        backlog.append(job)
        # Stable sort: priority first, then submission order.
        backlog.sort(key=lambda item: (-item.priority, item.seq))

    def remove(self, job: Job) -> bool:
        """Drop one job from its tenant's backlog (cancellation path)."""
        backlog = self._pending.get(job.tenant, [])
        if job in backlog:
            backlog.remove(job)
            return True
        return False

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def head(self, tenant: str) -> "Job | None":
        """The tenant's next job without removing it."""
        backlog = self._pending.get(tenant, [])
        return backlog[0] if backlog else None

    def pop(self, tenant: str) -> Job:
        """Remove and return the tenant's next job."""
        return self._pending[tenant].pop(0)

    def heads(self) -> "dict[str, Job]":
        """Head-of-line job per tenant with a non-empty backlog."""
        return {
            tenant: backlog[0]
            for tenant, backlog in sorted(self._pending.items())
            if backlog
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth(self, tenant: str) -> int:
        return len(self._pending.get(tenant, []))

    def total_depth(self) -> int:
        return sum(len(backlog) for backlog in self._pending.values())

    def tenants(self) -> list[str]:
        """Every tenant that ever had a backlog, sorted for determinism."""
        return sorted(self._pending)

    def __len__(self) -> int:
        return self.total_depth()

    def __repr__(self) -> str:
        depths = {t: len(b) for t, b in sorted(self._pending.items()) if b}
        return f"JobQueue(pending={depths})"
