"""Jobs: what a tenant submits and how the service tracks it.

A :class:`JobSpec` is the immutable description of one decomposition
request — tenant, method, input tensor, hyper-parameters, priority.  Its
job id is *deterministic*: a :func:`~repro.distengine.shuffle.stable_hash`
over the fields that define the work (tenant, method, tensor content,
rank/core shape, iteration budget, restarts, seed).  Determinism is what
makes resume-on-resubmit work with no extra bookkeeping: resubmitting the
same spec after a service crash lands on the same job id, therefore the
same per-job checkpoint directory, therefore the run continues where it
died.  It also makes submission idempotent — the same request submitted
twice is one job, not two.

Priority is deliberately *excluded* from the id: re-submitting the same
work more urgently should bump the existing job, not fork a sibling.

A :class:`Job` is the service's mutable record of a spec in flight:
lifecycle state, scheduling bookkeeping (submission sequence, iterations
charged), the live step generator and runtime lease while RUNNING, and the
solver result once DONE.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from ..distengine.shuffle import stable_hash
from ..tensor import SparseBoolTensor, TensorDelta

__all__ = ["JobState", "JobSpec", "Job", "JobStatus", "METHODS"]

METHODS = ("dbtf", "nway-cp", "tucker")


class JobState(str, enum.Enum):
    """Lifecycle of a job inside the service.

    ``PENDING → RUNNING → DONE`` is the happy path; ``RUNNING → PENDING``
    is preemption (the job keeps its checkpoints and resumes later);
    ``CANCELLED`` and ``FAILED`` are terminal.
    """

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """One tenant's decomposition request.

    Attributes
    ----------
    tenant:
        Billing/fair-share identity; quota and scheduling are per tenant.
    method:
        ``"dbtf"`` (three-way CP on the distributed engine), ``"nway-cp"``,
        or ``"tucker"``.
    tensor:
        The binary input tensor.
    rank:
        Components R (``dbtf``/``nway-cp``; the default cubic core size
        for ``tucker`` when ``core_shape`` is not given).
    core_shape:
        Tucker core sizes; ignored by the CP methods.
    max_iterations / n_initial_sets / seed:
        Passed through to the solver config.
    priority:
        Larger runs earlier *within* a tenant and wins preemption contests
        across tenants; does not change the job id.
    deltas:
        Optional epoch stream (``dbtf`` only): the job factorizes
        ``tensor`` and then advances the factorization through each
        :class:`~repro.tensor.TensorDelta` in order via an incremental
        session (:class:`~repro.incremental.FactorizationSession`), its
        result a :class:`~repro.incremental.SessionResult`.  The deltas
        define the work, so they participate in the job id.
    """

    tenant: str
    tensor: SparseBoolTensor
    method: str = "dbtf"
    rank: int = 8
    core_shape: "tuple[int, int, int] | None" = None
    max_iterations: int = 10
    n_initial_sets: int = 1
    seed: int = 0
    priority: int = 0
    deltas: "tuple[TensorDelta, ...]" = ()

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.method not in METHODS:
            raise ValueError(
                f"method must be one of {METHODS}, got {self.method!r}"
            )
        object.__setattr__(self, "deltas", tuple(self.deltas))
        if self.deltas:
            if self.method != "dbtf":
                raise ValueError(
                    f"epoch deltas require method 'dbtf', got {self.method!r}"
                )
            for index, delta in enumerate(self.deltas):
                if not isinstance(delta, TensorDelta):
                    raise ValueError(
                        f"deltas[{index}] must be a TensorDelta, "
                        f"got {type(delta).__name__}"
                    )
                if tuple(delta.shape) != tuple(self.tensor.shape):
                    raise ValueError(
                        f"deltas[{index}] shape {tuple(delta.shape)} does "
                        f"not match tensor shape {tuple(self.tensor.shape)}"
                    )
        if self.rank <= 0:
            raise ValueError(f"rank must be positive, got {self.rank}")
        if self.max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.n_initial_sets <= 0:
            raise ValueError(
                f"n_initial_sets must be positive, got {self.n_initial_sets}"
            )

    @property
    def job_id(self) -> str:
        """Deterministic id over the work-defining fields.

        The tensor participates through its shape and coordinate content,
        so two tenants submitting equal hyper-parameters on different data
        never collide, while a byte-identical resubmission always lands on
        the same id (and thus the same checkpoint directory).
        """
        fingerprint = stable_hash(
            (
                "job",
                self.tenant,
                self.method,
                list(self.tensor.shape),
                self.tensor.coords,
                self.rank,
                list(self.core_shape) if self.core_shape else None,
                self.max_iterations,
                self.n_initial_sets,
                self.seed,
                [
                    [list(delta.shape), delta.added, delta.removed]
                    for delta in self.deltas
                ],
            )
        )
        return f"job-{fingerprint:016x}"


@dataclass(frozen=True)
class JobStatus:
    """Point-in-time snapshot of a job, safe to hand to API callers."""

    job_id: str
    tenant: str
    method: str
    state: JobState
    priority: int
    iterations: int
    preemptions: int
    error: "int | None"
    converged: bool
    message: "str | None" = None


class Job:
    """The service's mutable record of one submitted spec."""

    __slots__ = (
        "spec", "job_id", "state", "seq", "iterations", "preemptions",
        "last_error", "converged", "message", "result", "checkpoint_dir",
        "lease", "generator", "submitted_at", "finished_at",
        "checkpoint_every", "last_step",
    )

    def __init__(self, spec: JobSpec, seq: int):
        self.spec = spec
        self.job_id = spec.job_id
        self.state = JobState.PENDING
        #: Global submission sequence number — the FIFO tie-breaker.
        self.seq = seq
        self.iterations = 0
        self.preemptions = 0
        self.last_error: "int | None" = None
        self.converged = False
        self.message: "str | None" = None
        self.result: Any = None
        self.checkpoint_dir: "str | None" = None
        #: Live execution state while RUNNING (scheduler-owned).
        self.lease = None
        self.generator = None
        self.submitted_at: "float | None" = None
        self.finished_at: "float | None" = None
        self.checkpoint_every = 1
        self.last_step: "int | None" = None

    @property
    def tenant(self) -> str:
        return self.spec.tenant

    @property
    def priority(self) -> int:
        return self.spec.priority

    @property
    def live(self) -> bool:
        """Whether a step generator (and possibly a lease) is attached."""
        return self.generator is not None

    @property
    def at_checkpoint_boundary(self) -> bool:
        """Whether the last completed step was snapshotted to disk.

        Preemption is only safe here: the job will be torn down and later
        rebuilt from its newest checkpoint, so any work past the last
        snapshot would be silently redone (correct but wasteful) — the
        scheduler therefore refuses to preempt between snapshots.
        """
        if self.last_step is None:
            return False
        return self.converged or self.last_step % self.checkpoint_every == 0

    def snapshot(self) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            tenant=self.tenant,
            method=self.spec.method,
            state=self.state,
            priority=self.priority,
            iterations=self.iterations,
            preemptions=self.preemptions,
            error=self.last_error,
            converged=self.converged,
            message=self.message,
        )

    def __repr__(self) -> str:
        return (
            f"Job({self.job_id}, tenant={self.tenant!r}, "
            f"state={self.state.value}, iterations={self.iterations})"
        )
