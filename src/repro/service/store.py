"""File-spool job store backing the ``jobs`` CLI.

The CLI has no daemon: ``jobs submit`` must work before any server
exists, and ``jobs status`` must work after the server died.  The store
is therefore a directory, not a process —

.. code-block:: text

    <spool>/
        specs/<job_id>.json        what was submitted (tensor by path)
        state/<job_id>.json        last observed JobStatus
        results/<job_id>.json      summary once DONE (+ factor files)
        cancel/<job_id>            cancellation marker (empty file)
        checkpoints/<job_id>/      the job's snapshot directory

``jobs serve`` is the only command that runs solvers: it loads every
non-terminal spec, replays it into a :class:`~.service.FactorizationService`
rooted at ``checkpoints/``, and steps the service while honoring cancel
markers.  Because job ids are deterministic and checkpoints live under
the spool, killing ``serve`` loses nothing — the next ``serve`` resumes
every interrupted job from its newest snapshot, bit-identically.

Writes are atomic (temp file + rename) so a reader never sees a torn
JSON file, and the spool survives concurrent ``status``/``cancel`` calls
while ``serve`` runs.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from ..tensor import load_tensor
from .job import JobSpec, JobState, JobStatus

__all__ = ["JobStore"]


def _atomic_write_json(path: Path, payload: "dict[str, Any]") -> None:
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class JobStore:
    """One job spool rooted at a directory."""

    def __init__(self, root: "str | Path"):
        self.root = Path(root)
        for sub in ("specs", "state", "results", "cancel", "checkpoints"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    @property
    def checkpoint_root(self) -> Path:
        return self.root / "checkpoints"

    # ------------------------------------------------------------------
    # Specs
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec, tensor_path: "str | Path") -> str:
        """Spool one spec; returns its deterministic job id.

        Resubmitting an identical spec overwrites the same file — the
        spool, like the service, is idempotent on job id.  A resubmission
        also clears any stale cancel marker, so "cancel then resubmit"
        resumes the job instead of instantly re-cancelling it.
        """
        job_id = spec.job_id
        payload = {
            "job_id": job_id,
            "tenant": spec.tenant,
            "method": spec.method,
            "tensor": str(Path(tensor_path).resolve()),
            "rank": spec.rank,
            "core_shape": list(spec.core_shape) if spec.core_shape else None,
            "max_iterations": spec.max_iterations,
            "n_initial_sets": spec.n_initial_sets,
            "seed": spec.seed,
            "priority": spec.priority,
        }
        _atomic_write_json(self.root / "specs" / f"{job_id}.json", payload)
        marker = self.root / "cancel" / job_id
        if marker.exists():
            marker.unlink()
        return job_id

    def read_spec(self, job_id: str) -> "dict[str, Any] | None":
        """The raw spooled spec payload (no tensor load)."""
        return self._read_json("specs", job_id)

    def load_spec(self, job_id: str) -> JobSpec:
        """Rebuild the JobSpec (loading its tensor) from the spool."""
        payload = self._read_json("specs", job_id)
        if payload is None:
            raise KeyError(f"unknown job {job_id!r}")
        spec = JobSpec(
            tenant=payload["tenant"],
            tensor=load_tensor(payload["tensor"]),
            method=payload["method"],
            rank=payload["rank"],
            core_shape=(
                tuple(payload["core_shape"]) if payload["core_shape"] else None
            ),
            max_iterations=payload["max_iterations"],
            n_initial_sets=payload["n_initial_sets"],
            seed=payload["seed"],
            priority=payload["priority"],
        )
        if spec.job_id != job_id:
            raise ValueError(
                f"spool entry {job_id} rebuilds to {spec.job_id}: the tensor "
                f"file changed since submission"
            )
        return spec

    def job_ids(self) -> "list[str]":
        return sorted(
            path.stem for path in (self.root / "specs").glob("job-*.json")
        )

    def pending_ids(self) -> "list[str]":
        """Jobs a server should (re)run: not DONE, not cancelled.

        FAILED jobs are retried on the next serve — their checkpoints make
        the retry cheap, and a transient failure (OOM, kill) should not
        wedge the spool.
        """
        out = []
        for job_id in self.job_ids():
            if self.is_cancelled(job_id):
                continue
            status = self.read_status(job_id)
            if status is not None and status.get("state") == JobState.DONE.value:
                continue
            out.append(job_id)
        return out

    # ------------------------------------------------------------------
    # Status / results / cancellation
    # ------------------------------------------------------------------
    def write_status(self, status: JobStatus) -> None:
        payload = {
            "job_id": status.job_id,
            "tenant": status.tenant,
            "method": status.method,
            "state": status.state.value,
            "priority": status.priority,
            "iterations": status.iterations,
            "preemptions": status.preemptions,
            "error": status.error,
            "converged": status.converged,
            "message": status.message,
        }
        _atomic_write_json(self.root / "state" / f"{status.job_id}.json", payload)

    def read_status(self, job_id: str) -> "dict[str, Any] | None":
        return self._read_json("state", job_id)

    def write_result(self, job_id: str, summary: "dict[str, Any]") -> None:
        _atomic_write_json(self.root / "results" / f"{job_id}.json", summary)

    def read_result(self, job_id: str) -> "dict[str, Any] | None":
        return self._read_json("results", job_id)

    def mark_cancelled(self, job_id: str) -> None:
        (self.root / "cancel" / job_id).touch()

    def is_cancelled(self, job_id: str) -> bool:
        return (self.root / "cancel" / job_id).exists()

    def _read_json(self, kind: str, job_id: str) -> "dict[str, Any] | None":
        path = self.root / kind / f"{job_id}.json"
        if not path.exists():
            return None
        with open(path) as handle:
            return json.load(handle)

    def __repr__(self) -> str:
        return f"JobStore({str(self.root)!r}, jobs={len(self.job_ids())})"
