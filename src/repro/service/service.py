"""The factorization service: submit/status/cancel/result over shared workers.

:class:`FactorizationService` is the paper's solver stack turned into a
long-lived multi-tenant facility.  Tenants submit :class:`~.job.JobSpec`\\ s;
the service admits them through per-tenant quotas, interleaves the
admitted jobs' solver iterations under weighted fair sharing, isolates
each job's engine state behind a :class:`~repro.distengine.RuntimeFactory`
lease over ONE shared worker pool, and checkpoints every job into its own
directory so a killed service resumes every in-flight job bit-identically
on resubmission.

The execution model is cooperative, not threaded: each job is a step
generator (``dbtf_steps`` / ``cp_nway_steps`` / ``boolean_tucker_steps``)
and :meth:`FactorizationService.step` advances exactly one job by one
solver iteration per call.  Parallelism lives *below* the generators (the
shared thread/process backend executes each iteration's stages across
workers); the scheduler on top stays single-threaded and therefore
deterministic — the interleaving for a given submission order is
identical under every backend.

Wall-clock time appears only in latency *metrics*; every scheduling
decision is made on logical counters.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..core import DbtfConfig, dbtf_steps
from ..incremental import FactorizationSession
from ..distengine import DEFAULT_CLUSTER, ClusterConfig, RuntimeFactory
from ..nway import NwayCpConfig, cp_nway_steps
from ..observability import MetricsRegistry
from ..resilience import CheckpointConfig
from ..tucker import BooleanTuckerConfig, boolean_tucker_steps
from .job import Job, JobSpec, JobState, JobStatus
from .queue import JobQueue, TenantQuota
from .scheduler import FairShareScheduler

__all__ = ["ServiceConfig", "FactorizationService"]

# Job latencies span ~1ms cooperative quanta to multi-second dbtf runs.
_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0
)


@dataclass(frozen=True)
class ServiceConfig:
    """How the service runs: pool, checkpointing, capacity, quotas.

    Attributes
    ----------
    cluster:
        The shared cluster model; its backend/worker settings build the
        one worker pool every job executes through.
    checkpoint_root:
        Directory under which each job checkpoints into
        ``<root>/<job_id>/``.  ``None`` makes the service own a temporary
        root, removed on :meth:`FactorizationService.close` — durable
        resume-across-restarts requires passing a real path.
    checkpoint_every:
        Snapshot cadence in solver steps; also the preemption granularity
        (jobs are only preempted at snapshot boundaries).
    keep_last:
        Snapshots retained per job.
    max_live_jobs:
        How many jobs may hold runtimes concurrently — bounds per-job
        memory (persist caches, broadcast stores), not CPU; the worker
        pool is shared either way.
    default_quota / quotas:
        Per-tenant admission limits and fair-share weights; ``quotas``
        overrides per tenant name.
    max_pending_total:
        Global backlog cap across all tenants (``None`` = unbounded).
    """

    cluster: ClusterConfig = DEFAULT_CLUSTER
    checkpoint_root: "str | Path | None" = None
    checkpoint_every: int = 1
    keep_last: int = 2
    max_live_jobs: int = 4
    default_quota: TenantQuota = TenantQuota()
    quotas: "dict[str, TenantQuota]" = field(default_factory=dict)
    max_pending_total: "int | None" = None

    def __post_init__(self) -> None:
        if self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {self.keep_last}")
        if self.max_live_jobs < 1:
            raise ValueError(
                f"max_live_jobs must be >= 1, got {self.max_live_jobs}"
            )


class FactorizationService:
    """Multi-tenant factorization jobs over one shared worker pool."""

    def __init__(self, config: "ServiceConfig | None" = None):
        self.config = config if config is not None else ServiceConfig()
        config = self.config
        self.factory = RuntimeFactory(config.cluster)
        self.queue = JobQueue(
            default_quota=config.default_quota,
            quotas=config.quotas,
            max_pending_total=config.max_pending_total,
        )
        self.scheduler = FairShareScheduler(self.queue.quota_for)
        self.metrics = MetricsRegistry()
        self.jobs: dict[str, Job] = {}
        self._live: list[Job] = []
        self._seq = 0
        self._owns_root = config.checkpoint_root is None
        if self._owns_root:
            self._root = Path(tempfile.mkdtemp(prefix="repro-service-"))
        else:
            self._root = Path(config.checkpoint_root)
            self._root.mkdir(parents=True, exist_ok=True)
        self.closed = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobStatus:
        """Admit one job; idempotent on resubmission.

        The job id is deterministic over the work-defining fields, so:

        * resubmitting a spec that is still pending/running returns the
          existing job (a higher-priority resubmission bumps it in place);
        * resubmitting a DONE spec returns the cached result's status;
        * resubmitting after a failure, a cancellation, or a service
          restart creates a fresh record on the *same* id — and because
          the id names the checkpoint directory, the fresh run resumes
          from the old run's newest snapshot.
        """
        self._check_open()
        job_id = spec.job_id
        existing = self.jobs.get(job_id)
        if existing is not None and not existing.state.terminal:
            if spec.priority > existing.priority:
                was_queued = self.queue.remove(existing)
                existing.spec = spec
                if was_queued:
                    self.queue.submit(existing)
            return existing.snapshot()
        if existing is not None and existing.state is JobState.DONE:
            return existing.snapshot()
        job = Job(spec, seq=self._next_seq())
        job.submitted_at = time.perf_counter()
        job.checkpoint_every = self.config.checkpoint_every
        self.queue.submit(job)  # may raise AdmissionError; nothing recorded
        self.jobs[job_id] = job
        self._refresh_gauges()
        return job.snapshot()

    def status(self, job_id: str) -> JobStatus:
        return self._get(job_id).snapshot()

    def result(self, job_id: str) -> Any:
        """The solver result of a DONE job; raises otherwise."""
        job = self._get(job_id)
        if job.state is not JobState.DONE:
            raise RuntimeError(
                f"job {job_id} is {job.state.value}, result available "
                f"only once done"
            )
        return job.result

    def cancel(self, job_id: str) -> JobStatus:
        """Stop a job and free its capacity immediately.

        A pending job leaves the queue; a running one has its generator
        closed (running the solver's cleanup path — persisted partitions
        unpersisted) and its lease released, so the slot and the pool are
        free for the next quantum.  Checkpoints are kept: cancellation is
        a pause from the data's point of view, and resubmitting the spec
        resumes from the newest snapshot.
        """
        job = self._get(job_id)
        if job.state.terminal:
            return job.snapshot()
        if job.state is JobState.PENDING:
            self.queue.remove(job)
        else:
            self._deactivate(job)
        job.state = JobState.CANCELLED
        job.finished_at = time.perf_counter()
        self.metrics.counter(
            "service_jobs_cancelled_total", tenant=job.tenant
        ).inc()
        self._refresh_gauges()
        return job.snapshot()

    def step(self) -> bool:
        """One scheduling quantum; returns whether work remains.

        A quantum is: fill free slots (activating pending jobs under fair
        share), preempt at most one checkpoint-resting victim if a
        strictly-higher-priority job is waiting with no free slot, then
        advance exactly one live job by one solver iteration.
        """
        self._check_open()
        self._activate_pending()
        self._maybe_preempt()
        job = self._pick_live()
        if job is not None:
            self._advance(job)
        self._refresh_gauges()
        return bool(self._live) or self.queue.total_depth() > 0

    def drain(self, max_steps: "int | None" = None) -> "list[JobStatus]":
        """Step until no work remains; returns final statuses by seq."""
        steps = 0
        while self.step():
            steps += 1
            if max_steps is not None and steps >= max_steps:
                break
        return [
            job.snapshot()
            for job in sorted(self.jobs.values(), key=lambda j: j.seq)
        ]

    def dashboard(self) -> "dict[str, dict[str, Any]]":
        """Per-tenant operational summary (logical counters only)."""
        tenants = sorted({job.tenant for job in self.jobs.values()})
        board: dict[str, dict[str, Any]] = {}
        for tenant in tenants:
            mine = [j for j in self.jobs.values() if j.tenant == tenant]
            board[tenant] = {
                "pending": self.queue.depth(tenant),
                "running": sum(1 for j in mine if j.state is JobState.RUNNING),
                "done": sum(1 for j in mine if j.state is JobState.DONE),
                "failed": sum(1 for j in mine if j.state is JobState.FAILED),
                "cancelled": sum(
                    1 for j in mine if j.state is JobState.CANCELLED
                ),
                "iterations": sum(j.iterations for j in mine),
                "preemptions": sum(j.preemptions for j in mine),
                "vtime": self.scheduler.vtime(tenant),
                "shuffle_bytes": self.metrics.value(
                    "tenant_shuffle_bytes_total", tenant=tenant
                ),
            }
        return board

    def close(self) -> None:
        """Release every live job, the shared pool, and any owned root.

        Live jobs are *deactivated*, not cancelled: their state returns to
        PENDING and their checkpoints survive, which is what makes
        kill-and-resubmit resume work.
        """
        if self.closed:
            return
        self.closed = True
        for job in list(self._live):
            self._deactivate(job)
            job.state = JobState.PENDING
        self.factory.close()
        if self._owns_root:
            shutil.rmtree(self._root, ignore_errors=True)

    def __enter__(self) -> "FactorizationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _activate_pending(self) -> None:
        while len(self._live) < self.config.max_live_jobs:
            candidates = self._eligible_heads()
            job = self.scheduler.pick(candidates)
            if job is None:
                return
            self.queue.pop(job.tenant)
            self._activate(job)

    def _eligible_heads(self) -> "dict[str, Job]":
        """Head-of-line job per tenant still under its running quota."""
        running: dict[str, int] = {}
        for job in self._live:
            running[job.tenant] = running.get(job.tenant, 0) + 1
        return {
            tenant: head
            for tenant, head in self.queue.heads().items()
            if running.get(tenant, 0) < self.queue.quota_for(tenant).max_running
        }

    def _maybe_preempt(self) -> None:
        if len(self._live) < self.config.max_live_jobs:
            return
        candidates = self._eligible_heads()
        candidate = self.scheduler.pick(candidates)
        if candidate is None:
            return
        victim = self.scheduler.victim(self._live, candidate)
        if victim is None:
            return
        self._deactivate(victim)
        victim.state = JobState.PENDING
        victim.preemptions += 1
        self.metrics.counter(
            "service_jobs_preempted_total", tenant=victim.tenant
        ).inc()
        # Original seq keeps the victim's place in its tenant's line.
        self.queue.requeue(victim)
        self.queue.pop(candidate.tenant)
        self._activate(candidate)

    def _pick_live(self) -> "Job | None":
        by_tenant: dict[str, list[Job]] = {}
        for job in self._live:
            by_tenant.setdefault(job.tenant, []).append(job)
        candidates = {
            tenant: self.scheduler.preference(jobs)
            for tenant, jobs in by_tenant.items()
        }
        return self.scheduler.pick(candidates)

    def _advance(self, job: Job) -> None:
        try:
            event = next(job.generator)
        except StopIteration as stop:
            self._finish(job, stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - job failure must not kill peers
            self._fail(job, exc)
            return
        job.iterations += 1
        job.last_step = event.step
        job.last_error = event.error
        job.converged = event.converged
        self.scheduler.charge(job.tenant, 1.0)

    # ------------------------------------------------------------------
    # Job lifecycle internals
    # ------------------------------------------------------------------
    def _activate(self, job: Job) -> None:
        """Attach a generator (and, for dbtf, a runtime lease) to a job.

        Every activation builds its checkpoint config with ``resume=True``:
        on a fresh directory that is a no-op, and after a preemption, a
        cancellation, or a service restart it picks the run up from the
        newest intact snapshot — one code path covers all four cases.
        """
        spec = job.spec
        checkpoint = CheckpointConfig(
            directory=self._root / job.job_id,
            every=self.config.checkpoint_every,
            keep_last=self.config.keep_last,
            resume=True,
        )
        job.checkpoint_dir = str(checkpoint.directory)
        job.checkpoint_every = self.config.checkpoint_every
        try:
            if spec.method == "dbtf":
                cluster = self.config.cluster
                if cluster.memory_budget is not None:
                    # Each job spills under its own checkpoint root, so a
                    # finished (or failed) job's spill files are removed
                    # with _cleanup_spill and never outlive the job.
                    cluster = cluster.with_memory_budget(
                        cluster.memory_budget,
                        spill_dir=str(self._root / job.job_id / "spill"),
                    )
                job.lease = self.factory.lease(config=cluster)
                if spec.deltas:
                    # Epoch stream: one incremental session owns the whole
                    # delta sequence, checkpointing each epoch into its own
                    # subdirectory of the job's checkpoint dir (a delta
                    # changes the tensor, hence the snapshot fingerprint)
                    # and pruning stale epoch directories as it advances —
                    # so a preempted or killed epochs job resumes from the
                    # newest intact epoch instead of replaying the stream's
                    # solver work from scratch.
                    config = DbtfConfig(
                        rank=spec.rank,
                        max_iterations=spec.max_iterations,
                        n_initial_sets=spec.n_initial_sets,
                        seed=spec.seed,
                        cluster=cluster,
                    )
                    session = FactorizationSession(
                        spec.tensor,
                        config,
                        job.lease.runtime,
                        checkpoint_root=self._root / job.job_id,
                        checkpoint_every=self.config.checkpoint_every,
                        keep_last=self.config.keep_last,
                    )
                    job.generator = session.steps(spec.deltas)
                else:
                    config = DbtfConfig(
                        rank=spec.rank,
                        max_iterations=spec.max_iterations,
                        n_initial_sets=spec.n_initial_sets,
                        seed=spec.seed,
                        cluster=cluster,
                        checkpoint=checkpoint,
                    )
                    job.generator = dbtf_steps(
                        spec.tensor, config, job.lease.runtime
                    )
            elif spec.method == "nway-cp":
                config = NwayCpConfig(
                    rank=spec.rank,
                    max_iterations=spec.max_iterations,
                    n_initial_sets=spec.n_initial_sets,
                    seed=spec.seed,
                    checkpoint=checkpoint,
                )
                job.generator = cp_nway_steps(spec.tensor, config)
            else:  # tucker
                config = BooleanTuckerConfig(
                    core_shape=spec.core_shape or (spec.rank,) * 3,
                    max_iterations=spec.max_iterations,
                    n_initial_sets=spec.n_initial_sets,
                    seed=spec.seed,
                    checkpoint=checkpoint,
                )
                job.generator = boolean_tucker_steps(spec.tensor, config)
        except Exception as exc:  # noqa: BLE001 - bad spec fails one job only
            self._fail(job, exc)
            return
        job.state = JobState.RUNNING
        self._live.append(job)

    def _deactivate(self, job: Job) -> None:
        """Tear down a job's live execution state, keeping its checkpoints.

        ``generator.close()`` raises ``GeneratorExit`` inside the solver,
        running its ``finally`` cleanup (dbtf unpersists its partitioned
        unfoldings there); closing the lease then evicts the runtime's
        job-scoped caches while the shared pool stays warm.
        """
        if job.generator is not None:
            self._settle(job)
            job.generator.close()
            job.generator = None
        if job.lease is not None:
            job.lease.close()
            job.lease = None
        if job in self._live:
            self._live.remove(job)

    def _settle(self, job: Job) -> None:
        """Account a leased runtime's shuffle bytes to the job's tenant."""
        if job.lease is not None:
            ledger = job.lease.runtime.ledger
            self.metrics.counter(
                "tenant_shuffle_bytes_total", tenant=job.tenant
            ).inc(float(ledger.total_bytes))

    def _cleanup_spill(self, job: Job) -> None:
        """Remove a terminal job's spill directory (its caches are dead)."""
        if self.config.cluster.memory_budget is not None:
            shutil.rmtree(self._root / job.job_id / "spill",
                          ignore_errors=True)

    def _finish(self, job: Job, result: Any) -> None:
        job.result = result
        job.converged = True if getattr(result, "converged", False) else job.converged
        if job.last_error is None:
            # A resumed run can finish without yielding a single new step
            # (the snapshot was already converged); report the result's
            # error rather than none at all.
            job.last_error = getattr(result, "error", None)
        self._deactivate(job)
        self._cleanup_spill(job)
        job.state = JobState.DONE
        job.finished_at = time.perf_counter()
        self.metrics.counter(
            "service_jobs_completed_total", tenant=job.tenant
        ).inc()
        self._observe_latency(job)

    def _fail(self, job: Job, exc: Exception) -> None:
        job.message = f"{type(exc).__name__}: {exc}"
        self._deactivate(job)
        self._cleanup_spill(job)
        job.state = JobState.FAILED
        job.finished_at = time.perf_counter()
        self.metrics.counter(
            "service_jobs_failed_total", tenant=job.tenant
        ).inc()
        self._observe_latency(job)

    def _observe_latency(self, job: Job) -> None:
        if job.submitted_at is None or job.finished_at is None:
            return
        self.metrics.histogram(
            "job_latency_seconds", buckets=_LATENCY_BUCKETS, tenant=job.tenant
        ).observe(job.finished_at - job.submitted_at)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _refresh_gauges(self) -> None:
        for tenant in sorted(
            set(self.queue.tenants()) | {job.tenant for job in self.jobs.values()}
        ):
            self.metrics.gauge("service_queue_depth", tenant=tenant).set(
                float(self.queue.depth(tenant))
            )
            self.metrics.gauge("service_running_jobs", tenant=tenant).set(
                float(sum(1 for job in self._live if job.tenant == tenant))
            )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _get(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("FactorizationService is closed")

    def __repr__(self) -> str:
        return (
            f"FactorizationService(jobs={len(self.jobs)}, "
            f"live={len(self._live)}, pending={self.queue.total_depth()}, "
            f"closed={self.closed})"
        )
