"""Weighted fair-share scheduling over one shared worker pool.

Classic virtual-time fair queueing, specialized to cooperative solver
steps: every time a tenant's job advances one iteration, the tenant is
charged ``1 / weight`` units of virtual time, and the next quantum always
goes to the tenant with the *least* virtual time.  Under contention a
tenant with weight 2 therefore advances twice as often as a tenant with
weight 1, and a tenant that was idle while others ran does not get to
starve them afterwards (its virtual time is lifted to the current minimum
on first charge).

Everything is driven by logical counters — virtual time, submission
sequence numbers, iteration counts — never the wall clock, so a given
submission order produces the identical schedule under the serial, thread,
and process backends.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .job import Job
from .queue import TenantQuota

__all__ = ["FairShareScheduler"]


class FairShareScheduler:
    """Tracks per-tenant virtual time and picks who runs next."""

    def __init__(self, quota_for: Callable[[str], TenantQuota]):
        self._quota_for = quota_for
        self._vtime: dict[str, float] = {}

    def vtime(self, tenant: str) -> float:
        return self._vtime.get(tenant, 0.0)

    def charge(self, tenant: str, amount: float = 1.0) -> None:
        """Bill ``amount`` units of work to a tenant at its weight."""
        weight = self._quota_for(tenant).weight
        self._vtime[tenant] = self._ensure(tenant) + amount / weight

    def _ensure(self, tenant: str) -> float:
        """A tenant's virtual time, lifting late joiners to the floor.

        Without the lift, a tenant that sat idle while others accumulated
        virtual time would hold the minimum for as many quanta as the
        others ever consumed — fair-share would degenerate into
        starve-the-incumbents.  Lifting to the current minimum gives the
        newcomer priority *now* without granting it a retroactive debt.
        """
        if tenant not in self._vtime:
            floor = min(self._vtime.values()) if self._vtime else 0.0
            self._vtime[tenant] = floor
        return self._vtime[tenant]

    def pick(self, candidates: "dict[str, Job]") -> "Job | None":
        """The next job to receive a quantum, or ``None`` if no candidates.

        ``candidates`` maps each eligible tenant to the job that would run
        for it (head-of-line for activation, or its chosen live job for
        advancement).  The winning tenant is the one with minimal
        ``(virtual time, name)`` — the name tie-break keeps the schedule
        deterministic when virtual times are exactly equal, which happens
        constantly with equal weights.
        """
        if not candidates:
            return None
        tenant = min(candidates, key=lambda t: (self._ensure(t), t))
        return candidates[tenant]

    @staticmethod
    def preference(jobs: Iterable[Job]) -> "Job | None":
        """A tenant's own best job: highest priority, then earliest seq."""
        best = None
        for job in jobs:
            if best is None or (-job.priority, job.seq) < (-best.priority, best.seq):
                best = job
        return best

    def victim(self, live: Iterable[Job], candidate: Job) -> "Job | None":
        """The live job ``candidate`` may preempt, or ``None``.

        Preemption is deliberately conservative: it requires a *strictly*
        higher priority (equal-priority work waits its turn — churning
        leases for a tie gains nothing) and a victim resting at a
        checkpoint boundary (anything else would redo work on resume).
        Among eligible victims, take the lowest priority; break ties
        toward the tenant that has consumed the most virtual time, then
        the youngest submission.
        """
        eligible = [
            job
            for job in live
            if job.priority < candidate.priority and job.at_checkpoint_boundary
        ]
        if not eligible:
            return None
        return min(
            eligible,
            key=lambda job: (job.priority, -self._ensure(job.tenant), -job.seq),
        )

    def snapshot(self) -> "dict[str, float]":
        """Per-tenant virtual times, for dashboards and tests."""
        return dict(sorted(self._vtime.items()))

    def __repr__(self) -> str:
        return f"FairShareScheduler(vtime={self.snapshot()})"
