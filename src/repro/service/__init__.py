"""Factorization-as-a-service: multi-tenant jobs over the solver stack.

The layers, bottom-up:

* :mod:`.job` — :class:`JobSpec` (immutable request, deterministic id) and
  :class:`Job` (the service's mutable record of one spec in flight);
* :mod:`.queue` — :class:`JobQueue` with per-tenant admission control
  (:class:`TenantQuota`);
* :mod:`.scheduler` — :class:`FairShareScheduler`, weighted virtual-time
  fair queueing with priority preemption at checkpoint boundaries;
* :mod:`.service` — :class:`FactorizationService`, the
  submit/status/cancel/result API stepping every admitted job's solver
  generator over one shared worker pool;
* :mod:`.store` — :class:`JobStore`, the file spool behind the ``jobs``
  CLI (daemon-free submit/status/cancel, resumable ``serve``).
"""

from .job import METHODS, Job, JobSpec, JobState, JobStatus
from .queue import AdmissionError, JobQueue, TenantQuota
from .scheduler import FairShareScheduler
from .service import FactorizationService, ServiceConfig
from .store import JobStore

__all__ = [
    "METHODS",
    "Job",
    "JobSpec",
    "JobState",
    "JobStatus",
    "AdmissionError",
    "JobQueue",
    "TenantQuota",
    "FairShareScheduler",
    "FactorizationService",
    "ServiceConfig",
    "JobStore",
]
