"""Importers: build Boolean tensors from common raw-data formats.

The paper's datasets arrive as triple files (NELL subject-relation-object),
timestamped edge lists (Facebook interactions, CAIDA flows), and
publication records (DBLP).  These helpers turn such raw rows into
:class:`SparseBoolTensor` instances, mapping arbitrary labels to dense
indices and binning continuous timestamps into a time mode.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..tensor import SparseBoolTensor

__all__ = ["LabelledTensor", "from_triples", "from_triple_file", "bin_timestamps",
           "from_timestamped_edges"]


@dataclass(frozen=True)
class LabelledTensor:
    """A Boolean tensor plus the label of every index along each mode."""

    tensor: SparseBoolTensor
    labels: tuple[tuple[str, ...], ...]

    def label_of(self, mode: int, index: int) -> str:
        return self.labels[mode][index]

    def index_of(self, mode: int, label: str) -> int:
        """Index of a label along a mode (linear scan; modes are modest)."""
        try:
            return self.labels[mode].index(label)
        except ValueError:
            raise KeyError(f"label {label!r} not found in mode {mode}") from None


def from_triples(rows: Iterable[Sequence[object]]) -> LabelledTensor:
    """Build a three-way tensor from (subject, relation/object, ...) rows.

    Each row supplies one label per mode; distinct labels are assigned
    dense indices in first-seen order.  Duplicate rows collapse (the tensor
    is Boolean).
    """
    label_maps: list[dict[str, int]] = [{}, {}, {}]
    coords = []
    for row_number, row in enumerate(rows):
        if len(row) != 3:
            raise ValueError(
                f"row {row_number}: expected 3 fields, got {len(row)}"
            )
        coordinate = []
        for mode, value in enumerate(row):
            label = str(value)
            mapping = label_maps[mode]
            if label not in mapping:
                mapping[label] = len(mapping)
            coordinate.append(mapping[label])
        coords.append(coordinate)
    shape = tuple(max(len(mapping), 1) for mapping in label_maps)
    coord_array = np.asarray(coords, dtype=np.int64).reshape(-1, 3)
    labels = tuple(tuple(mapping) for mapping in label_maps)
    return LabelledTensor(SparseBoolTensor(shape, coord_array), labels)


def from_triple_file(
    path: str | os.PathLike,
    delimiter: str | None = None,
    comment: str = "#",
) -> LabelledTensor:
    """Read whitespace/CSV triples from a text file (NELL-style dumps)."""
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split(delimiter)
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 3 fields, got {len(parts)}"
                )
            rows.append(parts)
    return from_triples(rows)


def bin_timestamps(timestamps: np.ndarray, n_bins: int) -> np.ndarray:
    """Map raw timestamps to ``n_bins`` equal-width bins over their range."""
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if timestamps.size == 0:
        return np.zeros(0, dtype=np.int64)
    low = timestamps.min()
    high = timestamps.max()
    if high == low:
        return np.zeros(timestamps.shape[0], dtype=np.int64)
    scaled = (timestamps - low) / (high - low) * n_bins
    return np.minimum(scaled.astype(np.int64), n_bins - 1)


def from_timestamped_edges(
    edges: Iterable[tuple[object, object, float]],
    n_time_bins: int,
) -> LabelledTensor:
    """Build an entity x entity x time tensor from timestamped edges.

    Both endpoints share one label space (as in the paper's Facebook
    user1-user2-timestamp tensor); timestamps are binned into
    ``n_time_bins`` equal-width windows.
    """
    edges = list(edges)
    entity_map: dict[str, int] = {}
    sources = np.zeros(len(edges), dtype=np.int64)
    targets = np.zeros(len(edges), dtype=np.int64)
    times = np.zeros(len(edges), dtype=np.float64)
    for position, (source, target, timestamp) in enumerate(edges):
        for label in (str(source), str(target)):
            if label not in entity_map:
                entity_map[label] = len(entity_map)
        sources[position] = entity_map[str(source)]
        targets[position] = entity_map[str(target)]
        times[position] = float(timestamp)
    bins = bin_timestamps(times, n_time_bins)
    n_entities = max(len(entity_map), 1)
    coords = np.stack([sources, targets, bins], axis=1)
    tensor = SparseBoolTensor((n_entities, n_entities, n_time_bins), coords)
    entity_labels = tuple(entity_map)
    time_labels = tuple(f"bin_{b}" for b in range(n_time_bins))
    return LabelledTensor(tensor, (entity_labels, entity_labels, time_labels))
