"""Importers: build Boolean tensors from common raw-data formats.

The paper's datasets arrive as triple files (NELL subject-relation-object),
timestamped edge lists (Facebook interactions, CAIDA flows), and
publication records (DBLP).  These helpers turn such raw rows into
:class:`SparseBoolTensor` instances, mapping arbitrary labels to dense
indices and binning continuous timestamps into a time mode.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..tensor import SparseBoolTensor

__all__ = ["LabelledTensor", "from_triples", "from_triple_file", "bin_timestamps",
           "from_timestamped_edges", "from_matrix_market", "from_slice_files",
           "to_matrix_market", "to_slice_files"]


@dataclass(frozen=True)
class LabelledTensor:
    """A Boolean tensor plus the label of every index along each mode."""

    tensor: SparseBoolTensor
    labels: tuple[tuple[str, ...], ...]

    def label_of(self, mode: int, index: int) -> str:
        return self.labels[mode][index]

    def index_of(self, mode: int, label: str) -> int:
        """Index of a label along a mode.

        Backed by a lazily built reverse dict per mode (the dataclass is
        frozen but not slotted, so the memo lives in ``__dict__``): the
        first lookup on a mode pays one pass, every later one is O(1) —
        this is hot in importer round-trips over real label spaces.
        """
        reverse = self.__dict__.get("_reverse")
        if reverse is None:
            reverse = {}
            object.__setattr__(self, "_reverse", reverse)
        mapping = reverse.get(mode)
        if mapping is None:
            mapping = {
                name: index for index, name in enumerate(self.labels[mode])
            }
            reverse[mode] = mapping
        try:
            return mapping[label]
        except KeyError:
            raise KeyError(f"label {label!r} not found in mode {mode}") from None


def from_triples(rows: Iterable[Sequence[object]]) -> LabelledTensor:
    """Build a three-way tensor from (subject, relation/object, ...) rows.

    Each row supplies one label per mode; distinct labels are assigned
    dense indices in first-seen order.  Duplicate rows collapse (the tensor
    is Boolean).
    """
    label_maps: list[dict[str, int]] = [{}, {}, {}]
    coords = []
    for row_number, row in enumerate(rows):
        if len(row) != 3:
            raise ValueError(
                f"row {row_number}: expected 3 fields, got {len(row)}"
            )
        coordinate = []
        for mode, value in enumerate(row):
            label = str(value)
            mapping = label_maps[mode]
            if label not in mapping:
                mapping[label] = len(mapping)
            coordinate.append(mapping[label])
        coords.append(coordinate)
    shape = tuple(max(len(mapping), 1) for mapping in label_maps)
    coord_array = np.asarray(coords, dtype=np.int64).reshape(-1, 3)
    labels = tuple(tuple(mapping) for mapping in label_maps)
    return LabelledTensor(SparseBoolTensor(shape, coord_array), labels)


def from_triple_file(
    path: str | os.PathLike,
    delimiter: str | None = None,
    comment: str = "#",
) -> LabelledTensor:
    """Read whitespace/CSV triples from a text file (NELL-style dumps)."""
    rows = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split(delimiter)
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 3 fields, got {len(parts)}"
                )
            rows.append(parts)
    return from_triples(rows)


# ----------------------------------------------------------------------
# MatrixMarket (.mtx) and sliced multi-file loaders
# ----------------------------------------------------------------------
#: Coordinate rows per batch handed to the streaming builder.
_MTX_BATCH_ROWS = 65536

_MTX_FIELDS = ("pattern", "real", "integer")
_MTX_SYMMETRIES = ("general", "symmetric")


def _parse_mtx_header(path: str, line: str) -> tuple[str, str]:
    """Validate the ``%%MatrixMarket`` banner; returns (field, symmetry)."""
    parts = line.strip().split()
    if len(parts) < 5 or parts[0].lower() != "%%matrixmarket":
        raise ValueError(
            f"{path}:1: not a MatrixMarket file (header {line.strip()!r})"
        )
    kind, layout, field, symmetry = (p.lower() for p in parts[1:5])
    if kind != "matrix" or layout != "coordinate":
        raise ValueError(
            f"{path}:1: only 'matrix coordinate' files are supported, "
            f"got '{kind} {layout}'"
        )
    if field not in _MTX_FIELDS:
        raise ValueError(
            f"{path}:1: unsupported field {field!r} "
            f"(expected one of {_MTX_FIELDS})"
        )
    if symmetry not in _MTX_SYMMETRIES:
        raise ValueError(
            f"{path}:1: unsupported symmetry {symmetry!r} "
            f"(expected one of {_MTX_SYMMETRIES})"
        )
    return field, symmetry


def _iter_mtx_entries(path: "str | os.PathLike"):
    """Yield ``(row, col)`` (0-based) per stored nonzero of a ``.mtx`` file.

    The first yielded item is the ``(n_rows, n_cols)`` shape.  Explicitly
    stored zero values are skipped (the tensor is Boolean); symmetric files
    yield both ``(i, j)`` and ``(j, i)``.  Raises :class:`ValueError` with
    ``path:line`` context on every malformed input.
    """
    path = os.fspath(path)
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise ValueError(f"{path}: empty file, expected MatrixMarket header")
        field, symmetry = _parse_mtx_header(path, first)
        shape: "tuple[int, int] | None" = None
        declared = 0
        seen = 0
        line_number = 1
        for line in handle:
            line_number += 1
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            parts = line.split()
            if shape is None:
                if len(parts) != 3:
                    raise ValueError(
                        f"{path}:{line_number}: size line must be "
                        f"'rows cols nnz', got {line!r}"
                    )
                try:
                    n_rows, n_cols, declared = (int(p) for p in parts)
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}: non-integer size line {line!r}"
                    ) from None
                if n_rows <= 0 or n_cols <= 0 or declared < 0:
                    raise ValueError(
                        f"{path}:{line_number}: invalid sizes {line!r}"
                    )
                shape = (n_rows, n_cols)
                yield shape
                continue
            expected_fields = 2 if field == "pattern" else 3
            if len(parts) != expected_fields:
                raise ValueError(
                    f"{path}:{line_number}: expected {expected_fields} "
                    f"fields for a {field} entry, got {len(parts)}"
                )
            try:
                row, col = int(parts[0]), int(parts[1])
            except ValueError:
                raise ValueError(
                    f"{path}:{line_number}: non-integer coordinates {line!r}"
                ) from None
            seen += 1
            if seen > declared:
                raise ValueError(
                    f"{path}:{line_number}: more entries than the declared "
                    f"{declared}"
                )
            if not (1 <= row <= shape[0] and 1 <= col <= shape[1]):
                raise ValueError(
                    f"{path}:{line_number}: entry ({row}, {col}) out of "
                    f"bounds for {shape[0]}x{shape[1]}"
                )
            if field != "pattern":
                try:
                    value = float(parts[2])
                except ValueError:
                    raise ValueError(
                        f"{path}:{line_number}: non-numeric value "
                        f"{parts[2]!r}"
                    ) from None
                if value == 0.0:
                    continue  # explicit zero: absent in a Boolean tensor
            yield (row - 1, col - 1)
            if symmetry == "symmetric" and row != col:
                yield (col - 1, row - 1)
        if shape is None:
            raise ValueError(f"{path}: missing size line")
        if seen != declared:
            raise ValueError(
                f"{path}: declared {declared} entries but found {seen}"
            )


def from_matrix_market(
    path: "str | os.PathLike", batch_rows: int = _MTX_BATCH_ROWS
) -> SparseBoolTensor:
    """Read a MatrixMarket coordinate file as a two-way Boolean tensor.

    Supports ``pattern``, ``real``, and ``integer`` fields (nonzero values
    become ``True``; explicitly stored zeros are dropped) and ``general``/
    ``symmetric`` layouts.  Entries stream through
    :class:`~repro.storage.StreamingTensorBuilder` in ``batch_rows``
    chunks, so duplicate-heavy files never materialize a full raw
    coordinate list.  No scipy required — the parser is self-contained.
    """
    from ..storage import StreamingTensorBuilder, iter_coordinate_batches

    entries = _iter_mtx_entries(path)
    shape = next(entries)
    builder = StreamingTensorBuilder(shape)
    for batch in iter_coordinate_batches(entries, batch_rows=batch_rows):
        builder.add_batch(batch)
    return builder.build()


def from_slice_files(
    paths: "Sequence[str | os.PathLike]",
    batch_rows: int = _MTX_BATCH_ROWS,
) -> SparseBoolTensor:
    """Stack per-slice ``.mtx`` files into a three-way Boolean tensor.

    ``paths[k]`` holds frontal slice ``X[:, :, k]`` as a MatrixMarket
    coordinate matrix (the RESCAL-style one-matrix-per-relation layout);
    every slice must declare the same ``rows x cols`` shape.  Slices are
    ingested one at a time through the streaming builder, so the peak
    driver footprint is one slice's batches plus the accumulated distinct
    nonzeros — never the whole raw dataset.
    """
    from ..storage import StreamingTensorBuilder, iter_coordinate_batches

    paths = list(paths)
    if not paths:
        raise ValueError("from_slice_files needs at least one slice file")
    builder: "object | None" = None
    slice_shape: "tuple[int, int] | None" = None
    for k, path in enumerate(paths):
        entries = _iter_mtx_entries(path)
        shape = next(entries)
        if slice_shape is None:
            slice_shape = shape
            builder = StreamingTensorBuilder(
                (shape[0], shape[1], len(paths))
            )
        elif shape != slice_shape:
            raise ValueError(
                f"{os.fspath(path)}: slice {k} is {shape[0]}x{shape[1]}, "
                f"expected {slice_shape[0]}x{slice_shape[1]} like slice 0"
            )
        for batch in iter_coordinate_batches(entries, batch_rows=batch_rows):
            full = np.empty((batch.shape[0], 3), dtype=np.int64)
            full[:, :2] = batch
            full[:, 2] = k
            builder.add_batch(full)
    return builder.build()


def _write_mtx(
    path: "str | os.PathLike", shape: tuple[int, int], coords: np.ndarray
) -> None:
    """Write one 2-way coordinate set as ``pattern general`` MatrixMarket."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("%%MatrixMarket matrix coordinate pattern general\n")
        handle.write(f"{shape[0]} {shape[1]} {coords.shape[0]}\n")
        for row, col in coords:
            handle.write(f"{int(row) + 1} {int(col) + 1}\n")


def to_matrix_market(
    tensor: SparseBoolTensor, path: "str | os.PathLike"
) -> None:
    """Write a two-way Boolean tensor as a MatrixMarket coordinate file.

    Emits ``pattern general`` with 1-based sorted entries, the exact subset
    of the format :func:`from_matrix_market` reads — so
    ``from_matrix_market(to_matrix_market(X)) == X`` for every two-way
    tensor (coordinates are already canonical: sorted and deduplicated).
    """
    if tensor.ndim != 2:
        raise ValueError(
            f"to_matrix_market writes two-way tensors, got {tensor.ndim}-way "
            f"(use to_slice_files for three-way tensors)"
        )
    _write_mtx(path, tensor.shape, tensor.coords)


def to_slice_files(
    tensor: SparseBoolTensor,
    directory: "str | os.PathLike",
    prefix: str = "slice",
) -> list[str]:
    """Write a three-way tensor as one ``.mtx`` file per frontal slice.

    Slice ``X[:, :, k]`` becomes ``<directory>/<prefix>-<k>.mtx`` in the
    RESCAL-style layout :func:`from_slice_files` reads; returns the written
    paths in slice order, so the round trip is
    ``from_slice_files(to_slice_files(X, d)) == X``.  Every slice file is
    written, including empty ones — the slice count carries mode 2's
    dimension.
    """
    if tensor.ndim != 3:
        raise ValueError(
            f"to_slice_files writes three-way tensors, got {tensor.ndim}-way"
        )
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    width = max(4, len(str(max(tensor.shape[2] - 1, 0))))
    paths = []
    for k in range(tensor.shape[2]):
        coords = tensor.coords[tensor.coords[:, 2] == k][:, :2]
        path = os.path.join(directory, f"{prefix}-{k:0{width}d}.mtx")
        _write_mtx(path, (tensor.shape[0], tensor.shape[1]), coords)
        paths.append(path)
    return paths


def bin_timestamps(timestamps: np.ndarray, n_bins: int) -> np.ndarray:
    """Map raw timestamps to ``n_bins`` equal-width bins over their range."""
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if timestamps.size == 0:
        return np.zeros(0, dtype=np.int64)
    low = timestamps.min()
    high = timestamps.max()
    if high == low:
        return np.zeros(timestamps.shape[0], dtype=np.int64)
    scaled = (timestamps - low) / (high - low) * n_bins
    return np.minimum(scaled.astype(np.int64), n_bins - 1)


def from_timestamped_edges(
    edges: Iterable[tuple[object, object, float]],
    n_time_bins: int,
) -> LabelledTensor:
    """Build an entity x entity x time tensor from timestamped edges.

    Both endpoints share one label space (as in the paper's Facebook
    user1-user2-timestamp tensor); timestamps are binned into
    ``n_time_bins`` equal-width windows.
    """
    edges = list(edges)
    entity_map: dict[str, int] = {}
    sources = np.zeros(len(edges), dtype=np.int64)
    targets = np.zeros(len(edges), dtype=np.int64)
    times = np.zeros(len(edges), dtype=np.float64)
    for position, (source, target, timestamp) in enumerate(edges):
        for label in (str(source), str(target)):
            if label not in entity_map:
                entity_map[label] = len(entity_map)
        sources[position] = entity_map[str(source)]
        targets[position] = entity_map[str(target)]
        times[position] = float(timestamp)
    bins = bin_timestamps(times, n_time_bins)
    n_entities = max(len(entity_map), 1)
    coords = np.stack([sources, targets, bins], axis=1)
    tensor = SparseBoolTensor((n_entities, n_entities, n_time_bins), coords)
    entity_labels = tuple(entity_map)
    time_labels = tuple(f"bin_{b}" for b in range(n_time_bins))
    return LabelledTensor(tensor, (entity_labels, entity_labels, time_labels))
