"""Synthetic workload generators (paper Sec. IV-A.1).

Two families, exactly as the paper describes:

* **scalability tensors** — uniform random Boolean tensors, swept over
  dimensionality (``I = J = K = 2**e``) and density at fixed rank;
* **error tensors** — noise-free tensors built from random factor matrices,
  perturbed with additive and/or destructive noise, swept over factor
  density, rank, and the two noise levels.

Plus :func:`blocky_tensor`, the building block for the Table III real-world
stand-ins in :mod:`repro.datasets.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitops import BitMatrix
from ..tensor import SparseBoolTensor, planted_tensor, random_tensor

__all__ = [
    "scalability_tensor",
    "ErrorTensorSpec",
    "error_tensor",
    "blocky_tensor",
]


def scalability_tensor(
    scale_exponent: int, density: float, seed: int = 0
) -> SparseBoolTensor:
    """A uniform random cube of side ``2**scale_exponent`` (paper Fig. 1)."""
    if scale_exponent < 1:
        raise ValueError(f"scale_exponent must be >= 1, got {scale_exponent}")
    side = 2**scale_exponent
    return random_tensor((side, side, side), density, np.random.default_rng(seed))


@dataclass(frozen=True)
class ErrorTensorSpec:
    """Parameters of a reconstruction-error tensor (paper Sec. IV-D).

    Defaults follow the paper's fixed values: when one aspect is swept, the
    others stay at these settings.
    """

    shape: tuple[int, int, int] = (64, 64, 64)
    rank: int = 10
    factor_density: float = 0.1
    additive_noise: float = 0.10
    destructive_noise: float = 0.05
    seed: int = 0


def error_tensor(
    spec: ErrorTensorSpec,
) -> tuple[SparseBoolTensor, tuple[BitMatrix, BitMatrix, BitMatrix]]:
    """A noisy planted tensor plus its noise-free ground-truth factors."""
    rng = np.random.default_rng(spec.seed)
    return planted_tensor(
        spec.shape,
        rank=spec.rank,
        factor_density=spec.factor_density,
        rng=rng,
        additive_noise=spec.additive_noise,
        destructive_noise=spec.destructive_noise,
    )


def blocky_tensor(
    shape: tuple[int, int, int],
    n_blocks: int,
    block_dims: tuple[tuple[int, int], tuple[int, int], tuple[int, int]],
    rng: np.random.Generator,
    block_fill: float = 1.0,
    noise_density: float = 0.0,
) -> SparseBoolTensor:
    """A union of random dense blocks plus uniform background noise.

    Each block picks, per mode, a contiguous-free random index set whose
    size is drawn from the given ``(low, high)`` range; ``block_fill`` < 1
    thins the block's cells.  This is the generator behind every real-world
    stand-in: communities-over-time, attack slabs, knowledge-base concepts
    are all "dense blocks in a sparse tensor".
    """
    if n_blocks < 0:
        raise ValueError(f"n_blocks must be non-negative, got {n_blocks}")
    if not 0.0 < block_fill <= 1.0:
        raise ValueError(f"block_fill must be in (0, 1], got {block_fill}")
    pieces = []
    for _ in range(n_blocks):
        index_sets = []
        for mode in range(3):
            low, high = block_dims[mode]
            if not 1 <= low <= high <= shape[mode]:
                raise ValueError(
                    f"block dims {block_dims[mode]} invalid for mode size "
                    f"{shape[mode]}"
                )
            size = int(rng.integers(low, high + 1))
            index_sets.append(rng.choice(shape[mode], size=size, replace=False))
        grid = np.meshgrid(*index_sets, indexing="ij")
        cells = np.stack([axis.ravel() for axis in grid], axis=1)
        if block_fill < 1.0:
            keep = rng.random(cells.shape[0]) < block_fill
            cells = cells[keep]
        pieces.append(cells)
    coords = (
        np.concatenate(pieces, axis=0)
        if pieces
        else np.zeros((0, 3), dtype=np.int64)
    )
    tensor = SparseBoolTensor(shape, coords)
    if noise_density > 0.0:
        noise = random_tensor(shape, noise_density, rng)
        tensor = tensor.boolean_or(noise)
    return tensor
