"""Scaled stand-ins for the paper's real-world datasets (Table III).

The original Facebook / DBLP / CAIDA-DDoS / NELL dumps are not available in
this offline environment, so each dataset is replaced by a synthetic
generator that preserves its *modality* (what the three modes mean), its
blocky latent structure, and the relative ordering of sizes — scaled down so
a single core finishes (DESIGN.md §3, substitution 2).  Paper-scale shapes
are recorded alongside for the Table III reproduction; they are quoted
approximately because the source table in our copy is partially garbled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..tensor import SparseBoolTensor
from .synthetic import blocky_tensor

__all__ = ["DatasetSpec", "REGISTRY", "load_dataset", "list_datasets"]


@dataclass(frozen=True)
class DatasetSpec:
    """One Table III dataset: paper-scale metadata plus our generator."""

    name: str
    modes: str
    paper_shape: str
    paper_nnz: str
    shape: tuple[int, int, int]
    build: Callable[[int], SparseBoolTensor]
    default_rank: int = 10

    def generate(self, seed: int = 0) -> SparseBoolTensor:
        return self.build(seed)


def _facebook(seed: int) -> SparseBoolTensor:
    """Temporal friendship activity: communities active over time windows."""
    rng = np.random.default_rng(seed)
    return blocky_tensor(
        shape=(96, 96, 16),
        n_blocks=12,
        block_dims=((6, 14), (6, 14), (2, 6)),
        rng=rng,
        block_fill=0.9,
        noise_density=0.0005,
    )


def _dblp(seed: int) -> SparseBoolTensor:
    """Publication records: author groups at few venues over year ranges."""
    rng = np.random.default_rng(seed)
    return blocky_tensor(
        shape=(512, 32, 24),
        n_blocks=40,
        block_dims=((8, 24), (1, 3), (3, 10)),
        rng=rng,
        block_fill=0.7,
        noise_density=0.0005,
    )


def _ddos_small(seed: int) -> SparseBoolTensor:
    """Attack traffic: many sources hitting few destinations in bursts."""
    rng = np.random.default_rng(seed)
    return blocky_tensor(
        shape=(128, 128, 64),
        n_blocks=8,
        block_dims=((24, 60), (2, 5), (8, 20)),
        rng=rng,
        block_fill=0.95,
        noise_density=0.001,
    )


def _ddos_large(seed: int) -> SparseBoolTensor:
    rng = np.random.default_rng(seed)
    return blocky_tensor(
        shape=(160, 160, 128),
        n_blocks=14,
        block_dims=((30, 80), (2, 6), (12, 32)),
        rng=rng,
        block_fill=0.95,
        noise_density=0.001,
    )


def _nell_small(seed: int) -> SparseBoolTensor:
    """Knowledge-base triples: concept blocks of subjects x objects x relations."""
    rng = np.random.default_rng(seed)
    return blocky_tensor(
        shape=(192, 192, 24),
        n_blocks=24,
        block_dims=((6, 18), (6, 18), (1, 4)),
        rng=rng,
        block_fill=0.8,
        noise_density=0.0008,
    )


def _nell_large(seed: int) -> SparseBoolTensor:
    rng = np.random.default_rng(seed)
    return blocky_tensor(
        shape=(320, 320, 32),
        n_blocks=40,
        block_dims=((8, 24), (8, 24), (1, 5)),
        rng=rng,
        block_fill=0.8,
        noise_density=0.0008,
    )


REGISTRY: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="facebook",
            modes="user x user x time",
            paper_shape="~64K x 64K x 870",
            paper_nnz="~1.5M",
            shape=(96, 96, 16),
            build=_facebook,
        ),
        DatasetSpec(
            name="dblp",
            modes="author x venue x year",
            paper_shape="~418K x 3.5K x 50",
            paper_nnz="~1.3M",
            shape=(512, 32, 24),
            build=_dblp,
        ),
        DatasetSpec(
            name="ddos-s",
            modes="source IP x destination IP x time",
            paper_shape="~9K x 9K x 4K",
            paper_nnz="~22M",
            shape=(128, 128, 64),
            build=_ddos_small,
        ),
        DatasetSpec(
            name="ddos-l",
            modes="source IP x destination IP x time",
            paper_shape="~9K x 9K x 393K",
            paper_nnz="~331M",
            shape=(160, 160, 128),
            build=_ddos_large,
        ),
        DatasetSpec(
            name="nell-s",
            modes="subject x object x relation",
            paper_shape="~15K x 15K x 29K",
            paper_nnz="~77M",
            shape=(192, 192, 24),
            build=_nell_small,
        ),
        DatasetSpec(
            name="nell-l",
            modes="subject x object x relation",
            paper_shape="~112K x 112K x 213K",
            paper_nnz="~18M (as printed; likely larger)",
            shape=(320, 320, 32),
            build=_nell_large,
        ),
    ]
}


def list_datasets() -> list[str]:
    """Names of the Table III stand-ins, in the paper's order."""
    return list(REGISTRY)


def load_dataset(name: str, seed: int = 0) -> SparseBoolTensor:
    """Generate a Table III stand-in by name."""
    if name not in REGISTRY:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(REGISTRY)}"
        )
    return REGISTRY[name].generate(seed)
