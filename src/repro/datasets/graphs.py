"""Graph views of Boolean tensors (networkx interoperability).

Walk'n'Merge treats a tensor's nonzeros as a graph — two nonzeros are
adjacent when they share two of their three coordinates (they lie on a
common fiber).  :func:`fiber_graph` materializes that graph as a
``networkx.Graph`` for inspection: connected components correspond to the
tensor's independently factorizable pieces, and dense subgraphs are the
blocks the random walks hunt for.
"""

from __future__ import annotations

from collections import defaultdict

import networkx as nx

from ..tensor import SparseBoolTensor

__all__ = ["fiber_graph", "connected_nonzero_components"]


def fiber_graph(tensor: SparseBoolTensor) -> "nx.Graph":
    """The nonzero-adjacency graph Walk'n'Merge walks on.

    Nodes are nonzero coordinates (as tuples); edges connect nonzeros on a
    common fiber.  Fibers are cliques, so edge count grows quadratically in
    fiber length — intended for analysis at moderate sizes.
    """
    if tensor.ndim != 3:
        raise ValueError(f"fiber_graph expects a three-way tensor, got {tensor.ndim}")
    graph = nx.Graph()
    coordinates = [tuple(int(v) for v in row) for row in tensor.coords]
    graph.add_nodes_from(coordinates)
    for mode in range(3):
        fixed = [m for m in range(3) if m != mode]
        fibers: dict[tuple[int, int], list[tuple[int, int, int]]] = defaultdict(list)
        for coordinate in coordinates:
            fibers[(coordinate[fixed[0]], coordinate[fixed[1]])].append(coordinate)
        for members in fibers.values():
            for position, left in enumerate(members):
                for right in members[position + 1 :]:
                    graph.add_edge(left, right, mode=mode)
    return graph


def connected_nonzero_components(
    tensor: SparseBoolTensor,
) -> list[SparseBoolTensor]:
    """Split a tensor into its fiber-connected components.

    Each component is returned as a tensor of the original shape holding
    only that component's nonzeros.  Components can be factorized
    independently — a useful preprocessing step for block-structured data.
    """
    graph = fiber_graph(tensor)
    components = []
    for nodes in nx.connected_components(graph):
        components.append(
            SparseBoolTensor.from_nonzeros(tensor.shape, sorted(nodes))
        )
    components.sort(key=lambda component: component.nnz, reverse=True)
    return components
