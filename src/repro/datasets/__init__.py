"""Synthetic workloads and real-world dataset stand-ins."""

from .graphs import connected_nonzero_components, fiber_graph
from .importers import (
    LabelledTensor,
    bin_timestamps,
    from_matrix_market,
    from_slice_files,
    from_timestamped_edges,
    from_triple_file,
    from_triples,
    to_matrix_market,
    to_slice_files,
)
from .registry import REGISTRY, DatasetSpec, list_datasets, load_dataset
from .synthetic import ErrorTensorSpec, blocky_tensor, error_tensor, scalability_tensor

__all__ = [
    "REGISTRY",
    "DatasetSpec",
    "list_datasets",
    "load_dataset",
    "scalability_tensor",
    "ErrorTensorSpec",
    "error_tensor",
    "blocky_tensor",
    "LabelledTensor",
    "from_triples",
    "from_triple_file",
    "from_matrix_market",
    "from_slice_files",
    "to_matrix_market",
    "to_slice_files",
    "from_timestamped_edges",
    "bin_timestamps",
    "fiber_graph",
    "connected_nonzero_components",
]
