"""Section IV-D: reconstruction-error experiments.

Noise-free tensors are built from random factor matrices, perturbed with
additive and destructive noise, and each method's relative reconstruction
error ``|X ⊕ X̃| / |X|`` is reported while one aspect is swept:

* factor-matrix density,
* rank,
* additive-noise level,
* destructive-noise level.

Walk'n'Merge's merging threshold follows the paper's setting
``t = 1 - n_d`` (the destructive-noise level of the input).
"""

from __future__ import annotations

from dataclasses import replace

from ..baselines import WalkNMergeConfig
from ..datasets import ErrorTensorSpec, error_tensor
from .runner import ResultTable, run_bcp_als, run_dbtf, run_walk_n_merge

__all__ = [
    "compare_on_spec",
    "run_factor_density_sweep",
    "run_rank_sweep",
    "run_additive_noise_sweep",
    "run_destructive_noise_sweep",
]

_ERROR_HEADERS = ["DBTF", "Walk'n'Merge", "BCP_ALS"]


def compare_on_spec(
    spec: ErrorTensorSpec,
    timeout_sec: float | None = 120.0,
    n_initial_sets: int = 4,
) -> tuple:
    """Relative errors of the three methods on one error-tensor spec."""
    tensor, _ = error_tensor(spec)
    dbtf_outcome = run_dbtf(
        tensor,
        spec.rank,
        timeout_sec=timeout_sec,
        seed=spec.seed,
        n_partitions=16,
        n_initial_sets=n_initial_sets,
    )
    wnm_outcome = run_walk_n_merge(
        tensor,
        spec.rank,
        timeout_sec=timeout_sec,
        config=WalkNMergeConfig(
            density_threshold=max(1.0 - spec.destructive_noise - 1e-9, 0.05),
            seed=spec.seed,
        ),
    )
    bcp_outcome = run_bcp_als(tensor, spec.rank, timeout_sec=timeout_sec)
    return dbtf_outcome, wnm_outcome, bcp_outcome


def _sweep(
    title: str,
    axis_name: str,
    specs: list[tuple[object, ErrorTensorSpec]],
    timeout_sec: float | None,
) -> ResultTable:
    table = ResultTable(title, [axis_name] + _ERROR_HEADERS)
    for axis_value, spec in specs:
        outcomes = compare_on_spec(spec, timeout_sec=timeout_sec)
        table.add_row(axis_value, *(outcome.error_label() for outcome in outcomes))
    return table


def run_factor_density_sweep(
    densities: tuple[float, ...] = (0.05, 0.1, 0.15, 0.2),
    base: ErrorTensorSpec = ErrorTensorSpec(),
    timeout_sec: float | None = 120.0,
) -> ResultTable:
    """Relative error vs. planted factor-matrix density."""
    specs = [(d, replace(base, factor_density=d)) for d in densities]
    return _sweep(
        "Sec. IV-D — relative error vs factor density "
        f"(rank={base.rank}, noise +{base.additive_noise:.0%}/-{base.destructive_noise:.0%})",
        "factor density",
        specs,
        timeout_sec,
    )


def run_rank_sweep(
    ranks: tuple[int, ...] = (5, 10, 15, 20),
    base: ErrorTensorSpec = ErrorTensorSpec(),
    timeout_sec: float | None = 120.0,
) -> ResultTable:
    """Relative error vs. planted rank (methods factorize at the same rank)."""
    specs = [(r, replace(base, rank=r)) for r in ranks]
    return _sweep(
        "Sec. IV-D — relative error vs rank "
        f"(factor density={base.factor_density})",
        "rank",
        specs,
        timeout_sec,
    )


def run_additive_noise_sweep(
    levels: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3),
    base: ErrorTensorSpec = ErrorTensorSpec(destructive_noise=0.0),
    timeout_sec: float | None = 120.0,
) -> ResultTable:
    """Relative error vs. additive-noise level."""
    specs = [(level, replace(base, additive_noise=level)) for level in levels]
    return _sweep(
        "Sec. IV-D — relative error vs additive noise "
        f"(rank={base.rank}, factor density={base.factor_density})",
        "additive noise",
        specs,
        timeout_sec,
    )


def run_destructive_noise_sweep(
    levels: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2),
    base: ErrorTensorSpec = ErrorTensorSpec(additive_noise=0.0),
    timeout_sec: float | None = 120.0,
) -> ResultTable:
    """Relative error vs. destructive-noise level."""
    specs = [(level, replace(base, destructive_noise=level)) for level in levels]
    return _sweep(
        "Sec. IV-D — relative error vs destructive noise "
        f"(rank={base.rank}, factor density={base.factor_density})",
        "destructive noise",
        specs,
        timeout_sec,
    )
