"""Figure 1: data scalability of DBTF vs. BCP_ALS vs. Walk'n'Merge.

Three sweeps over synthetic random tensors (paper Sec. IV-B.1):

* **(a) dimensionality** — ``I = J = K`` grows geometrically at fixed
  density 0.01 and rank 10 (paper: 2^6..2^13; ours: 2^4..2^8, scaled);
* **(b) density** — 0.01..0.3 at fixed side 2^6 (paper 2^8) and rank 10;
* **(c) rank** — 10..60 at fixed side 2^6 (paper 2^8) and density 0.05,
  with the cache threshold V = 15 so large ranks exercise the group split.

Each cell reports the method's time in seconds, or O.O.T./O.O.M. like the
paper's plots mark failures.
"""

from __future__ import annotations

from ..baselines import WalkNMergeConfig
from ..datasets import scalability_tensor
from .runner import ResultTable, run_bcp_als, run_dbtf, run_walk_n_merge

__all__ = ["run_dimensionality", "run_density", "run_rank"]

_METHOD_HEADERS = ["DBTF (s)", "Walk'n'Merge (s)", "BCP_ALS (s)"]


def _compare_methods(tensor, rank, timeout_sec, seed, wnm_threshold=0.5):
    """Run the three methods on one tensor; random tensors have no planted
    blocks, so Walk'n'Merge gets a permissive density threshold (its runtime
    is what the figure measures)."""
    dbtf_outcome = run_dbtf(
        tensor, rank, timeout_sec=timeout_sec, seed=seed, n_partitions=16
    )
    wnm_outcome = run_walk_n_merge(
        tensor,
        rank,
        timeout_sec=timeout_sec,
        config=WalkNMergeConfig(density_threshold=wnm_threshold, seed=seed),
    )
    bcp_outcome = run_bcp_als(tensor, rank, timeout_sec=timeout_sec)
    return dbtf_outcome, wnm_outcome, bcp_outcome


def run_dimensionality(
    exponents: tuple[int, ...] = (4, 5, 6, 7, 8, 9),
    density: float = 0.01,
    rank: int = 10,
    timeout_sec: float = 60.0,
    seed: int = 0,
) -> ResultTable:
    """Figure 1(a): runtime vs. tensor dimensionality."""
    table = ResultTable(
        "Figure 1(a) — runtime vs dimensionality "
        f"(density={density}, rank={rank})",
        ["I=J=K"] + _METHOD_HEADERS,
    )
    for exponent in exponents:
        tensor = scalability_tensor(exponent, density, seed=seed)
        outcomes = _compare_methods(tensor, rank, timeout_sec, seed)
        table.add_row(
            f"2^{exponent}", *(outcome.time_label() for outcome in outcomes)
        )
    return table


def run_density(
    densities: tuple[float, ...] = (0.01, 0.05, 0.1, 0.2, 0.3),
    exponent: int = 6,
    rank: int = 10,
    timeout_sec: float = 60.0,
    seed: int = 0,
) -> ResultTable:
    """Figure 1(b): runtime vs. tensor density."""
    table = ResultTable(
        f"Figure 1(b) — runtime vs density (I=J=K=2^{exponent}, rank={rank})",
        ["density"] + _METHOD_HEADERS,
    )
    for density in densities:
        tensor = scalability_tensor(exponent, density, seed=seed)
        outcomes = _compare_methods(tensor, rank, timeout_sec, seed)
        table.add_row(density, *(outcome.time_label() for outcome in outcomes))
    return table


def run_rank(
    ranks: tuple[int, ...] = (10, 20, 30, 40, 50, 60),
    exponent: int = 6,
    density: float = 0.05,
    timeout_sec: float = 60.0,
    seed: int = 0,
) -> ResultTable:
    """Figure 1(c): runtime vs. rank (V = 15, so ranks > 15 split tables)."""
    table = ResultTable(
        f"Figure 1(c) — runtime vs rank (I=J=K=2^{exponent}, density={density})",
        ["rank"] + _METHOD_HEADERS,
    )
    tensor = scalability_tensor(exponent, density, seed=seed)
    for rank in ranks:
        outcomes = _compare_methods(tensor, rank, timeout_sec, seed)
        table.add_row(rank, *(outcome.time_label() for outcome in outcomes))
    return table
