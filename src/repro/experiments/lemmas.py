"""Empirical validation of the paper's communication analysis (Lemmas 6-7).

Lemma 6: the unfolded tensors are shuffled **once**, during partitioning.
Lemma 7: after partitioning, per-iteration traffic is only factor-matrix
broadcasts plus per-column error collections — O(T · R · I · (M + N)) —
and the unfoldings never move again.

The engine's ledger lets us check both directly: shuffle bytes must be
independent of the iteration count T (and proportional to |X|, since what
moves is the sparse coordinate triples), while broadcast/collect bytes grow
linearly with T; and the collection volume must grow with the partition
count N.
"""

from __future__ import annotations

from ..core import dbtf
from ..datasets import scalability_tensor
from ..distengine import SimulatedRuntime
from .runner import ResultTable

__all__ = ["run_traffic_vs_iterations", "run_traffic_vs_partitions"]


def _run_and_meter(tensor, rank, n_partitions, max_iterations, seed=0):
    runtime = SimulatedRuntime()
    result = dbtf(
        tensor,
        rank=rank,
        seed=seed,
        runtime=runtime,
        n_partitions=n_partitions,
        max_iterations=max_iterations,
    )
    return runtime.report(), result


def run_traffic_vs_iterations(
    iterations: tuple[int, ...] = (1, 2, 4),
    exponent: int = 5,
    density: float = 0.05,
    rank: int = 5,
) -> ResultTable:
    """Lemma 6/7: shuffle is one-off; broadcast/collect grow with T.

    Convergence may stop a run before its iteration cap, so the table
    reports the *performed* iteration count alongside the requested one;
    per-iteration traffic is what the lemma bounds.
    """
    tensor = scalability_tensor(exponent, density, seed=0)
    table = ResultTable(
        f"Lemmas 6-7 — network traffic vs iterations "
        f"(I=J=K=2^{exponent}, rank={rank})",
        ["max T", "performed T", "shuffle bytes", "broadcast bytes",
         "collect bytes"],
    )
    for max_iterations in iterations:
        report, result = _run_and_meter(tensor, rank, 8, max_iterations)
        table.add_row(
            max_iterations,
            result.n_iterations,
            report.shuffle_bytes,
            report.broadcast_bytes,
            report.collect_bytes,
        )
    return table


def run_traffic_vs_partitions(
    partition_counts: tuple[int, ...] = (2, 8, 32),
    exponent: int = 5,
    density: float = 0.05,
    rank: int = 5,
    max_iterations: int = 2,
) -> ResultTable:
    """Lemma 7: error-collection volume grows with the partition count N."""
    tensor = scalability_tensor(exponent, density, seed=0)
    table = ResultTable(
        f"Lemma 7 — collect traffic vs partitions "
        f"(I=J=K=2^{exponent}, rank={rank}, T={max_iterations})",
        ["partitions", "shuffle bytes", "collect bytes"],
    )
    for n_partitions in partition_counts:
        report, _ = _run_and_meter(tensor, rank, n_partitions, max_iterations)
        table.add_row(n_partitions, report.shuffle_bytes, report.collect_bytes)
    return table
