"""Figure 7: machine scalability of DBTF.

The paper runs the same decomposition (I = J = K = 2^12, density 0.01,
rank 10) on 4, 8, and 16 machines and reports the speed-up ``T4 / TM``,
observing near-linear scaling (2.2x from 4 to 16 machines — sublinear
because of the driver-side column-update barrier and broadcasts).

Our engine executes the decomposition once, records every task's duration
and every transfer, and replays the schedule under each machine count —
so the whole curve comes from a single run (DESIGN.md §3, substitution 1).
"""

from __future__ import annotations

from ..core import dbtf
from ..datasets import scalability_tensor
from ..distengine import SimulatedRuntime
from .runner import ResultTable

__all__ = ["run_machine_scalability"]


def run_machine_scalability(
    machines: tuple[int, ...] = (4, 8, 16),
    exponent: int = 7,
    density: float = 0.01,
    rank: int = 10,
    seed: int = 0,
    max_iterations: int = 5,
) -> ResultTable:
    """Speed-up T4/TM for increasing machine counts (paper: 2^12; ours 2^7)."""
    tensor = scalability_tensor(exponent, density, seed=seed)
    runtime = SimulatedRuntime()
    dbtf(
        tensor,
        rank=rank,
        seed=seed,
        runtime=runtime,
        n_partitions=max(machines) * 8,
        max_iterations=max_iterations,
    )
    base_machines = machines[0]
    base_time = runtime.simulated_time(base_machines)
    table = ResultTable(
        f"Figure 7 — machine scalability (I=J=K=2^{exponent}, "
        f"density={density}, rank={rank})",
        ["machines", "T_M (s)", f"speed-up T{base_machines}/T_M"],
    )
    for machine_count in machines:
        t_m = runtime.simulated_time(machine_count)
        table.add_row(machine_count, f"{t_m:.2f}", f"{base_time / t_m:.2f}")
    return table
