"""Tables I and III of the paper.

Table I is the qualitative scalability matrix (which method scales in which
dimension); here it is *derived from measurements* — a method is "High" on
an axis if it completed every point of the corresponding Figure 1 sweep.
Table III summarizes the datasets, pairing the paper-scale metadata with the
scaled stand-ins actually used.
"""

from __future__ import annotations

from ..datasets import REGISTRY
from .figure1 import run_density, run_dimensionality, run_rank
from .runner import ResultTable

__all__ = ["table1", "table3"]

_METHODS = ["DBTF (s)", "Walk'n'Merge (s)", "BCP_ALS (s)"]
_METHOD_LABELS = {"DBTF (s)": "DBTF", "Walk'n'Merge (s)": "Walk'n'Merge",
                  "BCP_ALS (s)": "BCP_ALS"}


def _axis_rating(table: ResultTable, method_header: str) -> str:
    """High if every sweep point completed, Low otherwise."""
    cells = table.column(method_header)
    return "High" if all(not cell.startswith("O.O.") for cell in cells) else "Low"


def table1(
    dimensionality: ResultTable | None = None,
    density: ResultTable | None = None,
    rank: ResultTable | None = None,
    timeout_sec: float = 30.0,
) -> ResultTable:
    """Table I: scalability comparison, derived from the Figure 1 sweeps.

    Pass precomputed sweep tables to avoid re-running them; otherwise the
    sweeps run here with the given timeout.
    """
    dimensionality = dimensionality or run_dimensionality(timeout_sec=timeout_sec)
    density = density or run_density(timeout_sec=timeout_sec)
    rank = rank or run_rank(timeout_sec=timeout_sec)
    table = ResultTable(
        "Table I — scalability of Boolean tensor factorization methods",
        ["Method", "Dimensionality", "Density", "Rank", "Distributed"],
    )
    distributed = {"DBTF": "Yes", "Walk'n'Merge": "No", "BCP_ALS": "No"}
    for header in _METHODS:
        label = _METHOD_LABELS[header]
        table.add_row(
            label,
            _axis_rating(dimensionality, header),
            _axis_rating(density, header),
            _axis_rating(rank, header),
            distributed[label],
        )
    return table


def table3(seed: int = 0) -> ResultTable:
    """Table III: dataset summary — paper scale vs. this reproduction."""
    table = ResultTable(
        "Table III — datasets (paper scale vs scaled stand-ins)",
        ["name", "modes", "paper shape", "paper nnz", "our shape", "our nnz"],
    )
    for spec in REGISTRY.values():
        tensor = spec.generate(seed)
        table.add_row(
            spec.name,
            spec.modes,
            spec.paper_shape,
            spec.paper_nnz,
            "x".join(str(s) for s in spec.shape),
            tensor.nnz,
        )
    return table
