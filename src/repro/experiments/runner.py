"""Experiment infrastructure: timeouts, method outcomes, result tables.

Mirrors the paper's evaluation protocol: every run gets a wall-clock budget
(the paper uses 6 h for synthetic and 12 h for real-world runs; ours are
scaled down) and a memory budget for BCP_ALS's association matrices, and
failures are reported as ``O.O.T.`` / ``O.O.M.`` rows exactly like the
paper's figures do.
"""

from __future__ import annotations

import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..baselines import MemoryBudgetExceeded, WalkNMergeConfig, bcp_als, walk_n_merge
from ..core import dbtf
from ..distengine import DEFAULT_CLUSTER, SimulatedRuntime
from ..tensor import SparseBoolTensor

__all__ = [
    "STATUS_OK",
    "STATUS_OOT",
    "STATUS_OOM",
    "MethodOutcome",
    "ResultTable",
    "call_with_timeout",
    "run_dbtf",
    "run_bcp_als",
    "run_walk_n_merge",
]

STATUS_OK = "ok"
STATUS_OOT = "O.O.T."
STATUS_OOM = "O.O.M."


class _Timeout(Exception):
    """Internal: raised by the SIGALRM handler."""


def call_with_timeout(
    fn: Callable[[], Any], timeout_sec: float | None
) -> tuple[Any, float, str]:
    """Run ``fn`` under a wall-clock budget.

    Returns ``(value, elapsed_seconds, status)``.  Timeouts use SIGALRM and
    therefore only fire from the main thread; elsewhere the budget is
    checked only after the call finishes (the run still completes, but is
    reported as O.O.T.).
    """
    use_alarm = (
        timeout_sec is not None
        and timeout_sec > 0
        and threading.current_thread() is threading.main_thread()
    )
    started = time.perf_counter()
    if use_alarm:
        def _handler(signum, frame):
            raise _Timeout()

        previous = signal.signal(signal.SIGALRM, _handler)
        signal.setitimer(signal.ITIMER_REAL, timeout_sec)
    try:
        value = fn()
        elapsed = time.perf_counter() - started
    except _Timeout:
        return None, time.perf_counter() - started, STATUS_OOT
    except MemoryBudgetExceeded:
        return None, time.perf_counter() - started, STATUS_OOM
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
    if timeout_sec is not None and elapsed > timeout_sec:
        return None, elapsed, STATUS_OOT
    return value, elapsed, STATUS_OK


@dataclass(frozen=True)
class MethodOutcome:
    """One method's result on one workload."""

    method: str
    status: str
    seconds: float
    error: int | None = None
    relative_error: float | None = None
    details: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def time_label(self) -> str:
        """Seconds if the run finished, the failure status otherwise."""
        return f"{self.seconds:.2f}" if self.ok else self.status

    def error_label(self) -> str:
        if not self.ok or self.relative_error is None:
            return self.status if not self.ok else "-"
        return f"{self.relative_error:.3f}"


class ResultTable:
    """A printable experiment table (one paper figure/table each)."""

    def __init__(self, title: str, headers: list[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([str(cell) for cell in cells])

    def to_text(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(row[i]) for row in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        lines = [",".join(self.headers)]
        lines.extend(",".join(row) for row in self.rows)
        return "\n".join(lines)

    def column(self, header: str) -> list[str]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        return self.to_text()


# ----------------------------------------------------------------------
# Standardized method runners
# ----------------------------------------------------------------------
def run_dbtf(
    tensor: SparseBoolTensor,
    rank: int,
    timeout_sec: float | None = None,
    n_machines: int = 16,
    backend: str = "serial",
    n_workers: int | None = None,
    tracing: bool = False,
    trace_path: str | None = None,
    trace_format: str = "jsonl",
    eager: bool = False,
    **config_overrides,
) -> MethodOutcome:
    """Run DBTF; ``seconds`` is the simulated M-machine wall time.

    The paper compares DBTF on its 16-worker cluster against the baselines
    on one machine, so the reported time is the engine's replay for
    ``n_machines``; the host's actual wall time is kept in
    ``details["host_seconds"]``.  ``backend``/``n_workers`` pick the
    host-side stage executor: the simulated time and all metered bytes are
    backend-invariant, but a parallel backend shrinks ``host_seconds`` on
    multi-core hosts.

    With ``tracing`` (or a ``trace_path``), the runtime collects a span
    trace: the tracer and metrics registry land in ``details["tracer"]`` /
    ``details["metrics"]``, and the trace is written to ``trace_path``
    (``trace_format`` is ``"jsonl"`` or ``"chrome"``) when one is given.

    ``eager=True`` disables stage fusion (legacy stage-per-transformation
    dispatch); results are identical, only ``details["stages_dispatched"]``
    grows — that A/B is what ``benchmarks/bench_plan.py`` measures.
    """
    if trace_format not in ("jsonl", "chrome"):
        raise ValueError(
            f"trace_format must be 'jsonl' or 'chrome', got {trace_format!r}"
        )
    tracing = tracing or trace_path is not None
    runtime_box: list[SimulatedRuntime] = []

    def _run():
        cluster = DEFAULT_CLUSTER.with_backend(backend, n_workers)
        if tracing:
            cluster = cluster.with_tracing()
        if eager:
            cluster = cluster.with_eager()
        with SimulatedRuntime(cluster) as runtime:
            runtime_box.append(runtime)
            return dbtf(tensor, rank=rank, runtime=runtime, **config_overrides)

    result, elapsed, status = call_with_timeout(_run, timeout_sec)
    if status != STATUS_OK:
        return MethodOutcome(method="DBTF", status=status, seconds=elapsed)
    runtime = runtime_box[0]
    simulated = runtime.simulated_time(n_machines)
    details = {
        "host_seconds": elapsed,
        "iterations": result.n_iterations,
        "shuffle_bytes": result.report.shuffle_bytes,
        "stages_dispatched": result.report.n_stages,
        "result": result,
    }
    if tracing:
        details["tracer"] = runtime.tracer
        details["metrics"] = runtime.metrics
        if trace_path is not None:
            from ..observability import write_chrome_trace, write_jsonl

            if trace_format == "chrome":
                write_chrome_trace(runtime.tracer, trace_path)
            else:
                write_jsonl(runtime.tracer, trace_path)
    return MethodOutcome(
        method="DBTF",
        status=STATUS_OK,
        seconds=simulated,
        error=result.error,
        relative_error=result.relative_error,
        details=details,
    )


def run_bcp_als(
    tensor: SparseBoolTensor,
    rank: int,
    timeout_sec: float | None = None,
    **kwargs,
) -> MethodOutcome:
    """Run BCP_ALS on a single (real) machine."""
    result, elapsed, status = call_with_timeout(
        lambda: bcp_als(tensor, rank=rank, **kwargs), timeout_sec
    )
    if status != STATUS_OK:
        return MethodOutcome(method="BCP_ALS", status=status, seconds=elapsed)
    return MethodOutcome(
        method="BCP_ALS",
        status=STATUS_OK,
        seconds=elapsed,
        error=result.error,
        relative_error=result.relative_error,
        details={"result": result},
    )


def run_walk_n_merge(
    tensor: SparseBoolTensor,
    rank: int,
    timeout_sec: float | None = None,
    config: WalkNMergeConfig | None = None,
) -> MethodOutcome:
    """Run Walk'n'Merge on a single (real) machine."""
    result, elapsed, status = call_with_timeout(
        lambda: walk_n_merge(tensor, rank=rank, config=config), timeout_sec
    )
    if status != STATUS_OK:
        return MethodOutcome(method="WalkNMerge", status=status, seconds=elapsed)
    return MethodOutcome(
        method="WalkNMerge",
        status=STATUS_OK,
        seconds=elapsed,
        error=result.error,
        relative_error=result.relative_error,
        details={"n_blocks": result.details["n_blocks"], "result": result},
    )
