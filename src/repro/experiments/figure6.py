"""Figure 6: scalability on the real-world datasets (Table III stand-ins).

The paper's outcome: DBTF is the only method that completes on every
dataset; Walk'n'Merge finishes only on Facebook; BCP_ALS fails on all of
them (out-of-memory, or out-of-time on DBLP).  The stand-ins are scaled so
the same qualitative pattern appears within a single-core time budget.
"""

from __future__ import annotations

from ..baselines import WalkNMergeConfig
from ..datasets import REGISTRY, load_dataset
from .runner import ResultTable, run_bcp_als, run_dbtf, run_walk_n_merge

__all__ = ["run_realworld"]


def run_realworld(
    dataset_names: tuple[str, ...] | None = None,
    rank: int = 10,
    timeout_sec: float = 30.0,
    seed: int = 0,
) -> ResultTable:
    """Runtime of the three methods on each real-world stand-in."""
    names = dataset_names if dataset_names is not None else tuple(REGISTRY)
    table = ResultTable(
        f"Figure 6 — real-world datasets (rank={rank}, "
        f"timeout={timeout_sec:.0f}s)",
        ["dataset", "nnz", "DBTF (s)", "Walk'n'Merge (s)", "BCP_ALS (s)"],
    )
    for name in names:
        tensor = load_dataset(name, seed=seed)
        dbtf_outcome = run_dbtf(
            tensor, rank, timeout_sec=timeout_sec, seed=seed, n_partitions=16
        )
        wnm_outcome = run_walk_n_merge(
            tensor,
            rank,
            timeout_sec=timeout_sec,
            config=WalkNMergeConfig(density_threshold=0.6, seed=seed),
        )
        bcp_outcome = run_bcp_als(tensor, rank, timeout_sec=timeout_sec)
        table.add_row(
            name,
            tensor.nnz,
            dbtf_outcome.time_label(),
            wnm_outcome.time_label(),
            bcp_outcome.time_label(),
        )
    return table
