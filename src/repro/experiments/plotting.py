"""Terminal rendering of experiment series as bar charts.

The paper's Figure 1 and Figure 6 are log-scale bar charts of runtimes per
method.  ``ascii_bar_chart`` renders a :class:`ResultTable` the same way so
`python -m repro experiment fig1a --chart` (and the examples) can show the
*shape* of a result — who wins, by how much, where methods fall over —
without leaving the terminal.  O.O.T./O.O.M. cells render as annotations.
"""

from __future__ import annotations

import math

from .runner import ResultTable

__all__ = ["ascii_bar_chart"]

_BAR_CHARACTER = "█"


def _parse_cell(cell: str) -> float | None:
    """A cell's numeric value, or None for failure markers like O.O.T."""
    try:
        return float(cell)
    except ValueError:
        return None


def ascii_bar_chart(
    table: ResultTable,
    value_columns: list[str] | None = None,
    label_column: str | None = None,
    width: int = 40,
    log_scale: bool = True,
) -> str:
    """Render selected numeric columns of a table as horizontal bars.

    Parameters
    ----------
    table:
        The experiment table to render.
    value_columns:
        Columns holding the bar values; defaults to every column after the
        first.  Non-numeric cells (``O.O.T.``, ``O.O.M.``) render as text.
    label_column:
        The column labelling each group; defaults to the first.
    width:
        Maximum bar width in characters.
    log_scale:
        Scale bars by log10 (the paper's plots are log-scale); values are
        shifted so the smallest positive value still gets a visible bar.
    """
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    label_column = label_column or table.headers[0]
    value_columns = value_columns or table.headers[1:]
    for header in [label_column, *value_columns]:
        if header not in table.headers:
            raise ValueError(f"unknown column {header!r}")

    values = []
    for column in value_columns:
        values.extend(
            parsed
            for parsed in (_parse_cell(cell) for cell in table.column(column))
            if parsed is not None and parsed > 0
        )
    if values:
        low = min(values)
        high = max(values)
    else:
        low = high = 1.0

    def bar_length(value: float) -> int:
        if value <= 0:
            return 1
        if not log_scale:
            return max(1, round(width * value / high))
        if high == low:
            return width
        position = (math.log10(value) - math.log10(low)) / (
            math.log10(high) - math.log10(low)
        )
        return max(1, round(1 + position * (width - 1)))

    label_width = max(
        (len(name) for name in value_columns), default=0
    )
    lines = [table.title, "=" * len(table.title)]
    labels = table.column(label_column)
    for row_index, group in enumerate(labels):
        lines.append(f"{group}:")
        for column in value_columns:
            cell = table.rows[row_index][table.headers.index(column)]
            parsed = _parse_cell(cell)
            name = column.ljust(label_width)
            if parsed is None:
                lines.append(f"  {name}  {cell}")
            else:
                bar = _BAR_CHARACTER * bar_length(parsed)
                lines.append(f"  {name}  {bar} {cell}")
    if log_scale and values:
        lines.append(f"(log scale, {low:g} .. {high:g})")
    return "\n".join(lines)
