"""The paper's evaluation harness: one module per figure/table."""

from .errors import (
    compare_on_spec,
    run_additive_noise_sweep,
    run_destructive_noise_sweep,
    run_factor_density_sweep,
    run_rank_sweep,
)
from .figure1 import run_density, run_dimensionality, run_rank
from .lemmas import run_traffic_vs_iterations, run_traffic_vs_partitions
from .plotting import ascii_bar_chart
from .figure6 import run_realworld
from .figure7 import run_machine_scalability
from .runner import (
    STATUS_OK,
    STATUS_OOM,
    STATUS_OOT,
    MethodOutcome,
    ResultTable,
    call_with_timeout,
    run_bcp_als,
    run_dbtf,
    run_walk_n_merge,
)
from .tables import table1, table3

__all__ = [
    "run_dimensionality",
    "run_density",
    "run_rank",
    "run_realworld",
    "run_machine_scalability",
    "run_traffic_vs_iterations",
    "run_traffic_vs_partitions",
    "ascii_bar_chart",
    "run_factor_density_sweep",
    "run_rank_sweep",
    "run_additive_noise_sweep",
    "run_destructive_noise_sweep",
    "compare_on_spec",
    "table1",
    "table3",
    "ResultTable",
    "MethodOutcome",
    "call_with_timeout",
    "run_dbtf",
    "run_bcp_als",
    "run_walk_n_merge",
    "STATUS_OK",
    "STATUS_OOT",
    "STATUS_OOM",
]
