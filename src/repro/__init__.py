"""repro — a reproduction of DBTF (ICDE 2017).

Fast and Scalable Distributed Boolean Tensor Factorization, reimplemented as
a pure-Python library: the DBTF algorithm on a simulated distributed engine,
the BCP_ALS and Walk'n'Merge baselines, synthetic workloads, and the paper's
full evaluation harness.

Quickstart::

    import numpy as np
    from repro import dbtf, planted_tensor

    rng = np.random.default_rng(0)
    tensor, _ = planted_tensor((64, 64, 64), rank=8, factor_density=0.2, rng=rng)
    result = dbtf(tensor, rank=8, seed=0)
    print(result.error, result.relative_error)
"""

from .bitops import BitMatrix
from .core import DbtfConfig, DecompositionResult, dbtf
from .incremental import EpochResult, FactorizationSession, SessionResult
from .resilience import CheckpointConfig, RetryPolicy, SpeculationConfig
from .tucker import BooleanTuckerConfig, BooleanTuckerResult, boolean_tucker
from .tensor import (
    SparseBoolTensor,
    add_additive_noise,
    add_destructive_noise,
    load_tensor,
    planted_tensor,
    random_factors,
    random_tensor,
    save_tensor,
    tensor_from_factors,
)

__version__ = "1.0.0"

__all__ = [
    "BitMatrix",
    "SparseBoolTensor",
    "dbtf",
    "DbtfConfig",
    "DecompositionResult",
    "FactorizationSession",
    "EpochResult",
    "SessionResult",
    "CheckpointConfig",
    "RetryPolicy",
    "SpeculationConfig",
    "boolean_tucker",
    "BooleanTuckerConfig",
    "BooleanTuckerResult",
    "tensor_from_factors",
    "random_tensor",
    "random_factors",
    "planted_tensor",
    "add_additive_noise",
    "add_destructive_noise",
    "save_tensor",
    "load_tensor",
    "__version__",
]
