"""Epoch deltas for evolving Boolean tensors.

A :class:`TensorDelta` is the canonical "what changed since last epoch"
record: two sorted, deduplicated, disjoint sets of row-major flat cell
indices — cells that turned 0→1 (``added``) and cells that turned 1→0
(``removed``).  Flat indices rather than coordinate rows make the set
algebra against :class:`~repro.tensor.sparse.SparseBoolTensor` (which
already keys its own set operations on row-major flat indices) a single
``np.isin``/``np.union1d`` pass, and make the wire/disk form compact.

``save_delta``/``load_delta`` give deltas the same human-readable text
format the rest of :mod:`repro.tensor.io` uses, so an evolving-tensor
pipeline can spool one delta file per tick next to its tensor files.
"""

from __future__ import annotations

import os

import numpy as np

from .sparse import SparseBoolTensor

__all__ = ["TensorDelta", "save_delta", "load_delta"]


def _canonical_flat(
    values, shape: tuple[int, ...], what: str
) -> np.ndarray:
    """Validate, deduplicate, and sort one flat-index set."""
    flat = np.asarray(
        [] if values is None else values, dtype=np.int64
    ).reshape(-1)
    if flat.size == 0:
        return np.zeros(0, dtype=np.int64)
    n_cells = int(np.prod(np.asarray(shape, dtype=np.int64)))
    if (flat < 0).any() or (flat >= n_cells).any():
        raise ValueError(
            f"{what} flat indices out of bounds for shape {shape} "
            f"({n_cells} cells)"
        )
    return np.unique(flat)


class TensorDelta:
    """An immutable set of cell flips between two same-shape Boolean tensors."""

    __slots__ = ("shape", "added", "removed")

    def __init__(self, shape: tuple[int, ...], added=None, removed=None):
        shape = tuple(int(s) for s in shape)
        if not shape or any(s < 0 for s in shape):
            raise ValueError(f"invalid tensor shape {shape}")
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "added", _canonical_flat(added, shape, "added"))
        object.__setattr__(
            self, "removed", _canonical_flat(removed, shape, "removed")
        )
        if np.intersect1d(self.added, self.removed).size:
            raise ValueError("a cell cannot be both added and removed")

    def __setattr__(self, name, value):
        raise AttributeError("TensorDelta is immutable")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coords(
        cls, shape: tuple[int, ...], added=None, removed=None
    ) -> "TensorDelta":
        """Build from ``(n, ndim)`` coordinate arrays instead of flat indices."""

        def flatten(coords):
            coords = np.asarray(
                [] if coords is None else coords, dtype=np.int64
            ).reshape(-1, len(shape))
            if coords.size == 0:
                return None
            if (coords < 0).any() or (
                coords >= np.asarray(shape, dtype=np.int64)[None, :]
            ).any():
                raise ValueError(f"coordinates out of bounds for shape {shape}")
            return np.ravel_multi_index(coords.T, shape)

        return cls(shape, flatten(added), flatten(removed))

    @classmethod
    def between(
        cls, old: SparseBoolTensor, new: SparseBoolTensor
    ) -> "TensorDelta":
        """The delta that advances ``old`` to ``new`` (same shape required)."""
        if old.shape != new.shape:
            raise ValueError(f"shape mismatch: {old.shape} vs {new.shape}")
        old_flat = old._flat_indices()
        new_flat = new._flat_indices()
        added = new_flat[~np.isin(new_flat, old_flat, assume_unique=True)]
        removed = old_flat[~np.isin(old_flat, new_flat, assume_unique=True)]
        return cls(old.shape, added, removed)

    @classmethod
    def empty(cls, shape: tuple[int, ...]) -> "TensorDelta":
        return cls(shape)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def n_added(self) -> int:
        return int(self.added.shape[0])

    @property
    def n_removed(self) -> int:
        return int(self.removed.shape[0])

    @property
    def n_changes(self) -> int:
        return self.n_added + self.n_removed

    @property
    def is_empty(self) -> bool:
        return self.n_changes == 0

    @property
    def nbytes(self) -> int:
        return int(self.added.nbytes + self.removed.nbytes)

    def added_coords(self) -> np.ndarray:
        """Added cells as an ``(n_added, ndim)`` coordinate array."""
        return np.stack(
            np.unravel_index(self.added, self.shape), axis=1
        ).astype(np.int64, copy=False)

    def removed_coords(self) -> np.ndarray:
        """Removed cells as an ``(n_removed, ndim)`` coordinate array."""
        return np.stack(
            np.unravel_index(self.removed, self.shape), axis=1
        ).astype(np.int64, copy=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TensorDelta):
            return NotImplemented
        return (
            self.shape == other.shape
            and bool(np.array_equal(self.added, other.added))
            and bool(np.array_equal(self.removed, other.removed))
        )

    def __hash__(self):
        return hash(
            (self.shape, self.added.tobytes(), self.removed.tobytes())
        )

    def __repr__(self) -> str:
        return (
            f"TensorDelta(shape={self.shape}, "
            f"+{self.n_added}/-{self.n_removed})"
        )


def save_delta(delta: TensorDelta, path: "str | os.PathLike") -> None:
    """Write one delta as text: a shape header then ``+``/``-`` coordinate lines.

    Format::

        # delta I J K
        + i j k
        - i j k
    """
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("# delta " + " ".join(str(s) for s in delta.shape) + "\n")
        for coordinate in delta.added_coords():
            handle.write("+ " + " ".join(str(int(c)) for c in coordinate) + "\n")
        for coordinate in delta.removed_coords():
            handle.write("- " + " ".join(str(int(c)) for c in coordinate) + "\n")


def load_delta(path: "str | os.PathLike") -> TensorDelta:
    """Read a delta written by :func:`save_delta`."""
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().split()
        if header[:2] != ["#", "delta"] or len(header) < 3:
            raise ValueError(f"{os.fspath(path)!r} is not a tensor delta file")
        shape = tuple(int(s) for s in header[2:])
        added, removed = [], []
        for line_number, line in enumerate(handle, start=2):
            fields = line.split()
            if not fields:
                continue
            sign, coordinate = fields[0], fields[1:]
            if sign not in ("+", "-") or len(coordinate) != len(shape):
                raise ValueError(
                    f"{os.fspath(path)!r} line {line_number}: expected "
                    f"'+' or '-' followed by {len(shape)} indices, got {line!r}"
                )
            target = added if sign == "+" else removed
            target.append([int(c) for c in coordinate])
    return TensorDelta.from_coords(
        shape,
        np.asarray(added, dtype=np.int64).reshape(-1, len(shape)),
        np.asarray(removed, dtype=np.int64).reshape(-1, len(shape)),
    )
