"""Random Boolean tensors, random factors, and the paper's noise models.

Section IV-A.1 of the paper uses two synthetic families:

* *scalability tensors* — uniform random tensors with a target density, swept
  over dimensionality and density;
* *error tensors* — a noise-free tensor built from random factor matrices,
  then perturbed with **additive** noise (extra 1s, a percentage of the
  noise-free nonzero count) and **destructive** noise (deleted 1s).
"""

from __future__ import annotations

import numpy as np

from ..bitops import BitMatrix
from .algebra import tensor_from_factors
from .sparse import SparseBoolTensor

__all__ = [
    "random_tensor",
    "random_factors",
    "planted_tensor",
    "add_additive_noise",
    "add_destructive_noise",
]


def random_tensor(
    shape: tuple[int, int, int], density: float, rng: np.random.Generator
) -> SparseBoolTensor:
    """A uniform random Boolean tensor with approximately the given density.

    Exactly ``round(density * cells)`` distinct cells are set, sampled
    without replacement, so the realized density is as close to the target
    as the discrete grid allows.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    n_cells = int(np.prod(np.asarray(shape, dtype=np.int64)))
    target = int(round(density * n_cells))
    if target == 0:
        return SparseBoolTensor(shape)
    flat = rng.choice(n_cells, size=target, replace=False)
    coords = np.stack(np.unravel_index(flat, shape), axis=1)
    return SparseBoolTensor(shape, coords)


def random_factors(
    shape: tuple[int, int, int],
    rank: int,
    density: float,
    rng: np.random.Generator,
) -> tuple[BitMatrix, BitMatrix, BitMatrix]:
    """Three random binary factor matrices with i.i.d. Bernoulli entries."""
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    return tuple(
        BitMatrix.random(dimension, rank, density, rng) for dimension in shape
    )


def planted_tensor(
    shape: tuple[int, int, int],
    rank: int,
    factor_density: float,
    rng: np.random.Generator,
    additive_noise: float = 0.0,
    destructive_noise: float = 0.0,
) -> tuple[SparseBoolTensor, tuple[BitMatrix, BitMatrix, BitMatrix]]:
    """A tensor with known (planted) Boolean factors plus optional noise.

    Returns the noisy tensor and the noise-free planted factors, mirroring
    the reconstruction-error experiments of Section IV-D.
    """
    factors = random_factors(shape, rank, factor_density, rng)
    clean = tensor_from_factors(factors)
    noisy = clean
    if additive_noise > 0.0:
        noisy = add_additive_noise(noisy, additive_noise, rng, reference_nnz=clean.nnz)
    if destructive_noise > 0.0:
        noisy = add_destructive_noise(noisy, destructive_noise, rng, reference_nnz=clean.nnz)
    return noisy, factors


def add_additive_noise(
    tensor: SparseBoolTensor,
    level: float,
    rng: np.random.Generator,
    reference_nnz: int | None = None,
) -> SparseBoolTensor:
    """Flip 0-cells to 1.  ``level`` = fraction of the reference nonzero count.

    "10% additive noise indicates that we add 10% more 1s to the noise-free
    tensor" (paper Sec. IV-A.1).
    """
    if level < 0:
        raise ValueError(f"noise level must be non-negative, got {level}")
    reference = tensor.nnz if reference_nnz is None else reference_nnz
    target = int(round(level * reference))
    if target == 0:
        return tensor.copy()
    n_cells = tensor.n_cells
    existing = set(np.ravel_multi_index(tensor.coords.T, tensor.shape).tolist())
    free_cells = n_cells - len(existing)
    if target > free_cells:
        raise ValueError(
            f"cannot add {target} new nonzeros: only {free_cells} zero cells left"
        )
    added: set[int] = set()
    # Rejection-sample distinct zero cells; cheap because tensors are sparse.
    while len(added) < target:
        batch = rng.integers(0, n_cells, size=2 * (target - len(added)))
        for flat in batch.tolist():
            if flat not in existing and flat not in added:
                added.add(flat)
                if len(added) == target:
                    break
    new_coords = np.stack(
        np.unravel_index(np.fromiter(added, dtype=np.int64), tensor.shape), axis=1
    )
    return SparseBoolTensor(
        tensor.shape, np.concatenate([tensor.coords, new_coords], axis=0)
    )


def add_destructive_noise(
    tensor: SparseBoolTensor,
    level: float,
    rng: np.random.Generator,
    reference_nnz: int | None = None,
) -> SparseBoolTensor:
    """Delete 1-cells.  ``level`` = fraction of the reference nonzero count.

    "5% destructive noise means that we delete 5% of the 1s from the
    noise-free tensor" (paper Sec. IV-A.1).
    """
    if level < 0:
        raise ValueError(f"noise level must be non-negative, got {level}")
    reference = tensor.nnz if reference_nnz is None else reference_nnz
    target = min(int(round(level * reference)), tensor.nnz)
    if target == 0:
        return tensor.copy()
    doomed = rng.choice(tensor.nnz, size=target, replace=False)
    keep = np.ones(tensor.nnz, dtype=bool)
    keep[doomed] = False
    return SparseBoolTensor(tensor.shape, tensor.coords[keep])
