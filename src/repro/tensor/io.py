"""Plain-text I/O for sparse Boolean tensors and binary factor matrices.

The tensor format mirrors the coordinate files the paper's released
datasets use: a header line ``# shape I J K`` followed by one
whitespace-separated coordinate triple per nonzero.  Factor matrices use
the same format with a ``# matrix N R`` header and (row, column) pairs.
"""

from __future__ import annotations

import os

import numpy as np

from ..bitops import BitMatrix
from .sparse import SparseBoolTensor

__all__ = [
    "save_tensor",
    "load_tensor",
    "save_matrix",
    "load_matrix",
    "save_factors",
    "load_factors",
]

_FACTOR_FILES = ("A.mtx", "B.mtx", "C.mtx")

_HEADER_PREFIX = "# shape"
_MATRIX_HEADER_PREFIX = "# matrix"


def save_tensor(tensor: SparseBoolTensor, path: str | os.PathLike) -> None:
    """Write a tensor to a coordinate-list text file."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{_HEADER_PREFIX} {' '.join(str(s) for s in tensor.shape)}\n")
        for coordinate in tensor.coords:
            handle.write(" ".join(str(int(c)) for c in coordinate) + "\n")


def load_tensor(path: str | os.PathLike) -> SparseBoolTensor:
    """Read a tensor written by :func:`save_tensor`."""
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline().strip()
        if not header.startswith(_HEADER_PREFIX):
            raise ValueError(
                f"{path}: missing '{_HEADER_PREFIX}' header, got {header!r}"
            )
        shape = tuple(int(token) for token in header[len(_HEADER_PREFIX) :].split())
        coords = []
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != len(shape):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(shape)} indices, "
                    f"got {len(parts)}"
                )
            coords.append([int(part) for part in parts])
    coord_array = np.asarray(coords, dtype=np.int64).reshape(-1, len(shape))
    return SparseBoolTensor(shape, coord_array)


def save_matrix(matrix: BitMatrix, path: str | os.PathLike) -> None:
    """Write a binary factor matrix as sparse (row, column) pairs."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"{_MATRIX_HEADER_PREFIX} {matrix.n_rows} {matrix.n_cols}\n")
        dense = matrix.to_dense()
        for row, col in np.argwhere(dense):
            handle.write(f"{row} {col}\n")


def load_matrix(path: str | os.PathLike) -> BitMatrix:
    """Read a factor matrix written by :func:`save_matrix`."""
    with open(path, "r", encoding="ascii") as handle:
        header = handle.readline().strip()
        if not header.startswith(_MATRIX_HEADER_PREFIX):
            raise ValueError(
                f"{path}: missing '{_MATRIX_HEADER_PREFIX}' header, got {header!r}"
            )
        n_rows, n_cols = (
            int(token) for token in header[len(_MATRIX_HEADER_PREFIX) :].split()
        )
        dense = np.zeros((n_rows, n_cols), dtype=np.uint8)
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{line_number}: expected 'row col', got {line!r}"
                )
            dense[int(parts[0]), int(parts[1])] = 1
    return BitMatrix.from_dense(dense)


def save_factors(
    factors: tuple[BitMatrix, BitMatrix, BitMatrix], directory: str | os.PathLike
) -> None:
    """Write a CP factor triple as ``A.mtx``/``B.mtx``/``C.mtx``."""
    os.makedirs(directory, exist_ok=True)
    for filename, factor in zip(_FACTOR_FILES, factors):
        save_matrix(factor, os.path.join(directory, filename))


def load_factors(
    directory: str | os.PathLike,
) -> tuple[BitMatrix, BitMatrix, BitMatrix]:
    """Read a factor triple written by :func:`save_factors`."""
    return tuple(
        load_matrix(os.path.join(directory, filename)) for filename in _FACTOR_FILES
    )
