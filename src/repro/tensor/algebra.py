"""Boolean tensor algebra: outer products and reconstruction from factors.

Implements Definitions 3-4 of the paper: a rank-R Boolean CP decomposition
represents a tensor as the Boolean sum of R rank-1 tensors
``a_r ∘ b_r ∘ c_r`` built from the columns of binary factor matrices.
"""

from __future__ import annotations

import numpy as np

from ..bitops import BitMatrix
from .sparse import SparseBoolTensor

__all__ = [
    "outer_product",
    "rank_one_coords",
    "tensor_from_factors",
    "reconstruct_dense",
    "validate_factors",
]


def outer_product(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> SparseBoolTensor:
    """The rank-1 Boolean tensor ``a ∘ b ∘ c`` from three 0/1 vectors."""
    a = np.asarray(a).astype(bool)
    b = np.asarray(b).astype(bool)
    c = np.asarray(c).astype(bool)
    coords = rank_one_coords(a, b, c)
    return SparseBoolTensor((a.shape[0], b.shape[0], c.shape[0]), coords)


def rank_one_coords(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Nonzero coordinates of ``a ∘ b ∘ c`` as an (nnz, 3) array."""
    ai = np.flatnonzero(a)
    bj = np.flatnonzero(b)
    ck = np.flatnonzero(c)
    if ai.size == 0 or bj.size == 0 or ck.size == 0:
        return np.zeros((0, 3), dtype=np.int64)
    grid = np.meshgrid(ai, bj, ck, indexing="ij")
    return np.stack([axis.ravel() for axis in grid], axis=1).astype(np.int64)


def validate_factors(factors: tuple[BitMatrix, BitMatrix, BitMatrix]) -> int:
    """Check the three factors share a rank; return that rank."""
    ranks = {factor.n_cols for factor in factors}
    if len(ranks) != 1:
        raise ValueError(
            f"factor matrices disagree on rank: {[f.shape for f in factors]}"
        )
    return ranks.pop()


def tensor_from_factors(
    factors: tuple[BitMatrix, BitMatrix, BitMatrix]
) -> SparseBoolTensor:
    """Boolean sum of the R rank-1 tensors defined by factor columns (Eq. 10)."""
    a_matrix, b_matrix, c_matrix = factors
    rank = validate_factors(factors)
    shape = (a_matrix.n_rows, b_matrix.n_rows, c_matrix.n_rows)
    pieces = [
        rank_one_coords(a_matrix.column(r), b_matrix.column(r), c_matrix.column(r))
        for r in range(rank)
    ]
    if not pieces:
        return SparseBoolTensor(shape)
    return SparseBoolTensor(shape, np.concatenate(pieces, axis=0))


def reconstruct_dense(
    factors: tuple[BitMatrix, BitMatrix, BitMatrix]
) -> np.ndarray:
    """Dense 0/1 reconstruction — for small tensors and test oracles only."""
    a_matrix, b_matrix, c_matrix = factors
    validate_factors(factors)
    a_dense = a_matrix.to_dense().astype(np.int32)
    b_dense = b_matrix.to_dense().astype(np.int32)
    c_dense = c_matrix.to_dense().astype(np.int32)
    # Count how many rank-1 components cover each cell; Boolean OR is > 0.
    counts = np.einsum("ir,jr,kr->ijk", a_dense, b_dense, c_dense)
    return (counts > 0).astype(np.uint8)
