"""Mode-n matricization (unfolding) of three-way Boolean tensors.

The layout follows Eq. (1) of the paper (converted to 0-based indices):

=======  =========  ==============================  ===========  ============
mode     row index  column index                    outer matrix inner matrix
=======  =========  ==============================  ===========  ============
mode 1   ``i``      ``j + k * J``                   ``C``        ``B``
mode 2   ``j``      ``i + k * I``                   ``C``        ``A``
mode 3   ``k``      ``i + j * I``                   ``B``        ``A``
=======  =========  ==============================  ===========  ============

so that ``X_(1) ≈ A ∘ (C ⊙ B)ᵀ`` etc. (Eq. 12).  The "outer" matrix indexes
the pointwise vector-matrix (PVM) blocks of the Khatri-Rao product and the
"inner" matrix spans the columns within one block — the structure DBTF's
partitioning and caching are built on (paper Figs. 4-5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sparse import SparseBoolTensor

__all__ = ["Unfolding", "unfold", "fold", "MODE_FACTOR_ROLES"]

# For mode n (0-based), which factor is updated and which factors play the
# Khatri-Rao roles in  X_(n) ≈ target ∘ (outer ⊙ inner)ᵀ.  Factors are
# referred to by their mode index: 0 -> A, 1 -> B, 2 -> C.
MODE_FACTOR_ROLES: dict[int, tuple[int, int, int]] = {
    0: (0, 2, 1),  # X(1) ≈ A (C ⊙ B)^T
    1: (1, 2, 0),  # X(2) ≈ B (C ⊙ A)^T
    2: (2, 1, 0),  # X(3) ≈ C (B ⊙ A)^T
}


@dataclass(frozen=True)
class Unfolding:
    """A mode-n unfolding of a three-way tensor, kept in sparse COO form.

    Attributes
    ----------
    mode:
        The unfolded mode (0, 1, or 2).
    n_rows:
        Size of the unfolded mode (the matrix has this many rows).
    block_count:
        Number of PVM blocks = size of the "outer" Khatri-Rao mode.
    block_width:
        Columns per PVM block = size of the "inner" Khatri-Rao mode.
    rows, block_ids, offsets:
        Parallel arrays over nonzeros: matrix row, PVM block index, and
        column offset within the block.  The absolute matrix column is
        ``block_ids * block_width + offsets``.
    """

    mode: int
    n_rows: int
    block_count: int
    block_width: int
    rows: np.ndarray
    block_ids: np.ndarray
    offsets: np.ndarray

    @property
    def n_cols(self) -> int:
        return self.block_count * self.block_width

    @property
    def nnz(self) -> int:
        return self.rows.shape[0]

    def columns(self) -> np.ndarray:
        """Absolute column index per nonzero."""
        return self.block_ids * self.block_width + self.offsets

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.n_rows, self.n_cols), dtype=np.uint8)
        if self.nnz:
            dense[self.rows, self.columns()] = 1
        return dense


def _mode_axes(mode: int) -> tuple[int, int, int]:
    """(row axis, block axis, offset axis) of the original tensor per mode."""
    if mode == 0:
        return 0, 2, 1  # row i, block k, offset j
    if mode == 1:
        return 1, 2, 0  # row j, block k, offset i
    if mode == 2:
        return 2, 1, 0  # row k, block j, offset i
    raise ValueError(f"mode must be 0, 1, or 2, got {mode}")


def unfold(tensor: SparseBoolTensor, mode: int) -> Unfolding:
    """Unfold a three-way Boolean tensor along ``mode`` (Eq. 1)."""
    if tensor.ndim != 3:
        raise ValueError(f"unfold expects a three-way tensor, got {tensor.ndim}-way")
    row_axis, block_axis, offset_axis = _mode_axes(mode)
    coords = tensor.coords
    return Unfolding(
        mode=mode,
        n_rows=tensor.shape[row_axis],
        block_count=tensor.shape[block_axis],
        block_width=tensor.shape[offset_axis],
        rows=coords[:, row_axis].copy(),
        block_ids=coords[:, block_axis].copy(),
        offsets=coords[:, offset_axis].copy(),
    )


def fold(unfolding: Unfolding) -> SparseBoolTensor:
    """Inverse of :func:`unfold`: reassemble the three-way tensor."""
    row_axis, block_axis, offset_axis = _mode_axes(unfolding.mode)
    shape = [0, 0, 0]
    shape[row_axis] = unfolding.n_rows
    shape[block_axis] = unfolding.block_count
    shape[offset_axis] = unfolding.block_width
    coords = np.zeros((unfolding.nnz, 3), dtype=np.int64)
    coords[:, row_axis] = unfolding.rows
    coords[:, block_axis] = unfolding.block_ids
    coords[:, offset_axis] = unfolding.offsets
    return SparseBoolTensor(tuple(shape), coords)
