"""Sparse Boolean tensors in coordinate (COO) form.

A Boolean tensor is a set of nonzero coordinates; all set-algebraic
operations (Boolean sum, difference, XOR) are set operations on coordinate
rows.  The class is N-way, although the paper — and therefore the rest of
this package — works with three-way tensors.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

__all__ = ["SparseBoolTensor"]


def _canonical_coords(coords: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Validate, deduplicate, and lexicographically sort coordinate rows."""
    coords = np.asarray(coords, dtype=np.int64)
    if coords.size == 0:
        return np.zeros((0, len(shape)), dtype=np.int64)
    if coords.ndim != 2 or coords.shape[1] != len(shape):
        raise ValueError(
            f"coords must have shape (nnz, {len(shape)}), got {coords.shape}"
        )
    if (coords < 0).any():
        raise ValueError("negative coordinates")
    limits = np.asarray(shape, dtype=np.int64)
    if (coords >= limits[None, :]).any():
        raise ValueError(f"coordinates out of bounds for shape {shape}")
    return np.unique(coords, axis=0)


class SparseBoolTensor:
    """An N-way Boolean tensor stored as sorted, deduplicated coordinates."""

    __slots__ = ("shape", "coords")

    def __init__(self, shape: tuple[int, ...], coords: np.ndarray | None = None):
        shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in shape):
            raise ValueError(f"negative dimension in shape {shape}")
        if not shape:
            raise ValueError("tensor must have at least one mode")
        self.shape = shape
        if coords is None:
            coords = np.zeros((0, len(shape)), dtype=np.int64)
        self.coords = _canonical_coords(coords, shape)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, shape: tuple[int, ...]) -> "SparseBoolTensor":
        return cls(shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseBoolTensor":
        dense = np.asarray(dense)
        coords = np.argwhere(dense != 0)
        return cls(dense.shape, coords)

    @classmethod
    def from_nonzeros(
        cls, shape: tuple[int, ...], nonzeros: Iterable[tuple[int, ...]]
    ) -> "SparseBoolTensor":
        coords = np.array(list(nonzeros), dtype=np.int64).reshape(-1, len(shape))
        return cls(shape, coords)

    def copy(self) -> "SparseBoolTensor":
        return SparseBoolTensor(self.shape, self.coords.copy())

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of nonzero entries, |X| in the paper's notation."""
        return self.coords.shape[0]

    @property
    def n_cells(self) -> int:
        return int(np.prod(np.asarray(self.shape, dtype=np.int64)))

    def density(self) -> float:
        return self.nnz / self.n_cells if self.n_cells else 0.0

    def frobenius_norm(self) -> float:
        """For a Boolean tensor the Frobenius norm is sqrt(|X|)."""
        return float(np.sqrt(self.nnz))

    # ------------------------------------------------------------------
    # Index helpers
    # ------------------------------------------------------------------
    def _flat_indices(self, coords: np.ndarray | None = None) -> np.ndarray:
        """Row-major flat index per coordinate row (used for set algebra)."""
        if coords is None:
            coords = self.coords
        return np.ravel_multi_index(coords.T, self.shape)

    def __contains__(self, coordinate: tuple[int, ...]) -> bool:
        coordinate = tuple(int(c) for c in coordinate)
        if len(coordinate) != self.ndim:
            raise ValueError(f"expected {self.ndim} indices, got {len(coordinate)}")
        if any(not 0 <= c < s for c, s in zip(coordinate, self.shape)):
            raise IndexError(f"coordinate {coordinate} out of bounds for {self.shape}")
        flat = np.ravel_multi_index(coordinate, self.shape)
        flats = self._flat_indices()
        position = np.searchsorted(flats, flat)
        return bool(position < flats.shape[0] and flats[position] == flat)

    # ------------------------------------------------------------------
    # Set algebra (Boolean tensor operations)
    # ------------------------------------------------------------------
    def _check_same_shape(self, other: "SparseBoolTensor") -> None:
        if self.shape != other.shape:
            raise ValueError(f"shape mismatch: {self.shape} vs {other.shape}")

    def boolean_or(self, other: "SparseBoolTensor") -> "SparseBoolTensor":
        """Boolean sum X ⊕ Y (Eq. 5)."""
        self._check_same_shape(other)
        coords = np.concatenate([self.coords, other.coords], axis=0)
        return SparseBoolTensor(self.shape, coords)

    def boolean_and(self, other: "SparseBoolTensor") -> "SparseBoolTensor":
        self._check_same_shape(other)
        mask = np.isin(self._flat_indices(), other._flat_indices(), assume_unique=True)
        return SparseBoolTensor(self.shape, self.coords[mask])

    def xor(self, other: "SparseBoolTensor") -> "SparseBoolTensor":
        self._check_same_shape(other)
        in_other = np.isin(self._flat_indices(), other._flat_indices(), assume_unique=True)
        in_self = np.isin(other._flat_indices(), self._flat_indices(), assume_unique=True)
        coords = np.concatenate([self.coords[~in_other], other.coords[~in_self]], axis=0)
        return SparseBoolTensor(self.shape, coords)

    def minus(self, other: "SparseBoolTensor") -> "SparseBoolTensor":
        """Entries of self that are not in other."""
        self._check_same_shape(other)
        mask = np.isin(self._flat_indices(), other._flat_indices(), assume_unique=True)
        return SparseBoolTensor(self.shape, self.coords[~mask])

    def hamming_distance(self, other: "SparseBoolTensor") -> int:
        """|X ⊕ Y| counting differing cells — the paper's error measure."""
        return self.xor(other).nnz

    def apply_delta(self, delta) -> "SparseBoolTensor":
        """The tensor one epoch later: ``delta.added`` on, ``delta.removed`` off.

        Strict by design: removing an absent cell or adding a present one
        means the delta was produced against a different base tensor, and an
        incremental factorization advanced with it would silently diverge
        from the from-scratch result — so both raise instead of saturating.
        """
        if tuple(delta.shape) != self.shape:
            raise ValueError(
                f"delta shape {tuple(delta.shape)} does not match tensor "
                f"shape {self.shape}"
            )
        flats = self._flat_indices()
        if delta.n_removed:
            present = np.isin(delta.removed, flats, assume_unique=True)
            if not present.all():
                raise ValueError(
                    f"delta removes {int((~present).sum())} cell(s) not "
                    f"present in the tensor (delta built against a "
                    f"different base?)"
                )
        if delta.n_added:
            duplicate = np.isin(delta.added, flats, assume_unique=True)
            if duplicate.any():
                raise ValueError(
                    f"delta adds {int(duplicate.sum())} cell(s) already "
                    f"present in the tensor (delta built against a "
                    f"different base?)"
                )
        kept = flats[~np.isin(flats, delta.removed, assume_unique=True)]
        new_flats = np.union1d(kept, delta.added)
        coords = np.stack(
            np.unravel_index(new_flats, self.shape), axis=1
        ).astype(np.int64, copy=False)
        return SparseBoolTensor(self.shape, coords)

    # ------------------------------------------------------------------
    # Conversion / inspection
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.uint8)
        if self.nnz:
            dense[tuple(self.coords.T)] = 1
        return dense

    def mode_slice(self, mode: int, index: int) -> "SparseBoolTensor":
        """The sub-tensor with mode ``mode`` fixed at ``index`` (mode dropped)."""
        if not 0 <= mode < self.ndim:
            raise ValueError(f"mode {mode} out of range for {self.ndim}-way tensor")
        if not 0 <= index < self.shape[mode]:
            raise IndexError(f"index {index} out of bounds for mode {mode}")
        keep = self.coords[:, mode] == index
        remaining = [m for m in range(self.ndim) if m != mode]
        new_shape = tuple(self.shape[m] for m in remaining)
        return SparseBoolTensor(new_shape, self.coords[keep][:, remaining])

    def mode_indices(self, mode: int) -> np.ndarray:
        """Distinct indices along ``mode`` that carry at least one nonzero."""
        if not 0 <= mode < self.ndim:
            raise ValueError(f"mode {mode} out of range for {self.ndim}-way tensor")
        return np.unique(self.coords[:, mode])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseBoolTensor):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self.coords, other.coords))

    def __hash__(self):
        raise TypeError("SparseBoolTensor is mutable and unhashable")

    def __repr__(self) -> str:
        return f"SparseBoolTensor(shape={self.shape}, nnz={self.nnz})"
