"""Boolean tensor data structures and algebra."""

from .algebra import (
    outer_product,
    rank_one_coords,
    reconstruct_dense,
    tensor_from_factors,
    validate_factors,
)
from .io import (
    load_factors,
    load_matrix,
    load_tensor,
    save_factors,
    save_matrix,
    save_tensor,
)
from .delta import TensorDelta, load_delta, save_delta
from .matricize import MODE_FACTOR_ROLES, Unfolding, fold, unfold
from .packed import PackedUnfolding
from .random import (
    add_additive_noise,
    add_destructive_noise,
    planted_tensor,
    random_factors,
    random_tensor,
)
from .sparse import SparseBoolTensor

__all__ = [
    "SparseBoolTensor",
    "TensorDelta",
    "save_delta",
    "load_delta",
    "Unfolding",
    "PackedUnfolding",
    "MODE_FACTOR_ROLES",
    "unfold",
    "fold",
    "outer_product",
    "rank_one_coords",
    "tensor_from_factors",
    "reconstruct_dense",
    "validate_factors",
    "random_tensor",
    "random_factors",
    "planted_tensor",
    "add_additive_noise",
    "add_destructive_noise",
    "save_tensor",
    "load_tensor",
    "save_matrix",
    "load_matrix",
    "save_factors",
    "load_factors",
]
