"""Dense bit-packed storage for mode-n unfoldings.

DBTF's inner loop XORs reconstructed rows against unfolded-tensor rows block
by block (paper Fig. 3).  :class:`PackedUnfolding` lays the unfolding out as
a ``(n_rows, block_count, n_words)`` uint64 array aligned to the pointwise
vector-matrix (PVM) block boundaries, so a block of a row is one contiguous
word slice and the error kernel is pure vectorized XOR + popcount.
"""

from __future__ import annotations

import numpy as np

from ..bitops import packing
from .matricize import Unfolding

__all__ = ["PackedUnfolding"]


class PackedUnfolding:
    """A mode-n unfolding packed along the within-block (inner) axis."""

    __slots__ = ("mode", "n_rows", "block_count", "block_width", "n_words", "words")

    def __init__(self, unfolding: Unfolding):
        self.mode = unfolding.mode
        self.n_rows = unfolding.n_rows
        self.block_count = unfolding.block_count
        self.block_width = unfolding.block_width
        self.n_words = packing.words_for_bits(unfolding.block_width)
        self.words = np.zeros(
            (self.n_rows, self.block_count, self.n_words), dtype=np.uint64
        )
        if unfolding.nnz:
            word_index = unfolding.offsets // packing.WORD_BITS
            bit_offset = unfolding.offsets % packing.WORD_BITS
            flat = self.words.reshape(-1)
            linear = (
                unfolding.rows * self.block_count + unfolding.block_ids
            ) * self.n_words + word_index
            np.bitwise_or.at(
                flat, linear, np.uint64(1) << bit_offset.astype(np.uint64)
            )

    @classmethod
    def from_words(
        cls,
        mode: int,
        n_rows: int,
        block_count: int,
        block_width: int,
        words: np.ndarray,
    ) -> "PackedUnfolding":
        """Wrap already-packed words (e.g. a read-only memmap) directly.

        The storage tier's load path: words written by
        :class:`~repro.storage.MmapUnfoldingStore` come back as a memmap,
        and this constructor attaches them without copying.  The array may
        be read-only — every consumer either reads slices or copies them
        into fresh partition arrays.
        """
        expected = (n_rows, block_count, packing.words_for_bits(block_width))
        if tuple(words.shape) != expected:
            raise ValueError(
                f"words shape {tuple(words.shape)} does not match "
                f"expected {expected}"
            )
        if words.dtype != np.uint64:
            raise ValueError(f"words must be uint64, got {words.dtype}")
        packed = cls.__new__(cls)
        packed.mode = mode
        packed.n_rows = n_rows
        packed.block_count = block_count
        packed.block_width = block_width
        packed.n_words = expected[2]
        packed.words = words
        return packed

    @property
    def n_cols(self) -> int:
        return self.block_count * self.block_width

    @property
    def nbytes(self) -> int:
        return int(self.words.nbytes)

    def nnz(self) -> int:
        return packing.popcount(self.words)

    def row_block(self, row: int, block: int) -> np.ndarray:
        """Packed words of one PVM block of one row."""
        return self.words[row, block]

    def block_slice(self, blocks: slice) -> np.ndarray:
        """A view over a contiguous range of blocks, all rows."""
        return self.words[:, blocks]

    def to_dense(self) -> np.ndarray:
        """Unpack back to a dense 0/1 matrix of shape (n_rows, n_cols)."""
        bits = packing.unpack_bits(self.words, self.block_width)
        return bits.reshape(self.n_rows, self.n_cols)

    def __repr__(self) -> str:
        return (
            f"PackedUnfolding(mode={self.mode}, rows={self.n_rows}, "
            f"blocks={self.block_count}x{self.block_width})"
        )
