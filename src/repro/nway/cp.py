"""Boolean CP decomposition of N-way tensors.

The paper defines Boolean tensors and CP for arbitrary order (Sec. II) but
DBTF itself — its partitioning and caching — is specialized to three ways.
This module supplies the general case with the same greedy alternating
scheme on bit-packed rows: for mode n, the unfolding's row i is compared
against the Boolean sum of the *coverage rows* of the components selected
by ``factor_n[i, :]``, where component r's coverage row is the outer
product of every other factor's column r, flattened to match the unfolding.

Single-machine and dense-unfolding based: intended for the moderate sizes
where an N-way analysis is run interactively, not for DBTF-scale data.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import TYPE_CHECKING, Generator

import numpy as np

from ..bitops import BitMatrix, packing
from ..core.steps import StepEvent, drive
from ..distengine import DEFAULT_CLUSTER, SimulatedRuntime
from ..distengine.backends import BACKEND_NAMES
from ..resilience import CheckpointConfig, CheckpointManager, config_fingerprint
from ..tensor import SparseBoolTensor

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..observability import MetricsRegistry, Tracer

__all__ = [
    "NwayCpConfig",
    "NwayCpResult",
    "cp_nway",
    "cp_nway_steps",
    "nway_reconstruct",
]


@dataclass(frozen=True)
class NwayCpConfig:
    """Hyper-parameters of the N-way Boolean CP solver.

    ``backend``/``n_workers`` parallelize the independent restarts
    (``n_initial_sets``) across the stage-executor seam; the selected best
    result is identical under every backend.

    ``checkpoint`` snapshots at *restart* granularity: every completed
    restart's candidate is persisted, so a killed multi-restart sweep
    resumes with only the interrupted restart re-solved.  Checkpointed
    runs always solve restarts sequentially (a parallel stage has no
    restart boundaries to snapshot at); the candidate set is identical
    either way.
    """

    rank: int
    max_iterations: int = 10
    tolerance: float = 0.0
    n_initial_sets: int = 1
    seed: int = 0
    backend: str = "serial"
    n_workers: int | None = None
    checkpoint: CheckpointConfig | None = None

    def __post_init__(self) -> None:
        if self.rank <= 0:
            raise ValueError(f"rank must be positive, got {self.rank}")
        if self.max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {self.tolerance}")
        if self.n_initial_sets <= 0:
            raise ValueError(
                f"n_initial_sets must be positive, got {self.n_initial_sets}"
            )
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, got {self.backend!r}"
            )
        if self.n_workers is not None and self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")


@dataclass(frozen=True)
class NwayCpResult:
    """Outcome of an N-way Boolean CP decomposition."""

    factors: tuple[BitMatrix, ...]
    error: int
    input_nnz: int
    errors_per_iteration: tuple[int, ...]
    converged: bool

    @property
    def rank(self) -> int:
        return self.factors[0].n_cols if self.factors else 0

    @property
    def relative_error(self) -> float:
        return self.error / self.input_nnz if self.input_nnz else float(self.error)

    @property
    def n_iterations(self) -> int:
        return len(self.errors_per_iteration)

    def reconstruct(self) -> SparseBoolTensor:
        return nway_reconstruct(self.factors)


def nway_reconstruct(factors: tuple[BitMatrix, ...]) -> SparseBoolTensor:
    """Boolean sum of rank-1 tensors from N factor matrices (Eq. 10)."""
    if not factors:
        raise ValueError("at least one factor matrix required")
    ranks = {factor.n_cols for factor in factors}
    if len(ranks) != 1:
        raise ValueError(
            f"factor matrices disagree on rank: {[f.shape for f in factors]}"
        )
    shape = tuple(factor.n_rows for factor in factors)
    rank = ranks.pop()
    pieces = []
    for r in range(rank):
        columns = [factor.column(r).astype(bool) for factor in factors]
        supports = [np.flatnonzero(column) for column in columns]
        if any(support.size == 0 for support in supports):
            continue
        grid = np.meshgrid(*supports, indexing="ij")
        pieces.append(np.stack([axis.ravel() for axis in grid], axis=1))
    if not pieces:
        return SparseBoolTensor(shape)
    return SparseBoolTensor(shape, np.concatenate(pieces, axis=0))


def _coverage_rows(factors: list[np.ndarray], mode: int, rank: int) -> np.ndarray:
    """Packed coverage row per component for the mode being updated.

    Component r covers, within the mode-n unfolding, the outer product of
    every other factor's column r — flattened in the same C order as
    ``moveaxis(dense, mode, 0).reshape(rows, -1)``.
    """
    others = [factors[m] for m in range(len(factors)) if m != mode]
    width = int(np.prod([other.shape[0] for other in others])) if others else 1
    rows = np.zeros((rank, width), dtype=np.uint8)
    for r in range(rank):
        coverage = reduce(
            lambda acc, other: np.multiply.outer(acc, other[:, r].astype(bool)),
            others,
            np.array(True),
        )
        rows[r] = np.asarray(coverage, dtype=np.uint8).ravel()
    return packing.pack_bits(rows)


def _update_mode(
    unfolded_words: np.ndarray,
    factor: np.ndarray,
    coverage_words: np.ndarray,
) -> tuple[np.ndarray, int]:
    """Greedy column-wise update of one factor (the 3-way Algorithm 4,
    generalized): per column, per row, keep the candidate value with the
    smaller error against the packed unfolding."""
    n_rows, rank = factor.shape
    n_words = unfolded_words.shape[1]
    updated = factor.copy()
    error_after = 0
    for column in range(rank):
        cover_others = np.zeros((n_rows, n_words), dtype=np.uint64)
        for component in range(rank):
            if component == column:
                continue
            users = updated[:, component].astype(bool)
            if users.any():
                cover_others[users] |= coverage_words[component]
        error_if_zero = packing.popcount_rows(unfolded_words ^ cover_others)
        newly = coverage_words[column][None, :] & ~cover_others
        delta = packing.popcount_rows(newly) - 2 * packing.popcount_rows(
            newly & unfolded_words
        )
        error_if_one = error_if_zero + delta
        updated[:, column] = (error_if_one < error_if_zero).astype(np.uint8)
        error_after = int(np.minimum(error_if_zero, error_if_one).sum())
    return updated, error_after


def _sampled_nway_factors(
    tensor: SparseBoolTensor, rank: int, rng: np.random.Generator
) -> list[np.ndarray]:
    """Fiber-sampling initialization, generalized to N modes.

    As in the three-way driver, each component's anchor nonzero is drawn
    from the cells not yet covered by earlier components' seed blocks, so
    the initial components spread across the tensor's support.
    """
    factors = [
        np.zeros((dimension, rank), dtype=np.uint8) for dimension in tensor.shape
    ]
    if tensor.nnz == 0:
        return factors
    coords = tensor.coords
    covered = np.zeros(tensor.nnz, dtype=bool)
    for r in range(rank):
        candidates = np.flatnonzero(~covered)
        if candidates.size == 0:
            candidates = np.arange(tensor.nnz)
        anchor = coords[int(candidates[rng.integers(0, candidates.size)])]
        fibers = []
        for mode in range(tensor.ndim):
            others = [m for m in range(tensor.ndim) if m != mode]
            mask = np.ones(tensor.nnz, dtype=bool)
            for other in others:
                mask &= coords[:, other] == anchor[other]
            fiber = coords[mask][:, mode]
            fibers.append(fiber)
            factors[mode][fiber, r] = 1
        block_mask = np.ones(tensor.nnz, dtype=bool)
        for mode, fiber in enumerate(fibers):
            block_mask &= np.isin(coords[:, mode], fiber)
        covered |= block_mask
    return factors


def cp_nway(
    tensor: SparseBoolTensor,
    rank: int | None = None,
    config: NwayCpConfig | None = None,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> NwayCpResult:
    """Boolean CP decomposition of an N-way binary tensor (N >= 2).

    Parameters
    ----------
    tensor:
        The binary input tensor, any number of modes >= 2.
    rank:
        Number of components (ignored when ``config`` is given).
    config:
        Full configuration.
    tracer:
        Optional :class:`~repro.observability.Tracer`; when given, the
        restart stage runs through the stage-executor seam with per-task
        span collection, exactly like the distributed engine's stages.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry` the restart
        stage reports ``stages_total``/``tasks_total`` and worker-side
        metric increments into.
    """
    if tensor.ndim < 2:
        raise ValueError(f"cp_nway needs at least 2 modes, got {tensor.ndim}")
    if config is None:
        if rank is None:
            raise ValueError("either rank or config must be provided")
        config = NwayCpConfig(rank=rank)

    if config.checkpoint is not None:
        return drive(
            cp_nway_steps(tensor, config, tracer=tracer, metrics=metrics)
        )
    candidates = _solve_restarts(
        tensor, _packed_unfoldings(tensor), config, tracer=tracer,
        metrics=metrics,
    )
    best: NwayCpResult | None = None
    for candidate in candidates:
        if best is None or candidate.error < best.error:
            best = candidate
    return best


def _packed_unfoldings(tensor: SparseBoolTensor) -> list[np.ndarray]:
    """Bit-packed mode-n unfoldings of a (dense-able) tensor."""
    dense = tensor.to_dense()
    return [
        packing.pack_bits(
            np.moveaxis(dense, mode, 0).reshape(tensor.shape[mode], -1)
        )
        for mode in range(tensor.ndim)
    ]


def cp_nway_steps(
    tensor: SparseBoolTensor,
    config: NwayCpConfig,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> "Generator[StepEvent, None, NwayCpResult]":
    """Cooperatively-stepped N-way CP: one restart per ``next()``.

    Restarts are this solver's checkpointable unit (see
    :class:`NwayCpConfig`): the sweep runs sequentially, every completed
    restart's candidate list is snapshotted when checkpointing is
    configured, and a :class:`~repro.core.steps.StepEvent` is yielded after
    each restart with the best error so far.  Draining the generator
    matches :func:`cp_nway` with a checkpoint config bit-for-bit; each
    restart still derives its generator from ``seed + restart``, so the
    candidate set is identical to the parallel fan-out too.
    """
    if tensor.ndim < 2:
        raise ValueError(f"cp_nway needs at least 2 modes, got {tensor.ndim}")
    unfoldings = _packed_unfoldings(tensor)
    manager = None
    if config.checkpoint is not None:
        manager = CheckpointManager(
            config.checkpoint,
            _nway_fingerprint(tensor, config),
            metrics=metrics,
            tracer=tracer,
        )
    candidates: list[NwayCpResult] = []
    start = 0
    if manager is not None and config.checkpoint.resume:
        loaded = manager.load_latest()
        if loaded is not None:
            step, state = loaded
            candidates = list(state["candidates"])
            start = step + 1
    last = config.n_initial_sets - 1
    for restart in range(start, config.n_initial_sets):
        candidates.append(
            _solve_once(
                tensor, unfoldings, config,
                np.random.default_rng(config.seed + restart),
            )
        )
        if manager is not None and (manager.should_save(restart) or restart == last):
            manager.save(restart, {"candidates": list(candidates)})
        yield StepEvent(
            restart,
            min(candidate.error for candidate in candidates),
            restart == last,
            phase="restart",
        )
    best: NwayCpResult | None = None
    for candidate in candidates:
        if best is None or candidate.error < best.error:
            best = candidate
    return best


class _RestartTask:
    """Legacy stage payload: solve the restarts assigned to one partition.

    Each restart derives its generator from ``seed + restart`` (the same
    rule as the sequential path), so the candidate set — and therefore the
    selected best — is identical under every backend.  Embeds the tensor
    and unfoldings in every task; the handle variant below references one
    broadcast instead.
    """

    __slots__ = ("tensor", "unfoldings", "config")

    def __init__(self, tensor, unfoldings, config):
        self.tensor = tensor
        self.unfoldings = unfoldings
        self.config = config

    def __call__(self, _index: int, restarts: list[int]) -> list["NwayCpResult"]:
        return [
            _solve_once(
                self.tensor,
                self.unfoldings,
                self.config,
                np.random.default_rng(self.config.seed + restart),
            )
            for restart in restarts
        ]


class _RestartTaskFromHandle:
    """Stage payload: restart solves referencing one problem broadcast.

    The handle resolves to ``(tensor, unfoldings)`` worker-side, so each
    of the N restart tasks ships ~32 bytes of problem data instead of the
    full tensor plus every packed unfolding.
    """

    __slots__ = ("problem", "config")

    def __init__(self, problem, config):
        self.problem = problem
        self.config = config

    def __call__(self, _index: int, restarts: list[int]) -> list["NwayCpResult"]:
        tensor, unfoldings = self.problem.value
        return [
            _solve_once(
                tensor,
                unfoldings,
                self.config,
                np.random.default_rng(self.config.seed + restart),
            )
            for restart in restarts
        ]


def _solve_restarts(
    tensor: SparseBoolTensor,
    unfoldings: list[np.ndarray],
    config: NwayCpConfig,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> list["NwayCpResult"]:
    """All initial-set candidates, in restart order.

    With a parallel backend and more than one restart, the independent
    solves run concurrently (one task per restart) through the same
    stage-executor seam the distributed engine uses.  With a tracer or a
    metrics registry attached, the stage always goes through the backend so
    the observability payloads are collected regardless of backend choice.
    """
    restarts = list(range(config.n_initial_sets))
    observing = tracer is not None or metrics is not None
    if not observing and (config.backend == "serial" or config.n_initial_sets == 1):
        return [
            _solve_once(
                tensor, unfoldings, config, np.random.default_rng(config.seed + r)
            )
            for r in restarts
        ]
    # Route the restart fan-out through the distributed engine's lazy API:
    # one partition per restart, one ``cpNway.restarts`` stage at the glom
    # barrier.  The runtime handles what the manual backend call used to —
    # stage/task counters, worker metric-delta merging, and span grafting —
    # on the caller's registries.
    cluster = DEFAULT_CLUSTER.with_backend(config.backend, config.n_workers)
    with SimulatedRuntime(cluster, tracer=tracer, metrics=metrics) as runtime:
        if runtime.config.handle_broadcasts:
            problem = runtime.broadcast(
                (tensor, unfoldings), name="cpNway.broadcast"
            )
            task = _RestartTaskFromHandle(problem, config)
        else:
            task = _RestartTask(tensor, unfoldings, config)
        partitions = (
            runtime.from_partitions([[r] for r in restarts], name="cpNway")
            .map_partitions_with_index(task, name="cpNway.restarts")
            .glom()
        )
    return [candidate for partition in partitions for candidate in partition]


def _nway_fingerprint(tensor: SparseBoolTensor, config: NwayCpConfig) -> str:
    """Fingerprint of everything shaping the restart candidates.

    Unlike the dbtf fingerprint, ``max_iterations``/``tolerance`` are
    *included*: resume granularity is whole restarts, and a completed
    restart solved under a different iteration budget is a different
    candidate.  Backend/worker choices are excluded — they never change
    results.
    """
    return config_fingerprint(
        {
            "algorithm": "cp_nway",
            "rank": config.rank,
            "seed": config.seed,
            "n_initial_sets": config.n_initial_sets,
            "max_iterations": config.max_iterations,
            "tolerance": config.tolerance,
            "shape": list(tensor.shape),
            "nnz": tensor.nnz,
        }
    )


def _solve_once(
    tensor: SparseBoolTensor,
    unfoldings: list[np.ndarray],
    config: NwayCpConfig,
    rng: np.random.Generator,
) -> NwayCpResult:
    factors = _sampled_nway_factors(tensor, config.rank, rng)
    errors: list[int] = []
    converged = False
    threshold = config.tolerance * max(tensor.nnz, 1)
    error = tensor.nnz
    for _ in range(config.max_iterations):
        for mode in range(tensor.ndim):
            coverage = _coverage_rows(factors, mode, config.rank)
            factors[mode], error = _update_mode(
                unfoldings[mode], factors[mode], coverage
            )
        if errors and errors[-1] - error <= threshold:
            errors.append(error)
            converged = True
            break
        errors.append(error)
    return NwayCpResult(
        factors=tuple(BitMatrix.from_dense(factor) for factor in factors),
        error=errors[-1],
        input_nnz=tensor.nnz,
        errors_per_iteration=tuple(errors),
        converged=converged,
    )
