"""N-way Boolean CP decomposition (general-order extension)."""

from .cp import NwayCpConfig, NwayCpResult, cp_nway, cp_nway_steps, nway_reconstruct

__all__ = ["cp_nway", "cp_nway_steps", "nway_reconstruct", "NwayCpConfig", "NwayCpResult"]
