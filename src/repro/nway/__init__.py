"""N-way Boolean CP decomposition (general-order extension)."""

from .cp import NwayCpConfig, NwayCpResult, cp_nway, nway_reconstruct

__all__ = ["cp_nway", "nway_reconstruct", "NwayCpConfig", "NwayCpResult"]
