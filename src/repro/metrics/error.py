"""Reconstruction-error metrics (paper Sec. IV-D).

The paper measures ``|X ⊖ X̃|`` — the number of cells where the
reconstruction differs from the input.  :func:`reconstruction_error` computes
it sparsely; :func:`fast_reconstruction_error` computes the same value with
the bit-packed cache kernel and scales to much larger tensors.
"""

from __future__ import annotations

import numpy as np

from ..bitops import BitMatrix, packing
from ..bitops.ops import xor_popcount
from ..core.cache import RowSummationCache
from ..tensor import PackedUnfolding, SparseBoolTensor, tensor_from_factors, unfold

__all__ = [
    "reconstruction_error",
    "relative_reconstruction_error",
    "fast_reconstruction_error",
    "coverage_stats",
]

Factors = tuple[BitMatrix, BitMatrix, BitMatrix]


def reconstruction_error(tensor: SparseBoolTensor, factors: Factors) -> int:
    """``|X ⊕ X̃|`` via sparse reconstruction."""
    return tensor.hamming_distance(tensor_from_factors(factors))


def relative_reconstruction_error(tensor: SparseBoolTensor, factors: Factors) -> float:
    """Reconstruction error normalized by ``|X|``."""
    error = reconstruction_error(tensor, factors)
    return error / tensor.nnz if tensor.nnz else float(error)


def fast_reconstruction_error(
    tensor: SparseBoolTensor, factors: Factors, group_size: int = 16
) -> int:
    """``|X ⊕ X̃|`` without materializing the reconstruction.

    Uses the mode-1 identity ``X̃_(1)[i] = OR over blocks k of the cached
    row summation keyed by a_i: AND c_k:`` — the same structure DBTF's
    update kernel exploits — so the cost is one pass over the packed
    unfolding instead of an explicit Boolean sum of R rank-1 tensors.
    """
    a_matrix, b_matrix, c_matrix = factors
    packed = PackedUnfolding(unfold(tensor, 0))
    cache = RowSummationCache(b_matrix, group_size)
    tables = cache.full_tables
    error = 0
    for k in range(packed.block_count):
        anded = a_matrix.words & c_matrix.words[k]
        keys = cache.group_keys(anded)
        reconstructed = cache.fetch(tables, keys)  # (I, words)
        error += xor_popcount(reconstructed, packed.words[:, k, :])
    return error


def coverage_stats(tensor: SparseBoolTensor, factors: Factors) -> dict[str, float]:
    """Precision/recall-style view of a factorization.

    * ``covered_ones``: input nonzeros the reconstruction covers (recall
      numerator);
    * ``overcovered_zeros``: reconstruction nonzeros not in the input;
    * ``precision`` and ``recall`` of the reconstruction as a predictor of
      the input's nonzeros.
    """
    reconstructed = tensor_from_factors(factors)
    covered = tensor.boolean_and(reconstructed).nnz
    overcovered = reconstructed.minus(tensor).nnz
    precision = covered / reconstructed.nnz if reconstructed.nnz else 1.0
    recall = covered / tensor.nnz if tensor.nnz else 1.0
    return {
        "covered_ones": float(covered),
        "overcovered_zeros": float(overcovered),
        "precision": precision,
        "recall": recall,
    }
