"""MDL model-order selection for Boolean tensor factorization.

Boolean factorization has no obvious rank-selection criterion; the MDL
(minimum description length) principle — standard in the Boolean matrix
factorization literature (Miettinen & Vreeken) — picks the rank whose
*model plus error* encoding is shortest:

    L(rank) = L(factors) + L(X ⊕ X̃)

Each binary vector of length n with k ones costs ``log2(n + 1)`` bits for
k plus ``log2 C(n, k)`` bits for the positions; the error tensor is encoded
the same way over the IJK cells.  More components shrink the error term
but grow the model term, so L is minimized at a data-supported rank.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..bitops import BitMatrix
from ..tensor import SparseBoolTensor
from .error import reconstruction_error

__all__ = [
    "log2_binomial",
    "vector_code_length",
    "factors_code_length",
    "description_length",
    "RankSelection",
    "select_rank",
]

Factors = tuple[BitMatrix, BitMatrix, BitMatrix]


def log2_binomial(n: int, k: int) -> float:
    """``log2 C(n, k)`` via lgamma, stable for large n."""
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got n={n}, k={k}")
    if k == 0 or k == n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2)


def vector_code_length(n: int, k: int) -> float:
    """Bits to encode a binary vector of length n with k ones."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return math.log2(n + 1) + log2_binomial(n, k)


def factors_code_length(factors: Factors) -> float:
    """Bits to encode three binary factor matrices, column by column."""
    total = 0.0
    for factor in factors:
        for column in range(factor.n_cols):
            ones = int(factor.column(column).sum())
            total += vector_code_length(factor.n_rows, ones)
    return total


def description_length(tensor: SparseBoolTensor, factors: Factors) -> float:
    """Total MDL cost: factors plus the error tensor as a sparse cell set."""
    error = reconstruction_error(tensor, factors)
    error_bits = vector_code_length(tensor.n_cells, error)
    return factors_code_length(factors) + error_bits


@dataclass(frozen=True)
class RankSelection:
    """Result of an MDL rank sweep."""

    best_rank: int
    candidates: tuple[tuple[int, int, float], ...]  # (rank, error, bits)

    def table(self) -> str:
        lines = ["rank  error  description bits"]
        for rank, error, bits in self.candidates:
            marker = " <- best" if rank == self.best_rank else ""
            lines.append(f"{rank:<4}  {error:<5}  {bits:.0f}{marker}")
        return "\n".join(lines)


def select_rank(
    tensor: SparseBoolTensor,
    ranks: Sequence[int],
    factorize: Callable[[SparseBoolTensor, int], Factors] | None = None,
) -> RankSelection:
    """Pick the MDL-optimal rank from a candidate list.

    ``factorize(tensor, rank)`` must return a factor triple; the default
    runs DBTF with four candidate initializations.
    """
    if not ranks:
        raise ValueError("ranks must be non-empty")
    if factorize is None:
        from ..core import dbtf

        def factorize(data: SparseBoolTensor, rank: int) -> Factors:
            return dbtf(data, rank=rank, seed=0, n_initial_sets=4).factors

    candidates = []
    best_rank, best_bits = None, None
    for rank in ranks:
        factors = factorize(tensor, rank)
        error = reconstruction_error(tensor, factors)
        bits = factors_code_length(factors) + vector_code_length(
            tensor.n_cells, error
        )
        candidates.append((rank, error, bits))
        if best_bits is None or bits < best_bits:
            best_rank, best_bits = rank, bits
    return RankSelection(best_rank=best_rank, candidates=tuple(candidates))
