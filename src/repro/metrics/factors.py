"""Factor-recovery metrics: how close are estimated factors to planted ones?

Boolean CP factors are identifiable only up to component permutation, so the
score greedily matches estimated components to planted components by the
Jaccard similarity of their rank-1 supports.
"""

from __future__ import annotations

import numpy as np

from ..bitops import BitMatrix

__all__ = ["component_support", "jaccard", "factor_match_score"]

Factors = tuple[BitMatrix, BitMatrix, BitMatrix]


def component_support(factors: Factors, component: int) -> tuple[np.ndarray, ...]:
    """The three index sets of one rank-1 component."""
    return tuple(
        np.flatnonzero(factor.column(component)) for factor in factors
    )


def jaccard(left: tuple[np.ndarray, ...], right: tuple[np.ndarray, ...]) -> float:
    """Jaccard similarity of two rank-1 blocks, computed per mode and
    multiplied (the blocks are Cartesian products, so cell-level Jaccard of
    disjoint-ish supports factorizes approximately; the per-mode product is
    the standard cheap surrogate)."""
    score = 1.0
    for left_set, right_set in zip(left, right):
        union = np.union1d(left_set, right_set).size
        if union == 0:
            continue  # both empty in this mode: no information
        intersection = np.intersect1d(left_set, right_set).size
        score *= intersection / union
    return score


def factor_match_score(estimated: Factors, planted: Factors) -> float:
    """Mean best-match Jaccard between estimated and planted components.

    Components are matched greedily (highest similarity first, without
    replacement).  1.0 means every planted component was recovered exactly;
    0.0 means no overlap at all.
    """
    rank_estimated = estimated[0].n_cols
    rank_planted = planted[0].n_cols
    if rank_planted == 0:
        return 1.0
    similarities = np.zeros((rank_estimated, rank_planted))
    for e in range(rank_estimated):
        left = component_support(estimated, e)
        for p in range(rank_planted):
            similarities[e, p] = jaccard(left, component_support(planted, p))
    total = 0.0
    available_e = set(range(rank_estimated))
    available_p = set(range(rank_planted))
    while available_e and available_p:
        best = max(
            ((similarities[e, p], e, p) for e in available_e for p in available_p),
            key=lambda item: item[0],
        )
        score, e, p = best
        total += score
        available_e.remove(e)
        available_p.remove(p)
    return total / rank_planted
