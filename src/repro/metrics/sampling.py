"""Sampling-based reconstruction-error estimation.

Exact error evaluation touches every cell of the reconstruction; at the
paper's billion-cell scale that is itself a heavy job.  This module
estimates ``|X ⊕ X̃|`` from a uniform sample of cells: each sampled cell is
checked against both the tensor and the factors' coverage, and the observed
disagreement rate is scaled to the full cell count.  The estimator is
unbiased; its standard error shrinks as ``1 / sqrt(n_samples)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..bitops import BitMatrix
from ..tensor import SparseBoolTensor

__all__ = ["ErrorEstimate", "estimate_reconstruction_error"]

Factors = tuple[BitMatrix, BitMatrix, BitMatrix]


@dataclass(frozen=True)
class ErrorEstimate:
    """A sampled estimate of the reconstruction error."""

    estimate: float
    std_error: float
    n_samples: int
    disagreements: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval (default 95%)."""
        margin = z * self.std_error
        return (max(0.0, self.estimate - margin), self.estimate + margin)


def _covered(factors: Factors, cells: np.ndarray) -> np.ndarray:
    """Whether the Boolean CP reconstruction covers each sampled cell."""
    a_dense = factors[0].to_dense().astype(bool)
    b_dense = factors[1].to_dense().astype(bool)
    c_dense = factors[2].to_dense().astype(bool)
    joint = (
        a_dense[cells[:, 0]] & b_dense[cells[:, 1]] & c_dense[cells[:, 2]]
    )
    return joint.any(axis=1)


def estimate_reconstruction_error(
    tensor: SparseBoolTensor,
    factors: Factors,
    n_samples: int,
    rng: np.random.Generator,
) -> ErrorEstimate:
    """Estimate ``|X ⊕ X̃|`` from a uniform cell sample.

    Parameters
    ----------
    tensor:
        The binary input tensor.
    factors:
        The candidate Boolean CP factors.
    n_samples:
        Cells to sample (with replacement; unbiased either way).
    rng:
        Randomness source.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    n_cells = tensor.n_cells
    flat = rng.integers(0, n_cells, size=n_samples)
    cells = np.stack(np.unravel_index(flat, tensor.shape), axis=1)

    # Membership in the tensor, via sorted flat indices.
    tensor_flats = np.ravel_multi_index(tensor.coords.T, tensor.shape)
    positions = np.searchsorted(tensor_flats, flat)
    positions = np.clip(positions, 0, max(tensor_flats.shape[0] - 1, 0))
    if tensor_flats.shape[0]:
        in_tensor = tensor_flats[positions] == flat
    else:
        in_tensor = np.zeros(n_samples, dtype=bool)

    in_reconstruction = _covered(factors, cells)
    disagreements = int((in_tensor != in_reconstruction).sum())
    rate = disagreements / n_samples
    estimate = rate * n_cells
    std_error = n_cells * math.sqrt(max(rate * (1 - rate), 0.0) / n_samples)
    return ErrorEstimate(
        estimate=estimate,
        std_error=std_error,
        n_samples=n_samples,
        disagreements=disagreements,
    )
