"""Evaluation metrics."""

from .error import (
    coverage_stats,
    fast_reconstruction_error,
    reconstruction_error,
    relative_reconstruction_error,
)
from .factors import component_support, factor_match_score, jaccard
from .sampling import ErrorEstimate, estimate_reconstruction_error
from .mdl import (
    RankSelection,
    description_length,
    factors_code_length,
    log2_binomial,
    select_rank,
    vector_code_length,
)

__all__ = [
    "description_length",
    "factors_code_length",
    "vector_code_length",
    "log2_binomial",
    "select_rank",
    "RankSelection",
    "estimate_reconstruction_error",
    "ErrorEstimate",
    "reconstruction_error",
    "relative_reconstruction_error",
    "fast_reconstruction_error",
    "coverage_stats",
    "factor_match_score",
    "component_support",
    "jaccard",
]
