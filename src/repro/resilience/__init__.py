"""Resilience: checkpoint/resume, retry backoff, speculative execution.

The three pillars a long-running distributed factorization needs to
survive real clusters (ISSUE 3 / DESIGN.md §9):

* :class:`CheckpointManager` / :class:`CheckpointConfig` — atomic,
  integrity-checked, fingerprint-guarded iteration snapshots so a killed
  ``dbtf`` / ``cp_nway`` / ``boolean_tucker`` run resumes bit-identically.
* :class:`RetryPolicy` — exponential backoff with deterministic seeded
  jitter, per-task deadlines, and partition blacklisting, replacing the
  engine's fixed immediate-retry loop; waits are simulated and charged to
  the cost model.
* :func:`plan_speculation` / :class:`SpeculationConfig` — deterministic
  straggler detection and modelled speculative duplicates folded into the
  simulated makespan.

This package sits *below* the engine: it may import ``repro.bitops`` and
``repro.observability`` only, so ``distengine``, ``core``, ``nway``, and
``tucker`` can all depend on it without cycles.
"""

from .checkpoint import (
    CheckpointConfig,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    CheckpointMismatchError,
    config_fingerprint,
    factors_from_state,
    factors_state,
)
from .retry import RetryPolicy
from .speculation import SpeculationConfig, SpeculationPlan, plan_speculation

__all__ = [
    "CheckpointConfig",
    "CheckpointManager",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "config_fingerprint",
    "factors_state",
    "factors_from_state",
    "RetryPolicy",
    "SpeculationConfig",
    "SpeculationPlan",
    "plan_speculation",
]
