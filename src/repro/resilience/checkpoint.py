"""Iteration-level checkpointing: atomic snapshots, integrity, resume.

A decomposition at DBTF's target scale runs for hours; losing every
iteration to one driver crash is not acceptable for a production system.
:class:`CheckpointManager` snapshots the decomposition state at iteration
boundaries so a killed run resumes bit-identically:

* **Atomic writes.**  Each snapshot is written to a temporary file in the
  checkpoint directory and ``os.replace``-d into place, so a crash mid-write
  can never leave a half-written file under a checkpoint name.
* **Integrity.**  The file header carries a SHA-256 digest of the payload;
  a truncated or corrupted snapshot is detected on load
  (:class:`CheckpointCorruptError`) and :meth:`CheckpointManager.load_latest`
  falls back to the newest intact predecessor.
* **Config fingerprint.**  Every snapshot embeds a fingerprint of the
  configuration that produced it (:func:`config_fingerprint`).  Resuming
  under a different rank/seed/initialization would silently produce
  garbage, so a mismatch refuses loudly
  (:class:`CheckpointMismatchError`) instead of falling back.
* **Retention.**  ``keep_last`` bounds disk usage; older snapshots are
  pruned after each successful save.

File format (version 1)::

    magic "DBTFCKPT" | u32 version | 32-byte SHA-256(payload) | payload

where the payload is a pickled ``{"fingerprint", "step", "state"}`` dict.
Factor matrices inside the state are stored via :func:`factors_state` —
explicit ``(n_rows, n_cols, packed-words bytes)`` triples rather than
opaque object pickles — so the on-disk layout is deliberate and stable.

Everything here is algorithm-agnostic: the DBTF driver, the N-way CP
solver, and the Boolean Tucker solver each decide what goes in ``state``
and at which steps to save (see ``docs/resilience.md`` for the state
machine and determinism guarantees).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import struct
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from ..bitops import BitMatrix
from ..observability.trace import SpanKind

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..observability import MetricsRegistry, Tracer

__all__ = [
    "CheckpointConfig",
    "CheckpointManager",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
    "config_fingerprint",
    "factors_state",
    "factors_from_state",
]

MAGIC = b"DBTFCKPT"
FORMAT_VERSION = 1
FILE_SUFFIX = ".ckpt"
_HEADER = struct.Struct(f"<{len(MAGIC)}sI32s")
_FILE_PATTERN = re.compile(r"^checkpoint-(\d{8})\.ckpt$")


class CheckpointError(RuntimeError):
    """Base class for checkpoint load/save failures."""


class CheckpointCorruptError(CheckpointError):
    """A snapshot file is truncated, malformed, or fails its integrity hash."""


class CheckpointMismatchError(CheckpointError):
    """A snapshot was produced under a different configuration fingerprint."""


@dataclass(frozen=True)
class CheckpointConfig:
    """Where, how often, and whether to resume.

    Attributes
    ----------
    directory:
        Directory for snapshot files (created on first use).
    every:
        Save at iteration ``i`` when ``i % every == 0``.
    keep_last:
        Number of newest snapshots retained; older ones are pruned after
        each successful save.
    resume:
        Restore from the newest intact snapshot before iterating.  With no
        snapshot on disk the run starts fresh (so one flag works for both
        the first launch and every relaunch of a job).
    """

    directory: "str | os.PathLike"
    every: int = 1
    keep_last: int = 2
    resume: bool = False

    def __post_init__(self) -> None:
        if not str(self.directory):
            raise ValueError("checkpoint directory must be non-empty")
        if self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {self.keep_last}")


def config_fingerprint(fields: dict[str, Any]) -> str:
    """Stable hex digest of the configuration fields that shape a run.

    Canonical JSON (sorted keys, non-JSON values stringified) hashed with
    SHA-256.  Callers pass exactly the fields that determine the iteration
    trajectory — e.g. rank, seed, initialization, partition count, tensor
    shape — and *omit* pure stopping criteria such as ``max_iterations``,
    so a crashed run may legitimately resume with a larger budget.
    """
    canonical = json.dumps(fields, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()


def factors_state(factors: "tuple[BitMatrix, ...]") -> list[dict[str, Any]]:
    """Explicit serializable form of bit-packed factor matrices."""
    return [
        {
            "n_rows": factor.n_rows,
            "n_cols": factor.n_cols,
            "words": factor.words.tobytes(),
        }
        for factor in factors
    ]


def factors_from_state(state: "list[dict[str, Any]]") -> tuple[BitMatrix, ...]:
    """Rebuild factor matrices saved by :func:`factors_state`."""
    factors = []
    for entry in state:
        words = np.frombuffer(entry["words"], dtype=np.uint64).reshape(
            entry["n_rows"], -1
        )
        factors.append(
            BitMatrix(entry["n_rows"], entry["n_cols"], words.copy())
        )
    return tuple(factors)


class CheckpointManager:
    """Writes, validates, prunes, and restores snapshot files.

    One manager serves one run: it is bound to the run's configuration
    fingerprint, and optionally to the runtime's metrics registry and
    tracer so saves and resumes surface in observability
    (``checkpoints_written_total``, ``checkpoint_bytes_total``,
    ``checkpoints_pruned_total``, ``checkpoint_resumes_total`` and
    ``checkpoint`` trace events).
    """

    def __init__(
        self,
        config: CheckpointConfig,
        fingerprint: str,
        metrics: "MetricsRegistry | None" = None,
        tracer: "Tracer | None" = None,
    ):
        self.config = config
        self.fingerprint = fingerprint
        self.metrics = metrics
        self.tracer = tracer
        self.directory = os.fspath(config.directory)
        os.makedirs(self.directory, exist_ok=True)

    # ------------------------------------------------------------------
    # File naming
    # ------------------------------------------------------------------
    def path_for(self, step: int) -> str:
        """The snapshot path for iteration ``step``."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        return os.path.join(self.directory, f"checkpoint-{step:08d}{FILE_SUFFIX}")

    def checkpoints(self) -> list[tuple[int, str]]:
        """``(step, path)`` for every snapshot on disk, oldest first."""
        entries = []
        for name in os.listdir(self.directory):
            match = _FILE_PATTERN.match(name)
            if match:
                entries.append((int(match.group(1)), os.path.join(self.directory, name)))
        return sorted(entries)

    def should_save(self, step: int) -> bool:
        """Whether the cadence (``every``) asks for a save at ``step``."""
        return step % self.config.every == 0

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(self, step: int, state: dict[str, Any]) -> str:
        """Atomically write one snapshot; returns its final path.

        The payload is serialized and hashed first, written to a temporary
        file in the same directory, then renamed into place — a crash at
        any point leaves either the previous snapshot set or the new one,
        never a torn file under a checkpoint name.
        """
        payload = pickle.dumps(
            {"fingerprint": self.fingerprint, "step": step, "state": state},
            protocol=4,
        )
        digest = hashlib.sha256(payload).digest()
        path = self.path_for(step)
        temp_path = f"{path}.tmp.{os.getpid()}"
        with open(temp_path, "wb") as handle:
            handle.write(_HEADER.pack(MAGIC, FORMAT_VERSION, digest))
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
        if self.metrics is not None:
            self.metrics.counter("checkpoints_written_total").inc()
            self.metrics.counter("checkpoint_bytes_total").inc(
                _HEADER.size + len(payload)
            )
        if self.tracer is not None:
            self.tracer.event(
                "checkpoint", kind=SpanKind.CHECKPOINT, step=step,
                bytes=_HEADER.size + len(payload),
            )
        self._prune()
        return path

    def _prune(self) -> None:
        """Delete everything but the ``keep_last`` newest snapshots."""
        entries = self.checkpoints()
        excess = entries[: max(0, len(entries) - self.config.keep_last)]
        for _step, path in excess:
            try:
                os.remove(path)
            except OSError:  # already gone; retention is best-effort
                continue
            if self.metrics is not None:
                self.metrics.counter("checkpoints_pruned_total").inc()

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self, path: str) -> tuple[int, dict[str, Any]]:
        """Load and validate one snapshot file.

        Raises :class:`CheckpointCorruptError` on any structural problem
        (bad magic, unknown version, hash mismatch, truncation) and
        :class:`CheckpointMismatchError` when the embedded configuration
        fingerprint differs from this manager's.
        """
        try:
            with open(path, "rb") as handle:
                header = handle.read(_HEADER.size)
                payload = handle.read()
        except OSError as exc:
            raise CheckpointCorruptError(f"cannot read {path}: {exc}") from exc
        if len(header) < _HEADER.size:
            raise CheckpointCorruptError(f"{path} is truncated (no full header)")
        magic, version, digest = _HEADER.unpack(header)
        if magic != MAGIC:
            raise CheckpointCorruptError(f"{path} is not a DBTF checkpoint file")
        if version != FORMAT_VERSION:
            raise CheckpointCorruptError(
                f"{path} has format version {version}; this build reads "
                f"version {FORMAT_VERSION}"
            )
        if hashlib.sha256(payload).digest() != digest:
            raise CheckpointCorruptError(
                f"{path} failed its integrity check (payload hash mismatch "
                f"— truncated or corrupted on disk)"
            )
        try:
            document = pickle.loads(payload)
        except Exception as exc:  # hash passed but unpicklable: corrupt
            raise CheckpointCorruptError(
                f"{path} payload does not deserialize: {exc}"
            ) from exc
        if document.get("fingerprint") != self.fingerprint:
            raise CheckpointMismatchError(
                f"{path} was written under a different configuration "
                f"(fingerprint {document.get('fingerprint')!r} != "
                f"{self.fingerprint!r}); refusing to resume — delete the "
                f"checkpoint directory or rerun with the original config"
            )
        return int(document["step"]), document["state"]

    def load_latest(self) -> "tuple[int, dict[str, Any]] | None":
        """Restore the newest intact snapshot, falling back over corruption.

        Corrupt files are skipped with a warning (newest-first), so a
        snapshot torn by a crash costs at most one checkpoint interval.  A
        fingerprint mismatch propagates immediately — older snapshots from
        the same directory would mismatch too, and silently restarting
        under the wrong config is exactly what the fingerprint exists to
        prevent.  Returns ``None`` when the directory holds no snapshots;
        raises :class:`CheckpointCorruptError` when snapshots exist but
        every one of them is corrupt.
        """
        entries = self.checkpoints()
        corrupt: list[str] = []
        for step, path in reversed(entries):
            try:
                loaded = self.load(path)
            except CheckpointCorruptError as exc:
                warnings.warn(
                    f"skipping corrupt checkpoint {path}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                corrupt.append(path)
                continue
            if self.metrics is not None:
                self.metrics.counter("checkpoint_resumes_total").inc()
            if self.tracer is not None:
                self.tracer.event("checkpoint_resume",
                                  kind=SpanKind.CHECKPOINT, step=step)
            return loaded
        if corrupt:
            raise CheckpointCorruptError(
                f"all {len(corrupt)} checkpoint file(s) in "
                f"{self.directory} are corrupt: {', '.join(corrupt)}"
            )
        return None

    def __repr__(self) -> str:
        return (
            f"CheckpointManager(directory={self.directory!r}, "
            f"every={self.config.every}, keep_last={self.config.keep_last})"
        )
