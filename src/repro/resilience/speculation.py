"""Speculative execution: deterministic straggler modelling.

Spark's speculative execution watches a stage's running tasks and, once a
task has run longer than a multiple of the stage's median task duration,
launches a duplicate copy on another executor; whichever copy finishes
first wins and the loser is killed.  The simulated engine reproduces the
*decision* and its effect on the makespan without ever racing real
duplicates — the whole point of the cost model is that replayed numbers
are backend-invariant.

Determinism is the design constraint.  Host-measured task durations are
wall-clock noise (they differ run to run and backend to backend), so the
straggler *detector* keys off the deterministic components of a task's
cost only: its injected fault count and its simulated retry-backoff wait
(both seeded hashes — see :mod:`repro.distengine.faults` and
:mod:`repro.resilience.retry`).  A task is a straggler when its retry
overhead signal exceeds ``multiplier`` times the stage median.  The
*counts* (``tasks_speculated_total``) are therefore bit-identical across
the serial, thread, and process backends for a fixed seed.

The makespan effect uses measured durations (that is what the cost model
replays): the duplicate is modelled as launching once the straggler has
run ``multiplier`` times the stage's median clean-attempt time and then
executing a single clean attempt — no injected faults, no backoff — so
the straggler's effective completion is ``min(original, launch + clean)``.
Whether the duplicate *wins* depends on those measured times, so
``speculative_wins_total`` is reported but, unlike the speculation counts,
is not guaranteed backend-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median

__all__ = ["SpeculationConfig", "SpeculationPlan", "plan_speculation"]


@dataclass(frozen=True)
class SpeculationConfig:
    """Straggler-detection thresholds for speculative execution.

    Attributes
    ----------
    multiplier:
        A task is a straggler when its retry-overhead signal exceeds
        ``multiplier`` times the stage's median signal (Spark's
        ``spark.speculation.multiplier``, default 1.5).
    min_tasks:
        Stages with fewer tasks never speculate — a median over one or two
        tasks is meaningless (Spark's ``spark.speculation.quantile`` plays
        the same gatekeeping role).
    """

    multiplier: float = 1.5
    min_tasks: int = 2

    def __post_init__(self) -> None:
        if self.multiplier <= 1.0:
            raise ValueError(
                f"multiplier must be > 1, got {self.multiplier}"
            )
        if self.min_tasks < 2:
            raise ValueError(f"min_tasks must be >= 2, got {self.min_tasks}")


@dataclass(frozen=True)
class SpeculationPlan:
    """One stage's speculation decisions and their makespan effect.

    Attributes
    ----------
    speculated:
        Partition-ordered indices of tasks that received a speculative
        duplicate.  Deterministic across backends (seeded-hash inputs
        only).
    wins:
        Subset of ``speculated`` where the modelled duplicate finished
        before the original.  Depends on measured durations, so it is
        *not* backend-invariant.
    effective_durations:
        Per-task simulated durations after speculation: the winner's
        completion time for speculated tasks, ``duration + retry_wait``
        otherwise.  Never exceeds the unspeculated duration.
    """

    speculated: tuple[int, ...]
    wins: tuple[int, ...]
    effective_durations: tuple[float, ...]


def _overhead_signals(
    retry_waits: "list[float] | tuple[float, ...]",
    failure_counts: "list[int] | tuple[int, ...]",
) -> list[float]:
    """Deterministic per-task retry-overhead signal.

    ``1 + failures + normalized_wait`` — built exclusively from the fault
    injector's seeded decisions and the retry policy's seeded backoff, so
    the signal (and everything derived from it) is identical under every
    backend.  Waits are normalized by the stage's largest wait so the
    signal is scale-free.
    """
    wait_scale = max(retry_waits, default=0.0)
    return [
        1.0 + failures + (wait / wait_scale if wait_scale > 0.0 else 0.0)
        for wait, failures in zip(retry_waits, failure_counts)
    ]


def plan_speculation(
    durations: "list[float] | tuple[float, ...]",
    retry_waits: "list[float] | tuple[float, ...]",
    failure_counts: "list[int] | tuple[int, ...]",
    config: SpeculationConfig,
) -> SpeculationPlan:
    """Decide which tasks of one stage get speculative duplicates.

    Parameters mirror one :class:`~repro.distengine.runtime.StageReport`:
    measured compute durations, simulated backoff waits, and injected
    fault counts, all in partition order.
    """
    n_tasks = len(durations)
    if len(retry_waits) not in (0, n_tasks) or len(failure_counts) not in (0, n_tasks):
        raise ValueError(
            "durations, retry_waits, and failure_counts must describe the "
            f"same stage, got lengths {n_tasks}/{len(retry_waits)}/"
            f"{len(failure_counts)}"
        )
    waits = list(retry_waits) or [0.0] * n_tasks
    failures = list(failure_counts) or [0] * n_tasks
    full = [duration + wait for duration, wait in zip(durations, waits)]

    if n_tasks < config.min_tasks or not any(failures):
        return SpeculationPlan((), (), tuple(full))

    signals = _overhead_signals(waits, failures)
    threshold = config.multiplier * median(signals)
    speculated = tuple(
        index
        for index in range(n_tasks)
        if failures[index] > 0 and signals[index] > threshold
    )
    if not speculated:
        return SpeculationPlan((), (), tuple(full))

    # A clean attempt's cost: the task's measured compute time spread over
    # its attempts (the injector re-runs the whole task per attempt).
    clean = [
        duration / (1 + task_failures)
        for duration, task_failures in zip(durations, failures)
    ]
    launch = config.multiplier * median(clean)
    effective = list(full)
    wins = []
    for index in speculated:
        duplicate_finish = launch + clean[index]
        if duplicate_finish < full[index]:
            effective[index] = duplicate_finish
            wins.append(index)
    return SpeculationPlan(speculated, tuple(wins), tuple(effective))
