"""Retry policy: exponential backoff with deterministic seeded jitter.

The engine's historical retry loop re-ran a failed task attempt
immediately and gave up after a fixed ``max_retries``.  Real clusters
(Spark's ``spark.task.maxFailures``, YARN's AM retries) wait between
attempts — backing off exponentially so a struggling executor is not
hammered — and bound each task by a deadline.  :class:`RetryPolicy` models
exactly that, with two properties the simulated engine requires:

* **Determinism.**  The jitter applied to each backoff interval is a
  seeded hash of ``(seed, stage, partition, attempt)`` — the same recipe
  :class:`~repro.distengine.faults.FaultInjector` uses for its failure
  decisions — so a fixed-seed run waits the exact same simulated amount
  under the serial, thread, and process backends.
* **Honest accounting.**  Backoff waits are *simulated*, never slept:
  :func:`~repro.distengine.backends.base.execute_task` accumulates them
  into the task outcome, the runtime charges them to the stage's simulated
  duration, and they surface as ``retry_wait_seconds`` histograms — so
  :class:`~repro.distengine.runtime.ExecutionReport` reflects what a real
  cluster would have paid without making the host actually wait.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry budget, backoff schedule, and failure thresholds.

    Attributes
    ----------
    max_retries:
        Re-executions allowed per task before
        :class:`~repro.distengine.faults.TaskFailedError`.  When a policy
        is given to the runtime it *replaces* the fault injector's fixed
        ``max_retries``.
    base_delay_sec:
        Simulated wait before the first re-execution.
    backoff_factor:
        Multiplier applied per retry: retry ``n`` waits
        ``base_delay_sec * backoff_factor ** (n - 1)`` (pre-jitter).
    max_delay_sec:
        Cap on a single backoff interval.
    jitter:
        Fraction in ``[0, 1]``: each interval is scaled by a deterministic
        factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    deadline_sec:
        Per-task budget over compute time plus accumulated backoff; when
        exceeded the task fails immediately instead of retrying further.
        ``None`` disables the deadline.
    blacklist_after:
        Fault count at which the runtime marks a partition's (simulated)
        executor as blacklisted — purely observational bookkeeping
        (``partitions_blacklisted_total`` and
        ``SimulatedRuntime.blacklisted_partitions``), modelling Spark's
        node blacklisting.  ``None`` disables it.
    seed:
        Varies the jitter draws (independent from the fault injector's
        seed).
    """

    max_retries: int = 3
    base_delay_sec: float = 0.05
    backoff_factor: float = 2.0
    max_delay_sec: float = 10.0
    jitter: float = 0.1
    deadline_sec: float | None = None
    blacklist_after: int | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_sec < 0:
            raise ValueError(
                f"base_delay_sec must be non-negative, got {self.base_delay_sec}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.max_delay_sec < self.base_delay_sec:
            raise ValueError(
                f"max_delay_sec ({self.max_delay_sec}) must be >= "
                f"base_delay_sec ({self.base_delay_sec})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.deadline_sec is not None and self.deadline_sec <= 0:
            raise ValueError(
                f"deadline_sec must be positive, got {self.deadline_sec}"
            )
        if self.blacklist_after is not None and self.blacklist_after <= 0:
            raise ValueError(
                f"blacklist_after must be positive, got {self.blacklist_after}"
            )

    def _jitter_factor(self, stage: str, partition: int, attempt: int) -> float:
        """Deterministic multiplier in ``[1 - jitter, 1 + jitter]``."""
        if self.jitter == 0.0:
            return 1.0
        token = f"retry:{self.seed}:{stage}:{partition}:{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return 1.0 + self.jitter * (2.0 * draw - 1.0)

    def backoff_delay(self, stage: str, partition: int, attempt: int) -> float:
        """Simulated wait (seconds) before re-execution ``attempt`` (>= 1).

        Exponential in the attempt number, capped at ``max_delay_sec``,
        scaled by the seeded jitter factor.  A pure function of its
        arguments, so backoff accounting is identical under every backend.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.base_delay_sec * self.backoff_factor ** (attempt - 1),
            self.max_delay_sec,
        )
        return base * self._jitter_factor(stage, partition, attempt)

    def total_backoff(self, stage: str, partition: int, retries: int) -> float:
        """Sum of the first ``retries`` backoff intervals for one task."""
        return sum(
            self.backoff_delay(stage, partition, attempt)
            for attempt in range(1, retries + 1)
        )

    def should_blacklist(self, failures: int) -> bool:
        """Whether ``failures`` faults on one partition trip the blacklist."""
        return self.blacklist_after is not None and failures >= self.blacklist_after
