"""Vertical partitioning of unfolded tensors (paper Sec. III-D, Fig. 5).

A partition is a contiguous range of unfolded-tensor columns; it is further
divided into *blocks* at the boundaries of the pointwise vector-matrix (PVM)
products ``(c_j: ∗ B)ᵀ`` so that every block can fetch its Boolean row
summations straight from a cache table (full-width blocks) or from a
bit-sliced copy of one (partial blocks).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..bitops import packing
from ..tensor import PackedUnfolding, Unfolding

__all__ = [
    "BlockType",
    "Block",
    "PartitionPlan",
    "PartitionData",
    "PartitionCoordinates",
    "make_partition_plans",
    "build_partition_data",
    "split_unfolding_coordinates",
    "pack_partition",
]


class BlockType(enum.Enum):
    """How a block sits inside its PVM product (Fig. 5 block kinds)."""

    FULL = "full"          # covers an entire PVM product (type 3)
    PREFIX = "prefix"      # starts at the PVM's first column (type 2)
    SUFFIX = "suffix"      # ends at the PVM's last column (type 4)
    INTERIOR = "interior"  # strictly inside one PVM product (type 1)


@dataclass(frozen=True)
class Block:
    """A contiguous column range inside one PVM product.

    ``start``/``stop`` are offsets within the PVM product, so the absolute
    unfolded columns are ``pvm_index * width + [start, stop)``.
    """

    pvm_index: int
    start: int
    stop: int
    width: int  # full width of the underlying PVM product

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.stop <= self.width:
            raise ValueError(
                f"invalid block range [{self.start}, {self.stop}) "
                f"within width {self.width}"
            )

    @property
    def n_cols(self) -> int:
        return self.stop - self.start

    @property
    def is_full(self) -> bool:
        return self.start == 0 and self.stop == self.width

    @property
    def block_type(self) -> BlockType:
        if self.is_full:
            return BlockType.FULL
        if self.start == 0:
            return BlockType.PREFIX
        if self.stop == self.width:
            return BlockType.SUFFIX
        return BlockType.INTERIOR


@dataclass(frozen=True)
class PartitionPlan:
    """Column range and block decomposition of one vertical partition."""

    index: int
    col_start: int
    col_stop: int
    blocks: tuple[Block, ...]

    @property
    def n_cols(self) -> int:
        return self.col_stop - self.col_start

    def block_types(self) -> set[BlockType]:
        return {block.block_type for block in self.blocks}


@dataclass
class PartitionData:
    """A partition's slice of the bit-packed unfolded tensor.

    ``block_words[b]`` holds, for every matrix row, the packed bits of block
    ``b``'s column range — the data the error kernel XORs against cached row
    summations.  Built once and reused for the whole decomposition (the
    paper caches partitioned unfoldings across iterations, Lemma 7).
    """

    plan: PartitionPlan
    block_words: list[np.ndarray]

    @property
    def n_rows(self) -> int:
        return self.block_words[0].shape[0] if self.block_words else 0

    @property
    def nbytes(self) -> int:
        return sum(int(words.nbytes) for words in self.block_words)


def make_partition_plans(
    block_count: int, block_width: int, n_partitions: int
) -> list[PartitionPlan]:
    """Split ``block_count * block_width`` columns into vertical partitions.

    Partition sizes differ by at most one column (paper Algorithm 3:
    ``floor(Q/N) <= H <= ceil(Q/N)``).  Each partition is then cut at PVM
    boundaries into blocks; empty partitions (more partitions than columns)
    get no blocks.
    """
    if block_count <= 0 or block_width <= 0:
        raise ValueError(
            f"block_count and block_width must be positive, "
            f"got {block_count} and {block_width}"
        )
    if n_partitions <= 0:
        raise ValueError(f"n_partitions must be positive, got {n_partitions}")
    total_cols = block_count * block_width
    base, extra = divmod(total_cols, n_partitions)
    plans = []
    cursor = 0
    for index in range(n_partitions):
        size = base + (1 if index < extra else 0)
        col_start, col_stop = cursor, cursor + size
        cursor = col_stop
        plans.append(
            PartitionPlan(
                index=index,
                col_start=col_start,
                col_stop=col_stop,
                blocks=tuple(_blocks_for_range(col_start, col_stop, block_width)),
            )
        )
    return plans


def _blocks_for_range(col_start: int, col_stop: int, width: int) -> list[Block]:
    """Cut an absolute column range at multiples of ``width``."""
    blocks = []
    cursor = col_start
    while cursor < col_stop:
        pvm_index = cursor // width
        pvm_end = (pvm_index + 1) * width
        stop = min(col_stop, pvm_end)
        blocks.append(
            Block(
                pvm_index=pvm_index,
                start=cursor - pvm_index * width,
                stop=stop - pvm_index * width,
                width=width,
            )
        )
        cursor = stop
    return blocks


@dataclass(frozen=True)
class PartitionCoordinates:
    """One partition's share of the sparse unfolding — what Spark shuffles.

    The paper's Algorithm 3 shuffles the unfolded tensor's nonzeros so each
    machine holds a column range (O(|X|) bytes, Lemma 6); the machine then
    organizes its share into packed blocks locally (:func:`pack_partition`).
    """

    plan: PartitionPlan
    n_rows: int
    rows: np.ndarray
    block_ids: np.ndarray
    offsets: np.ndarray

    @property
    def nnz(self) -> int:
        return self.rows.shape[0]

    @property
    def nbytes(self) -> int:
        """Serialized size of the shuffled (row, block, offset) triples."""
        return int(
            self.rows.nbytes + self.block_ids.nbytes + self.offsets.nbytes
        )


def split_unfolding_coordinates(
    unfolding: Unfolding, plans: list[PartitionPlan]
) -> list[PartitionCoordinates]:
    """Assign each unfolded nonzero to its vertical partition."""
    columns = unfolding.columns()
    order = np.argsort(columns, kind="stable")
    sorted_columns = columns[order]
    rows = unfolding.rows[order]
    block_ids = unfolding.block_ids[order]
    offsets = unfolding.offsets[order]
    pieces = []
    for plan in plans:
        start = np.searchsorted(sorted_columns, plan.col_start, side="left")
        stop = np.searchsorted(sorted_columns, plan.col_stop, side="left")
        pieces.append(
            PartitionCoordinates(
                plan=plan,
                n_rows=unfolding.n_rows,
                rows=rows[start:stop].copy(),
                block_ids=block_ids[start:stop].copy(),
                offsets=offsets[start:stop].copy(),
            )
        )
    return pieces


def pack_partition(coordinates: PartitionCoordinates) -> PartitionData:
    """Organize a partition's nonzeros into bit-packed blocks.

    This is the executor-local step of Algorithm 3 ("further split p into a
    set of blocks"); it runs as a distributed (timed) task.
    """
    plan = coordinates.plan
    block_words = []
    for block in plan.blocks:
        mask = coordinates.block_ids == block.pvm_index
        if not block.is_full:
            mask &= (coordinates.offsets >= block.start) & (
                coordinates.offsets < block.stop
            )
        selected_rows = coordinates.rows[mask]
        selected_offsets = coordinates.offsets[mask] - block.start
        n_words = packing.words_for_bits(block.n_cols)
        words = np.zeros((coordinates.n_rows, n_words), dtype=np.uint64)
        if selected_rows.size:
            word_index = selected_offsets // packing.WORD_BITS
            bit_offset = selected_offsets % packing.WORD_BITS
            flat = words.reshape(-1)
            linear = selected_rows * n_words + word_index
            np.bitwise_or.at(
                flat, linear, np.uint64(1) << bit_offset.astype(np.uint64)
            )
        block_words.append(words)
    return PartitionData(plan=plan, block_words=block_words)


def build_partition_data(
    packed: PackedUnfolding, plans: list[PartitionPlan], copy: bool = True
) -> list[PartitionData]:
    """Materialize each partition's packed tensor blocks from an unfolding.

    With ``copy=False`` full-width blocks stay zero-copy views of
    ``packed.words`` — when the unfolding is memmap-backed
    (:class:`~repro.storage.MmapUnfoldingStore`), the partitions then
    reference file-backed pages instead of duplicating the whole unfolding
    in driver RAM.  Partial blocks always allocate (``slice_bits`` shifts
    across word boundaries).
    """
    data = []
    for plan in plans:
        block_words = []
        for block in plan.blocks:
            pvm_words = packed.words[:, block.pvm_index, :]
            if block.is_full:
                # np.asarray demotes memmap views to plain ndarray views so
                # downstream pickling/kernels never see the memmap subclass.
                block_words.append(
                    np.asarray(pvm_words) if not copy else pvm_words.copy()
                )
            else:
                block_words.append(
                    packing.slice_bits(pvm_words, block.start, block.stop)
                )
        data.append(PartitionData(plan=plan, block_words=block_words))
    return data
