"""DBTF — the paper's primary contribution."""

from .cache import RowSummationCache, split_groups
from .config import DbtfConfig
from .decompose import dbtf, dbtf_steps, prepare_partitioned_unfoldings
from .incremental import (
    PartitionedUnfoldings,
    baseline_error_after_delta,
    dirty_columns_for_delta,
    prepare_mode_partitions,
)
from .partition import (
    Block,
    BlockType,
    PartitionCoordinates,
    PartitionData,
    PartitionPlan,
    build_partition_data,
    make_partition_plans,
    pack_partition,
    split_unfolding_coordinates,
)
from .result import DecompositionResult
from .steps import StepEvent, drive
from .update import CachedPartition, update_factor

__all__ = [
    "dbtf",
    "dbtf_steps",
    "StepEvent",
    "drive",
    "DbtfConfig",
    "DecompositionResult",
    "RowSummationCache",
    "split_groups",
    "Block",
    "BlockType",
    "PartitionPlan",
    "PartitionData",
    "make_partition_plans",
    "build_partition_data",
    "PartitionCoordinates",
    "split_unfolding_coordinates",
    "pack_partition",
    "update_factor",
    "CachedPartition",
    "prepare_partitioned_unfoldings",
    "prepare_mode_partitions",
    "PartitionedUnfoldings",
    "dirty_columns_for_delta",
    "baseline_error_after_delta",
]
