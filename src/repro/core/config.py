"""Configuration for the DBTF decomposition."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..distengine import BACKEND_NAMES, DEFAULT_CLUSTER, ClusterConfig
from ..resilience import CheckpointConfig

__all__ = ["DbtfConfig"]

# slice_bits-based cache keys must fit one signed 64-bit word.
_MAX_GROUP_SIZE = 62


@dataclass(frozen=True)
class DbtfConfig:
    """Hyper-parameters of DBTF (paper Algorithms 2-5).

    Attributes
    ----------
    rank:
        Number of components R.
    max_iterations:
        Maximum outer iterations T (paper default 10).
    n_initial_sets:
        Number of random factor-matrix sets L tried in the first iteration
        (paper default 1); the best-scoring set is kept.
    n_partitions:
        Vertical partitions N per unfolded tensor.  ``None`` uses the
        cluster's total slot count, matching Spark's default parallelism.
    cache_group_size:
        The threshold V limiting a single cache table to ``2**V`` row
        summations (paper default 15).  Ranks above V are split into
        ``ceil(R / V)`` groups (Lemma 2).
    tolerance:
        Relative convergence threshold: iteration stops when the error
        improves by no more than ``tolerance * |X|`` (0 means "stop when
        the error stops decreasing", the paper's criterion).
    initialization:
        ``"sample"`` (default) seeds each component from the fibers through
        a random nonzero of the tensor, so initial components overlap the
        data's support; ``"random"`` uses i.i.d. Bernoulli factors as the
        paper's text states.  Greedy Boolean updates from i.i.d. random
        factors collapse to the all-zero local optimum on sparse tensors
        (any random block covers more zeros than ones), so "sample" is what
        makes the reconstruction-error experiments reproducible — see
        DESIGN.md §5.
    init_density:
        Density of the random initial factors (only used with
        ``initialization="random"``).  ``None`` picks
        ``(density(X) / R) ** (1/3)``, which makes the expected density of
        the initial reconstruction match the data.
    seed:
        Seed for all randomness; runs are bit-for-bit reproducible.
    cluster:
        The simulated cluster the decomposition is metered against.
    backend:
        Host-side stage executor: ``"serial"``, ``"thread"``, or
        ``"process"``.  ``None`` (default) defers to ``cluster.backend``.
        Factors, error traces, and all metered costs are identical under
        every backend; only the host's wall-clock time changes.
    n_workers:
        Worker-pool size for the thread/process backends; ``None`` defers
        to ``cluster.n_workers`` (and ultimately the host's CPU count).
    tracing:
        Collect a structured span trace of the run (``stage → task →
        kernel`` plus transfer events) on the runtime's tracer; export it
        with :mod:`repro.observability`.  ``False`` (default) defers to
        ``cluster.tracing``.
    eager:
        ``True`` disables the plan layer's stage fusion (legacy
        stage-per-transformation dispatch).  Factors and metered bytes are
        identical; only the dispatched-stage count grows.  ``False``
        (default) defers to ``cluster.eager``.
    checkpoint:
        Iteration-level checkpointing
        (:class:`~repro.resilience.CheckpointConfig`): snapshot the
        decomposition state every ``every`` iterations into ``directory``
        and, with ``resume=True``, continue a killed run bit-identically
        from its newest intact snapshot.  ``None`` (default) disables
        checkpointing entirely — the iteration loop pays a single ``None``
        check.
    memory_budget:
        Byte ceiling for driver-resident partition caches (the out-of-core
        storage tier, :mod:`repro.storage`).  ``None`` (default) defers to
        ``cluster.memory_budget``; factors and errors are bit-identical
        with or without a budget, only spill I/O is added.
    spill_dir:
        Parent directory for storage-tier spill files.  ``None`` (default)
        defers to ``cluster.spill_dir``.
    worker_shuffle:
        ``False`` routes ``combine_by_key`` shuffles through the legacy
        driver-side per-pair loop instead of the worker-side bucketed
        plane (A/B lever; results and shuffle bytes are identical).
        ``None`` (default) defers to ``cluster.worker_shuffle``.
    """

    rank: int
    max_iterations: int = 10
    n_initial_sets: int = 1
    n_partitions: int | None = None
    cache_group_size: int = 15
    tolerance: float = 0.0
    initialization: str = "sample"
    init_density: float | None = None
    seed: int = 0
    cluster: ClusterConfig = DEFAULT_CLUSTER
    backend: str | None = None
    n_workers: int | None = None
    tracing: bool = False
    eager: bool = False
    checkpoint: CheckpointConfig | None = None
    memory_budget: int | None = None
    spill_dir: str | None = None
    worker_shuffle: bool | None = None

    def __post_init__(self) -> None:
        if self.rank <= 0:
            raise ValueError(f"rank must be positive, got {self.rank}")
        if self.max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.n_initial_sets <= 0:
            raise ValueError(
                f"n_initial_sets must be positive, got {self.n_initial_sets}"
            )
        if self.n_partitions is not None and self.n_partitions <= 0:
            raise ValueError(
                f"n_partitions must be positive, got {self.n_partitions}"
            )
        if not 1 <= self.cache_group_size <= _MAX_GROUP_SIZE:
            raise ValueError(
                f"cache_group_size must be in [1, {_MAX_GROUP_SIZE}], "
                f"got {self.cache_group_size}"
            )
        if self.tolerance < 0:
            raise ValueError(f"tolerance must be non-negative, got {self.tolerance}")
        if self.initialization not in ("sample", "random"):
            raise ValueError(
                f"initialization must be 'sample' or 'random', "
                f"got {self.initialization!r}"
            )
        if self.init_density is not None and not 0.0 < self.init_density <= 1.0:
            raise ValueError(
                f"init_density must be in (0, 1], got {self.init_density}"
            )
        if self.backend is not None and self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, got {self.backend!r}"
            )
        if self.n_workers is not None and self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ValueError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )

    def resolved_partitions(self) -> int:
        """The effective partition count N."""
        if self.n_partitions is not None:
            return self.n_partitions
        return self.cluster.total_slots

    def resolved_cluster(self) -> ClusterConfig:
        """``cluster`` with this config's backend/tracing/eager overrides."""
        if (
            self.backend is None
            and self.n_workers is None
            and not self.tracing
            and not self.eager
            and self.memory_budget is None
            and self.spill_dir is None
            and self.worker_shuffle is None
        ):
            return self.cluster
        return replace(
            self.cluster,
            backend=self.backend if self.backend is not None else self.cluster.backend,
            n_workers=(
                self.n_workers if self.n_workers is not None else self.cluster.n_workers
            ),
            tracing=self.tracing or self.cluster.tracing,
            eager=self.eager or self.cluster.eager,
            memory_budget=(
                self.memory_budget if self.memory_budget is not None
                else self.cluster.memory_budget
            ),
            spill_dir=(
                self.spill_dir if self.spill_dir is not None
                else self.cluster.spill_dir
            ),
            worker_shuffle=(
                self.worker_shuffle if self.worker_shuffle is not None
                else self.cluster.worker_shuffle
            ),
        )
