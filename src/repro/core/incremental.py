"""Delta-aware maintenance of partitioned unfoldings and dirty-column scoping.

This module is the tensor/engine half of the incremental factorization
stack (:mod:`repro.incremental` holds the epoch loop).  Three pieces:

* :func:`prepare_mode_partitions` — builds one mode's partitioned, packed
  unfolding.  The default path is byte-for-byte the classic Algorithm 3
  pipeline (coordinate shuffle → executor-local packing); under a memory
  budget the packed unfolding is flushed through the runtime's
  :class:`~repro.storage.MmapUnfoldingStore` and partitions become
  zero-copy views over the file, so the driver never holds three dense
  unfoldings resident.
* :class:`PartitionedUnfoldings` — owns the three mode RDDs across epochs
  and patches cached partitions in place from a
  :class:`~repro.tensor.TensorDelta` (shipping only the changed cells,
  O(|Δ|) shuffle bytes) instead of rebuilding them (O(|X|)).
* :func:`dirty_columns_for_delta` / :func:`baseline_error_after_delta` —
  the warm-start bookkeeping: which factor columns a delta can possibly
  move, and the exact reconstruction error of the *old* factors on the
  *new* tensor, both in O(|Δ| · R) driver work.
"""

from __future__ import annotations

import numpy as np

from ..bitops import BitMatrix, packing
from ..distengine import Distributed, SimulatedRuntime, TransferKind
from ..tensor import MODE_FACTOR_ROLES, SparseBoolTensor, TensorDelta, unfold
from ..tensor.matricize import _mode_axes
from ..tensor.packed import PackedUnfolding
from .partition import (
    Block,
    PartitionData,
    PartitionPlan,
    build_partition_data,
    make_partition_plans,
    pack_partition,
    split_unfolding_coordinates,
)

__all__ = [
    "prepare_mode_partitions",
    "PartitionedUnfoldings",
    "dirty_columns_for_delta",
    "baseline_error_after_delta",
]

#: Bytes per shuffled unfolded nonzero: one int64 each for the matrix row,
#: the PVM block id, and the within-block offset (see
#: ``PartitionCoordinates.nbytes``).
_COORDINATE_BYTES = 24


def prepare_mode_partitions(
    tensor: SparseBoolTensor,
    mode: int,
    n_partitions: int,
    runtime: SimulatedRuntime,
) -> "tuple[Distributed, list[PartitionPlan]]":
    """One mode's partitioned packed unfolding plus its partition plans.

    This is paper Algorithm 3 for one mode.  The default path shuffles the
    sparse unfolded coordinates (Lemma 6: O(|X|) bytes) and packs each
    partition executor-locally as a lazy, persisted stage — identical
    stages, transfers, and bits to the historical
    ``prepare_partitioned_unfoldings`` loop.

    When the runtime carries a memory budget, the packed unfolding is
    instead flushed to the runtime's memmap store and the partitions are
    built as zero-copy views over the file: same packed bits, same
    O(|X|) shuffle charge (the coordinates would cross the network either
    way), but the driver's resident footprint for cold modes is file-backed
    pages the OS may drop, and the storage tier budgets the rest.
    """
    unfolding = unfold(tensor, mode)
    plans = make_partition_plans(
        unfolding.block_count, unfolding.block_width, n_partitions
    )
    store = runtime.unfolding_storage()
    if store is None:
        coordinate_splits = split_unfolding_coordinates(unfolding, plans)
        # The dense unfolded view is transient per mode: drop it before the
        # next mode so the driver's peak holds one unfolding, not three.
        del unfolding
        runtime.record_transfer(
            TransferKind.SHUFFLE,
            f"partitionUnfolding[{mode}]",
            sum(split.nbytes for split in coordinate_splits),
        )
        rdd = (
            runtime.from_partitions(
                [[split] for split in coordinate_splits], name=f"pX({mode + 1})"
            )
            .map(pack_partition, name=f"partitionAndPack[{mode}]")
            .persist()
        )
        return rdd, plans
    # Budgeted path: pack once driver-side, flush to the mmap file, then
    # hand out partitions whose full-width blocks are views into the map.
    # The shuffle charge matches the coordinate path exactly — the same
    # nonzeros cross the simulated network no matter how the driver stores
    # its copy.
    shuffle_bytes = _COORDINATE_BYTES * unfolding.nnz
    flushed = store.flush(PackedUnfolding(unfolding))
    del unfolding
    runtime.record_transfer(
        TransferKind.SHUFFLE, f"partitionUnfolding[{mode}]", shuffle_bytes
    )
    data = build_partition_data(flushed, plans, copy=False)
    rdd = runtime.from_partitions(
        [[partition] for partition in data], name=f"pX({mode + 1})"
    )
    return rdd, plans


def _select_block_cells(
    rows: np.ndarray,
    block_ids: np.ndarray,
    offsets: np.ndarray,
    block: Block,
) -> "tuple[np.ndarray, np.ndarray]":
    """(rows, local offsets) of the given cells that land in ``block``."""
    mask = block_ids == block.pvm_index
    if not block.is_full:
        mask &= (offsets >= block.start) & (offsets < block.stop)
    return rows[mask], offsets[mask] - block.start


def _apply_bits(
    words: np.ndarray,
    rows: np.ndarray,
    local_offsets: np.ndarray,
    value: bool,
) -> None:
    """Set (or clear) one bit per (row, offset) pair in packed block words."""
    n_words = words.shape[1]
    word_index = local_offsets // packing.WORD_BITS
    bit = (
        np.uint64(1)
        << (local_offsets % packing.WORD_BITS).astype(np.uint64)
    )
    flat = words.reshape(-1)
    linear = rows * n_words + word_index
    if value:
        np.bitwise_or.at(flat, linear, bit)
    else:
        np.bitwise_and.at(flat, linear, ~bit)


class _PatchPartitionsTask:
    """Stage payload: apply one delta's cell flips to one partition.

    A pure function of ``(payloads, partition)`` keyed by the partition
    plan's index, so results are bit-identical across the serial, thread,
    and process backends.  Copy-on-write per block: blocks no delta cell
    touches keep their existing word arrays (which may be read-only memmap
    views on the budgeted path), touched blocks are copied and flipped.
    """

    __slots__ = ("payloads",)

    def __init__(self, payloads: dict):
        self.payloads = payloads

    def __call__(self, data: PartitionData) -> PartitionData:
        payload = self.payloads.get(data.plan.index)
        if payload is None:
            return data
        add_cells, remove_cells = payload
        new_blocks = []
        for block, words in zip(data.plan.blocks, data.block_words):
            add_rows, add_local = _select_block_cells(*add_cells, block)
            rem_rows, rem_local = _select_block_cells(*remove_cells, block)
            if add_rows.size == 0 and rem_rows.size == 0:
                new_blocks.append(words)
                continue
            words = np.array(words, dtype=np.uint64, copy=True)
            if add_rows.size:
                _apply_bits(words, add_rows, add_local, True)
            if rem_rows.size:
                _apply_bits(words, rem_rows, rem_local, False)
            new_blocks.append(words)
        return PartitionData(plan=data.plan, block_words=new_blocks)


def _mode_cells(coords: np.ndarray, mode: int) -> "tuple[np.ndarray, ...]":
    """(rows, block_ids, offsets) of delta cells in mode ``mode``'s layout."""
    row_axis, block_axis, offset_axis = _mode_axes(mode)
    return (
        coords[:, row_axis],
        coords[:, block_axis],
        coords[:, offset_axis],
    )


class PartitionedUnfoldings:
    """The three cached mode RDDs of one tensor, advanced delta by delta.

    Owns the unfolding lifecycle across epochs: :meth:`prepare` builds the
    partitions once, :meth:`patch` derives each next epoch's partitions
    from the cached previous ones (materializing the patched caches, then
    releasing the stale generation), and :meth:`unpersist` releases
    everything.  The epoch loop in :mod:`repro.incremental` holds exactly
    one of these per session.
    """

    def __init__(
        self,
        runtime: SimulatedRuntime,
        shape: tuple[int, int, int],
        rdds: "list[Distributed]",
        plans: "list[list[PartitionPlan]]",
    ):
        self.runtime = runtime
        self.shape = shape
        self._rdds = rdds
        self._plans = plans
        self.epoch = 0

    @classmethod
    def prepare(
        cls,
        tensor: SparseBoolTensor,
        n_partitions: int,
        runtime: SimulatedRuntime,
    ) -> "PartitionedUnfoldings":
        """Partition and cache all three unfoldings of ``tensor``."""
        if tensor.ndim != 3:
            raise ValueError(
                f"partitioned unfoldings need a three-way tensor, got "
                f"{tensor.ndim}-way"
            )
        rdds, plans = [], []
        for mode in range(3):
            rdd, mode_plans = prepare_mode_partitions(
                tensor, mode, n_partitions, runtime
            )
            rdds.append(rdd)
            plans.append(mode_plans)
        return cls(runtime, tensor.shape, rdds, plans)

    @property
    def rdds(self) -> "list[Distributed]":
        """The current generation's mode RDDs (shared with the solver)."""
        return list(self._rdds)

    def _mode_payloads(self, delta: TensorDelta, mode: int) -> dict:
        """Per-partition (added, removed) cell payloads for one mode."""
        plans = self._plans[mode]
        block_width = self.shape[_mode_axes(mode)[2]]
        payloads: dict[int, tuple] = {}

        def split(coords):
            rows, block_ids, offsets = _mode_cells(coords, mode)
            columns = block_ids * block_width + offsets
            order = np.argsort(columns, kind="stable")
            return (
                rows[order],
                block_ids[order],
                offsets[order],
                columns[order],
            )

        add_rows, add_blocks, add_offsets, add_columns = split(
            delta.added_coords()
        )
        rem_rows, rem_blocks, rem_offsets, rem_columns = split(
            delta.removed_coords()
        )
        for plan in plans:
            a0 = np.searchsorted(add_columns, plan.col_start, side="left")
            a1 = np.searchsorted(add_columns, plan.col_stop, side="left")
            r0 = np.searchsorted(rem_columns, plan.col_start, side="left")
            r1 = np.searchsorted(rem_columns, plan.col_stop, side="left")
            if a0 == a1 and r0 == r1:
                continue
            payloads[plan.index] = (
                (add_rows[a0:a1], add_blocks[a0:a1], add_offsets[a0:a1]),
                (rem_rows[r0:r1], rem_blocks[r0:r1], rem_offsets[r0:r1]),
            )
        return payloads

    def patch(self, delta: TensorDelta) -> None:
        """Advance every cached partition to the delta'd tensor in place.

        Ships only the changed cells (an O(|Δ|) shuffle, vs the O(|X|)
        rebuild), derives a patched generation of each mode RDD from the
        cached previous generation, materializes it, and releases the stale
        caches.  A superseded *derived* generation is unpersisted (its
        cache and any spill file are dropped); a *source* base generation
        (the budgeted mmap path) is left alone — sources have no lineage to
        recompute from, so evicting one would destroy data, and the storage
        tier already pages cold sources out under the budget.
        """
        if tuple(delta.shape) != tuple(self.shape):
            raise ValueError(
                f"delta shape {tuple(delta.shape)} does not match tensor "
                f"shape {tuple(self.shape)}"
            )
        self.epoch += 1
        if delta.is_empty:
            return
        for mode in range(3):
            payloads = self._mode_payloads(delta, mode)
            payload_bytes = sum(
                sum(int(array.nbytes) for cells in payload for array in cells)
                for payload in payloads.values()
            )
            self.runtime.record_transfer(
                TransferKind.SHUFFLE, f"patchUnfolding[{mode}]", payload_bytes
            )
            patched = self._rdds[mode].map(
                _PatchPartitionsTask(payloads), name=f"patchPartitions[{mode}]"
            ).persist()
            # Materialize the new generation while the old caches are still
            # available (the patch tasks read them), then release the stale
            # generation — except source bases, whose cache IS the data.
            patched.count(name=f"patchUnfolding[{mode}]")
            if not self._rdds[mode].node.is_source:
                self._rdds[mode].unpersist()
            self._rdds[mode] = patched
        self.runtime.metrics.counter("incremental_patches_total").inc()

    def unpersist(self) -> None:
        """Release every cached generation (session teardown)."""
        for rdd in self._rdds:
            rdd.unpersist()


def _dense_factor(factor: BitMatrix) -> np.ndarray:
    """The factor as a dense (n_rows, rank) 0/1 array."""
    return packing.unpack_bits(factor.words, factor.n_cols).reshape(
        factor.n_rows, factor.n_cols
    )


def dirty_columns_for_delta(
    delta: TensorDelta,
    factors: "tuple[BitMatrix, BitMatrix, BitMatrix]",
) -> "list[set[int]]":
    """Per-mode sets of factor columns whose decisions the delta can move.

    Component ``r``'s error contribution for mode ``n``'s update differs
    between the set-to-0 and set-to-1 candidates only on cells inside the
    component's Khatri-Rao support rectangle ``outer[:, r] × inner[:, r]``
    (see ``CachedPartition.column_errors``: ``rec1 = rec0 | coverage`` and
    the coverage of component r in block b is ``outer[b, r] & inner[:, r]``).
    A delta cell outside that rectangle shifts both candidate errors by the
    same ±1, so the argmin — the column's decision — cannot move.  Columns
    whose rectangles miss every changed cell are therefore *clean* for a
    warm start at these factors, and ``update_factor`` may skip them.
    """
    coords = np.concatenate(
        [delta.added_coords(), delta.removed_coords()], axis=0
    )
    dense = [_dense_factor(factor) for factor in factors]
    dirty: list[set[int]] = []
    for mode in range(3):
        _, outer_index, inner_index = MODE_FACTOR_ROLES[mode]
        _, block_axis, offset_axis = _mode_axes(mode)
        if coords.shape[0] == 0:
            dirty.append(set())
            continue
        active = (
            dense[outer_index][coords[:, block_axis]]
            & dense[inner_index][coords[:, offset_axis]]
        ).any(axis=0)
        dirty.append({int(column) for column in np.flatnonzero(active)})
    return dirty


def baseline_error_after_delta(
    error: int,
    delta: TensorDelta,
    factors: "tuple[BitMatrix, BitMatrix, BitMatrix]",
) -> int:
    """|X' ⊕ X̃| for the old factors on the delta'd tensor, in O(|Δ|·R).

    Only the flipped cells change the Hamming error, and each flip's
    contribution depends solely on whether the current reconstruction
    covers that cell: an added cell costs 1 when uncovered and *repays* 1
    when covered (it was an error before), symmetrically for removals.
    """
    dense = [_dense_factor(factor) for factor in factors]

    def covered(coords: np.ndarray) -> int:
        if coords.shape[0] == 0:
            return 0
        cells = (
            dense[0][coords[:, 0]]
            & dense[1][coords[:, 1]]
            & dense[2][coords[:, 2]]
        ).any(axis=1)
        return int(cells.sum())

    adds_covered = covered(delta.added_coords())
    removes_covered = covered(delta.removed_coords())
    return int(
        error
        + (delta.n_added - 2 * adds_covered)
        + (2 * removes_covered - delta.n_removed)
    )
