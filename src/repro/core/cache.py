"""Row-summation caching (paper Sec. III-C, Fig. 4, Lemma 2).

Updating a factor matrix repeatedly needs Boolean sums of subsets of the
inner Khatri-Rao matrix's columns.  With rank R there are only ``2**R``
possible subsets, so DBTF precomputes them once per factor update and keys
them by the bitmask ``a_i: AND c_j:``.  Because the table grows as ``2**R``,
ranks above the threshold V are split into ``ceil(R / V)`` groups of columns,
each cached separately; a lookup then ORs one entry per group.
"""

from __future__ import annotations

import numpy as np

from ..bitops import BitMatrix, or_accumulate_table, packing
from ..observability.trace import kernel_span, metrics_enabled, record_metric

__all__ = ["split_groups", "RowSummationCache"]


def split_groups(rank: int, group_size: int) -> list[tuple[int, int]]:
    """Divide ``rank`` columns evenly into ``ceil(rank / group_size)`` groups.

    Returns ``(start, size)`` pairs.  Mirrors Lemma 2: e.g. rank 18 with
    V = 10 gives two groups of 9.
    """
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    if group_size <= 0:
        raise ValueError(f"group_size must be positive, got {group_size}")
    n_groups = -(-rank // group_size)  # ceil
    base, extra = divmod(rank, n_groups)
    groups = []
    start = 0
    for index in range(n_groups):
        size = base + (1 if index < extra else 0)
        groups.append((start, size))
        start += size
    return groups


class RowSummationCache:
    """All Boolean row summations of one inner factor matrix.

    Parameters
    ----------
    inner:
        The matrix ``M_s`` (e.g. **B** when updating **A**), of shape
        ``width x rank``.  Cached entries are ORs of its *columns*, each a
        packed ``width``-bit vector.
    group_size:
        The threshold V.  Each cache table covers at most ``2**group_size``
        subsets.
    """

    def __init__(self, inner: BitMatrix, group_size: int):
        self.rank = inner.n_cols
        self.width = inner.n_rows
        self.group_size = group_size
        self.groups = split_groups(self.rank, group_size)
        with kernel_span("cache.build", rank=self.rank,
                         n_groups=len(self.groups)):
            # Row r of inner^T is column r of inner, packed over `width` bits.
            columns_packed = inner.transpose().words
            self.full_tables = [
                or_accumulate_table(columns_packed[start : start + size], size)
                for start, size in self.groups
            ]
        #: Row r is the inner factor's column r packed over ``width`` bits —
        #: the per-column coverage the delta update path reads worker-side.
        self.columns_packed = columns_packed
        record_metric("cache_tables_built_total", len(self.full_tables))
        record_metric("cache_entries_total", self.n_entries)
        full_range = (0, self.width)
        self._sliced: dict[tuple[int, int], list[np.ndarray]] = {
            full_range: self.full_tables
        }

    @property
    def n_tables(self) -> int:
        return len(self.full_tables)

    @property
    def n_entries(self) -> int:
        """Total cached row summations across all (full-width) tables."""
        return sum(table.shape[0] for table in self.full_tables)

    @property
    def nbytes(self) -> int:
        """Resident bytes of this cache, for storage-tier accounting.

        The full-width slice entry aliases ``full_tables``, so sliced
        tables are deduplicated by identity to avoid double counting.
        """
        total = int(self.columns_packed.nbytes)
        seen = {id(table) for table in self.full_tables}
        total += sum(int(table.nbytes) for table in self.full_tables)
        for tables in self._sliced.values():
            for table in tables:
                if id(table) not in seen:
                    seen.add(id(table))
                    total += int(table.nbytes)
        return total

    def tables_for(self, start: int, stop: int) -> list[np.ndarray]:
        """Cache tables restricted to bit columns ``[start, stop)``.

        Full-width requests return the master tables; narrower requests
        (Lemma 3 block types 1/2/4) are bit-sliced once and memoized — the
        paper builds these "smaller tables ... with a single pass over the
        full-size cache".
        """
        if not 0 <= start < stop <= self.width:
            raise ValueError(
                f"invalid column range [{start}, {stop}) for width {self.width}"
            )
        key = (start, stop)
        if key not in self._sliced:
            self._sliced[key] = [
                packing.slice_bits(table, start, stop) for table in self.full_tables
            ]
        return self._sliced[key]

    def group_keys(self, anded_words: np.ndarray) -> list[np.ndarray]:
        """Per-group integer cache keys from packed AND-ed row masks.

        ``anded_words`` packs R-bit masks (``a_i: AND c_j:``) along its last
        axis; the key for group g is that mask's bits ``[start, start+size)``
        as one integer.
        """
        keys = []
        for start, size in self.groups:
            word_index, offset = divmod(start, packing.WORD_BITS)
            if offset + size <= packing.WORD_BITS:
                # Fast path: the group lives inside one word.
                word = anded_words[..., word_index] >> np.uint64(offset)
                mask = np.uint64((1 << size) - 1)
                keys.append((word & mask).astype(np.int64))
            else:
                sliced = packing.slice_bits(anded_words, start, start + size)
                keys.append(sliced[..., 0].astype(np.int64))
        return keys

    def fetch(self, tables: list[np.ndarray], keys: list[np.ndarray]) -> np.ndarray:
        """OR together one entry per group table — the cached row summation."""
        if len(tables) != len(keys):
            raise ValueError(
                f"got {len(tables)} tables but {len(keys)} key arrays"
            )
        # Guarded: fetch runs 2R times per partition per update, and with
        # observability off the counter must cost one attribute read.
        if metrics_enabled():
            record_metric("cache_fetches_total")
        summation = tables[0][keys[0]]
        for table, key in zip(tables[1:], keys[1:]):
            summation = summation | table[key]
        return summation
