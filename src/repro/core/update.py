"""The distributed factor-matrix update (paper Algorithm 4).

One call updates one factor matrix column by column.  For every column c and
every row r, the error of setting ``target[r, c]`` to 0 and to 1 is computed
across all partitions: each partition fetches the cached Boolean row
summation keyed by ``target_row_mask AND outer_row_mask`` per block, XORs it
against its slice of the unfolded tensor, and popcounts.  The driver collects
the per-row errors and keeps the value with the smaller error.
"""

from __future__ import annotations

import numpy as np

from ..bitops import BitMatrix, packing
from ..bitops.ops import xor_popcount_rows
from ..distengine import Distributed, SimulatedRuntime
from ..observability.trace import kernel_span
from .cache import RowSummationCache
from .config import DbtfConfig
from .partition import PartitionData

__all__ = ["update_factor", "CachedPartition"]


class CachedPartition:
    """A partition plus the row-summation cache tables its blocks use.

    Built once per factor update (paper Algorithm 5) and reused for all
    ``2 * R`` error evaluations of that update.  Full-width blocks — the
    overwhelming majority (Lemma 3 allows at most two partial blocks per
    partition) — are evaluated as one batched table gather over all of them
    at once, which is what keeps the cached kernel ahead of recomputation.
    """

    __slots__ = ("data", "cache", "full_pvms", "full_words", "edge_blocks")

    def __init__(self, data: PartitionData, cache: RowSummationCache):
        self.data = data
        self.cache = cache
        full_pvms = []
        full_words = []
        # (block, sliced tables, tensor words) for the <= 2 partial blocks.
        self.edge_blocks: list[tuple] = []
        for block, words in zip(data.plan.blocks, data.block_words):
            if block.is_full:
                full_pvms.append(block.pvm_index)
                full_words.append(words)
            else:
                self.edge_blocks.append(
                    (block, cache.tables_for(block.start, block.stop), words)
                )
        self.full_pvms = np.asarray(full_pvms, dtype=np.int64)
        # Stacked as (n_rows, n_full_blocks, n_words) to match the batched
        # gather's output layout.
        self.full_words = (
            np.stack(full_words, axis=1)
            if full_words
            else np.zeros((data.n_rows, 0, cache.full_tables[0].shape[1]),
                          dtype=np.uint64)
        )

    def column_errors(
        self,
        masks_if_zero: np.ndarray,
        outer_words: np.ndarray,
        outer_column: np.ndarray,
        inner_column_words: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Partition-local errors for both candidate values of one column.

        ``masks_if_zero`` are the packed row masks of the target factor with
        the current column forced to 0; ``outer_words``/``outer_column`` are
        the outer factor's packed row masks and its current column as a 0/1
        vector; ``inner_column_words`` is the inner factor's current column,
        packed over the PVM width.

        Only the candidate-0 reconstruction needs a cache gather: setting
        the entry to 1 Boolean-adds component c's coverage, which inside PVM
        block j is ``outer[j, c] * inner[:, c]`` — independent of the row —
        so ``rec1 = rec0 | column_coverage``.
        """
        with kernel_span(
            "cp.columnErrors",
            rows=masks_if_zero.shape[0],
            full_blocks=int(self.full_pvms.size),
            edge_blocks=len(self.edge_blocks),
        ):
            return self._column_errors(
                masks_if_zero, outer_words, outer_column, inner_column_words
            )

    def _column_errors(
        self,
        masks_if_zero: np.ndarray,
        outer_words: np.ndarray,
        outer_column: np.ndarray,
        inner_column_words: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        n_rows = masks_if_zero.shape[0]
        error_if_zero = np.zeros(n_rows, dtype=np.int64)
        delta_if_one = np.zeros(n_rows, dtype=np.int64)
        if self.full_pvms.size:
            full_outer = outer_words[self.full_pvms]
            # Batched over every full-width block: keys (rows, blocks).
            anded = masks_if_zero[:, None, :] & full_outer[None, :, :]
            keys = self.cache.group_keys(anded)
            rec_zero = self.cache.fetch(self.cache.full_tables, keys)
            error_if_zero += xor_popcount_rows(
                rec_zero, self.full_words
            ).sum(axis=1)
            # Setting the entry to 1 adds component c's coverage, which in
            # PVM block j is outer[j, c] * inner[:, c] — only blocks with
            # the outer bit set can change.  A newly covered cell flips the
            # error by -1 if the tensor has a 1 there and +1 if it has a 0:
            #   err1 = err0 + popcount(new) - 2 * popcount(new & x)
            # where new = addition & ~rec0.
            active = np.flatnonzero(outer_column[self.full_pvms])
            if active.size:
                newly = inner_column_words[None, None, :] & ~rec_zero[:, active]
                delta_if_one += packing.popcount_rows(newly).sum(axis=1)
                delta_if_one -= 2 * packing.popcount_rows(
                    newly & self.full_words[:, active]
                ).sum(axis=1)
        for block, tables, tensor_words in self.edge_blocks:
            anded = masks_if_zero & outer_words[block.pvm_index]
            keys = self.cache.group_keys(anded)
            rec_zero = self.cache.fetch(tables, keys)
            error_if_zero += xor_popcount_rows(rec_zero, tensor_words)
            if outer_column[block.pvm_index]:
                sliced = packing.slice_bits(
                    inner_column_words[None, :], block.start, block.stop
                )[0]
                newly = sliced & ~rec_zero
                delta_if_one += packing.popcount_rows(newly)
                delta_if_one -= 2 * packing.popcount_rows(newly & tensor_words)
        return error_if_zero, error_if_zero + delta_if_one


def _masks_with_bit_cleared(words: np.ndarray, column: int) -> np.ndarray:
    """Packed row masks with bit ``column`` forced to 0.

    One fused broadcast AND instead of copy-then-clear: the keep-mask is
    all-ones except the cleared bit's word, so every output word is written
    exactly once.
    """
    word_index, offset = divmod(column, packing.WORD_BITS)
    keep = np.full(words.shape[1], ~np.uint64(0), dtype=np.uint64)
    keep[word_index] = ~np.uint64(1 << offset)
    return words & keep


class _BuildCachedPartition:
    """Stage payload: attach the row-summation cache to each partition.

    A module-level callable whose broadcast values (the inner factor and
    the V threshold) ride along as attributes, so the payload pickles to
    process-pool workers — the engine's equivalent of referencing a Spark
    broadcast variable instead of capturing a driver local.
    """

    __slots__ = ("inner", "group_size")

    def __init__(self, inner: BitMatrix, group_size: int):
        self.inner = inner
        self.group_size = group_size

    def __call__(self, data) -> CachedPartition:
        return CachedPartition(data, RowSummationCache(self.inner, self.group_size))


class _ColumnErrorsTask:
    """Legacy stage payload: one column's error evaluation, closure-style.

    Embeds the full target masks, outer factor words, and the inner column
    in every task — O(n_rows·words) serialized bytes per task per column,
    the traffic the broadcast-handle path eliminates.  Kept behind
    ``ClusterConfig(handle_broadcasts=False)`` as the A/B baseline.
    """

    __slots__ = (
        "masks_if_zero",
        "outer_words",
        "outer_column",
        "inner_column_words",
    )

    def __init__(self, masks_if_zero, outer_words, outer_column, inner_column_words):
        self.masks_if_zero = masks_if_zero
        self.outer_words = outer_words
        self.outer_column = outer_column
        self.inner_column_words = inner_column_words

    def __call__(self, cached: CachedPartition):
        return cached.column_errors(
            self.masks_if_zero,
            self.outer_words,
            self.outer_column,
            self.inner_column_words,
        )


class _BuildCachedPartitionFromHandle:
    """Stage payload: build the cache from a broadcast handle's factors.

    The handle resolves to ``[target_words, outer_words, inner_words]``
    worker-side; only the inner factor's dimensions ride in the payload.
    """

    __slots__ = ("factors", "inner_rows", "inner_cols", "group_size")

    def __init__(self, factors, inner_rows: int, inner_cols: int, group_size: int):
        self.factors = factors
        self.inner_rows = inner_rows
        self.inner_cols = inner_cols
        self.group_size = group_size

    def __call__(self, data) -> CachedPartition:
        inner_words = self.factors.value[2]
        inner = BitMatrix(self.inner_rows, self.inner_cols, inner_words)
        return CachedPartition(data, RowSummationCache(inner, self.group_size))


class _ColumnErrorsDeltaTask:
    """Stage payload: one column's error evaluation, delta-only traffic.

    Ships a broadcast handle plus the packed ~n_rows/8-byte column updates
    already chosen this sweep.  The worker reconstructs the current target
    masks itself — base factor words from the handle, prior columns applied
    from the deltas, this column cleared in place — so per-column payloads
    are O(n_rows/8) instead of O(n_rows·words).  Rebuilding from the base
    every column (rather than mutating worker-local state) keeps the
    computation a pure function of the payload, which is what makes results
    bit-identical across serial, thread, and process backends.
    """

    __slots__ = ("factors", "column", "deltas", "n_rows")

    def __init__(self, factors, column: int, deltas: tuple, n_rows: int):
        self.factors = factors
        self.column = column
        self.deltas = deltas
        self.n_rows = n_rows

    def __call__(self, cached: CachedPartition):
        target_words, outer_words, _ = self.factors.value
        masks = target_words.copy()
        for applied_column, delta in self.deltas:
            chosen = np.unpackbits(delta.value, count=self.n_rows)
            packing.set_bit_column(masks, applied_column, chosen)
        word_index, offset = divmod(self.column, packing.WORD_BITS)
        masks[:, word_index] &= ~np.uint64(1 << offset)
        return cached.column_errors(
            masks,
            outer_words,
            packing.bit_column(outer_words, self.column),
            cached.cache.columns_packed[self.column],
        )


def update_factor(
    data_rdd: Distributed,
    target: BitMatrix,
    outer: BitMatrix,
    inner: BitMatrix,
    config: DbtfConfig,
    runtime: SimulatedRuntime,
    *,
    dirty_columns: "set[int] | None" = None,
):
    """Update ``target`` to minimize ``|X_(n) ⊕ target ∘ (outer ⊙ inner)ᵀ|``.

    With ``dirty_columns=None`` (the default and the only path the batch
    solver uses) every column is swept and the return value is
    ``(updated, error_after)`` — the reconstruction error after the last
    column update, which equals the full tensor error for the new factors.

    With a ``dirty_columns`` set (the incremental path,
    :mod:`repro.incremental`), only columns in the set are re-swept —
    clean columns keep their bits and skip their ``2`` error evaluations
    entirely — *until* an evaluated column changes, after which every later
    column of this update is evaluated too ("escalate on change"): a
    changed column alters ``rec0`` for its successors, so their cached
    decisions are no longer trustworthy.  The return value becomes
    ``(updated, error_after_or_None, changed_columns)`` where the error is
    ``None`` when no column was evaluated (empty dirty set) and otherwise
    exact (any evaluated column's error is a full reconstruction error).
    """
    if target.n_cols != config.rank:
        raise ValueError(
            f"target has {target.n_cols} columns but config.rank is {config.rank}"
        )
    if dirty_columns is not None:
        dirty = {int(column) for column in dirty_columns}
        if any(not 0 <= column < config.rank for column in dirty):
            raise ValueError(
                f"dirty_columns {sorted(dirty)} out of range for rank "
                f"{config.rank}"
            )
        if not dirty:
            runtime.metrics.counter("incremental_columns_skipped_total").inc(
                config.rank
            )
            return target.copy(), None, set()
    else:
        dirty = None
    handles = runtime.config.handle_broadcasts
    # Ship the factor matrices to the workers (paper Sec. III-E: factor
    # matrices are broadcast each iteration).  With handles on, the column
    # tasks reference this broadcast by id; the legacy path broadcasts for
    # the ledger charge but re-embeds the arrays in every task payload.
    factors = runtime.broadcast(
        [target.words, outer.words, inner.words], name="updateFactor.broadcast"
    )
    # Algorithm 5: build the row-summation cache tables inside each
    # partition.  The cache depends only on `inner`, so every partition
    # builds identical full tables plus its own block slices — exactly what
    # each Spark executor would do locally.  Persisted because all R column
    # stages of this update reuse it; the plan layer fuses the build into
    # the first column's stage (tapping the persist point), so it costs no
    # dedicated dispatch.
    build_task = (
        _BuildCachedPartitionFromHandle(
            factors, inner.n_rows, inner.n_cols, config.cache_group_size
        )
        if handles
        else _BuildCachedPartition(inner, config.cache_group_size)
    )
    cached_rdd = data_rdd.map(build_task, name="cacheRowSummations").persist()

    updated = target.copy()
    error_after = 0
    # Row r of inner^T is the inner factor's column r, packed over the PVM
    # width — the coverage component c adds inside an active block.  The
    # handle path reads the same rows worker-side from the cache it built.
    inner_columns = None if handles else inner.transpose().words
    deltas: list[tuple] = []
    changed: set[int] = set()
    escalated = False
    evaluated = skipped = 0
    for column in range(config.rank):
        if dirty is not None and not (escalated or column in dirty):
            # Clean column under an intact prefix: the delta cannot have
            # moved this column's decision (its support misses every touched
            # fiber) and no earlier column changed rec0 — keep its bits and
            # skip both error evaluations.
            skipped += 1
            continue
        if handles:
            task = _ColumnErrorsDeltaTask(
                factors, column, tuple(deltas), updated.n_rows
            )
        else:
            task = _ColumnErrorsTask(
                _masks_with_bit_cleared(updated.words, column),
                outer.words,
                outer.column(column),
                inner_columns[column],
            )
        per_partition = cached_rdd.map(task, name="columnErrors").collect(
            name="collectColumnErrors"
        )
        error_if_zero = np.zeros(updated.n_rows, dtype=np.int64)
        error_if_one = np.zeros(updated.n_rows, dtype=np.int64)
        for partial_zero, partial_one in per_partition:
            error_if_zero += partial_zero
            error_if_one += partial_one
        # Strict inequality: ties keep 0, favouring sparser factors (the
        # paper does not specify a tie rule; see DESIGN.md).
        chosen = (error_if_one < error_if_zero).astype(np.uint8)
        if dirty is not None:
            evaluated += 1
            if not np.array_equal(chosen, updated.column(column)):
                changed.add(column)
                escalated = True
        updated.set_column(column, chosen)
        error_after = int(np.minimum(error_if_zero, error_if_one).sum())
        # The workers need the freshly updated column for the next
        # column-iteration; charge that transfer.  With handles on, later
        # column tasks reference these packed deltas to rebuild the target
        # state worker-side.
        delta = runtime.broadcast(np.packbits(chosen), name="columnUpdate")
        if handles:
            deltas.append((column, delta))
    # The cache tables are stale the moment `inner` changes in the next
    # mode's update; evict rather than letting them pile up until close().
    cached_rdd.unpersist()
    if dirty is None:
        return updated, error_after
    runtime.metrics.counter("incremental_columns_swept_total").inc(evaluated)
    runtime.metrics.counter("incremental_columns_skipped_total").inc(skipped)
    return updated, (error_after if evaluated else None), changed
