"""Cooperative stepping protocol shared by the three solvers.

Each driver exposes a ``*_steps`` generator that runs the decomposition one
*checkpointable unit* at a time and yields a :class:`StepEvent` at every
boundary — after the snapshot for that boundary (if checkpointing is
configured) has already hit disk.  The one-shot entry points (``dbtf``,
``cp_nway``, ``boolean_tucker``) simply drain their generator, so the
stepped and the monolithic paths are the same code and bit-identical.

The protocol is what makes a multi-tenant job layer possible on top of
batch solvers:

* a scheduler can interleave iterations of many jobs by advancing one
  generator at a time (cooperative multitasking, no threads required);
* cancellation between iterations is ``generator.close()`` — the driver's
  ``finally`` blocks release partition caches and nothing else runs;
* preemption is cancellation plus a later rebuild with ``resume=True``:
  because every yield happens *after* its checkpoint landed, a preempted
  job loses no completed work and resumes bit-identically.

The generator's return value (``StopIteration.value``) is the solver's
usual result object.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StepEvent", "drive"]


@dataclass(frozen=True)
class StepEvent:
    """One completed checkpointable unit of a decomposition run.

    Attributes
    ----------
    step:
        The solver's snapshot step counter — the outer iteration for DBTF,
        the restart index for N-way CP, ``restart * max_iterations +
        iteration`` for Tucker.  Matches the checkpoint filename written at
        this boundary.
    error:
        Reconstruction error after this unit (the solver's current best
        where units are whole restarts).
    converged:
        Whether the stopping criterion has been met; the generator yields
        this event and then finishes.
    phase:
        ``"init"`` for the initialization boundary, ``"iteration"`` or
        ``"restart"`` afterwards.  ``"warm"`` marks the step-0 boundary of
        a warm-started epoch advance (``dbtf_steps(warm_start=...)``):
        factors were carried over from the previous epoch instead of being
        initialized, and ``error`` is the carried factors' exact baseline
        error on the updated tensor.
    """

    step: int
    error: int
    converged: bool
    phase: str = "iteration"


def drive(generator):
    """Run a step generator to completion and return its result value."""
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return stop.value
