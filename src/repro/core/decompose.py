"""The DBTF driver (paper Algorithm 2).

``dbtf`` unfolds the input tensor along its three modes, vertically
partitions and caches each unfolding across the (simulated) cluster, then
alternates factor-matrix updates until the reconstruction error stops
improving or the iteration budget runs out.  Optionally, L random
initializations compete in the first iteration and only the best survives.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from ..bitops import BitMatrix
from ..distengine import Distributed, SimulatedRuntime
from ..resilience import (
    CheckpointManager,
    config_fingerprint,
    factors_from_state,
    factors_state,
)
from ..tensor import MODE_FACTOR_ROLES, SparseBoolTensor
from .config import DbtfConfig
from .incremental import prepare_mode_partitions
from .result import DecompositionResult
from .steps import StepEvent, drive
from .update import update_factor

__all__ = ["dbtf", "dbtf_steps", "prepare_partitioned_unfoldings"]

Factors = tuple[BitMatrix, BitMatrix, BitMatrix]


def prepare_partitioned_unfoldings(
    tensor: SparseBoolTensor,
    n_partitions: int,
    runtime: SimulatedRuntime,
) -> list[Distributed]:
    """Unfold, vertically partition, and cache the tensor per mode.

    This is paper Algorithm 3, run once up front.  The sparse unfolded
    nonzeros cross the network here (Lemma 6: O(|X|) shuffled bytes); each
    partition then organizes its share into bit-packed blocks locally, as a
    timed distributed stage.  Nothing of the tensor moves again afterwards
    (Lemma 7).  The packing stage is lazy and the result persisted: the
    plan layer fuses it into the first factor-update stage that touches the
    mode and caches the packed partitions there (a persist tap), so every
    later iteration reads the cache instead of re-packing.

    Under a memory budget (``ClusterConfig(memory_budget=...)``) the packed
    unfoldings are built through the runtime's memmap store and the
    partitions become zero-copy views over the files (see
    :func:`repro.core.incremental.prepare_mode_partitions`), with the
    storage tier budgeting what stays driver-resident — cold modes spill
    and page back in.
    """
    return [
        prepare_mode_partitions(tensor, mode, n_partitions, runtime)[0]
        for mode in range(3)
    ]


def _random_factors(
    tensor: SparseBoolTensor, config: DbtfConfig, rng: np.random.Generator
) -> Factors:
    """I.i.d. Bernoulli initialization (the paper's literal description).

    Unless overridden, the initial density is ``(density(X) / R) ** (1/3)``
    so the expected density of the initial reconstruction roughly matches
    the data (for small densities P[cell = 1] ≈ R · p³).
    """
    density = config.init_density
    if density is None:
        density = float(np.clip((tensor.density() / config.rank) ** (1 / 3), 0.01, 0.9))
    return tuple(
        BitMatrix.random(dimension, config.rank, density, rng)
        for dimension in tensor.shape
    )


def _sampled_factors(
    tensor: SparseBoolTensor, config: DbtfConfig, rng: np.random.Generator
) -> Factors:
    """Seed each component from the fibers through a random nonzero.

    For component r, a nonzero ``(i, j, k)`` is drawn and the three factor
    columns become the fibers ``x_:jk``, ``x_i:k``, and ``x_ij:`` — so the
    initial rank-1 blocks already overlap the data's support and the greedy
    updates can refine instead of collapsing to all zeros (DESIGN.md §5).
    """
    shape = tensor.shape
    factors = tuple(BitMatrix.zeros(dimension, config.rank) for dimension in shape)
    coords = tensor.coords
    covered = np.zeros(tensor.nnz, dtype=bool)
    for r in range(config.rank):
        # Prefer seeds the components so far do not cover, so initial
        # components spread over the tensor's support.
        candidates = np.flatnonzero(~covered)
        if candidates.size == 0:
            candidates = np.arange(tensor.nnz)
        pick = int(candidates[rng.integers(0, candidates.size)])
        i, j, k = (int(v) for v in coords[pick])
        fibers = (
            coords[(coords[:, 1] == j) & (coords[:, 2] == k)][:, 0],
            coords[(coords[:, 0] == i) & (coords[:, 2] == k)][:, 1],
            coords[(coords[:, 0] == i) & (coords[:, 1] == j)][:, 2],
        )
        for factor, fiber in zip(factors, fibers):
            for index in fiber:
                factor.set(int(index), r, 1)
        covered |= (
            np.isin(coords[:, 0], fibers[0])
            & np.isin(coords[:, 1], fibers[1])
            & np.isin(coords[:, 2], fibers[2])
        )
    return factors


def _initial_factors(
    tensor: SparseBoolTensor, config: DbtfConfig, rng: np.random.Generator
) -> Factors:
    """One initialization according to ``config.initialization``."""
    if config.initialization == "random" or tensor.nnz == 0:
        return _random_factors(tensor, config, rng)
    return _sampled_factors(tensor, config, rng)


def _update_all_factors(
    mode_rdds: list[Distributed],
    factors: Factors,
    config: DbtfConfig,
    runtime: SimulatedRuntime,
) -> tuple[Factors, int]:
    """One outer iteration: update A, then B, then C (Algorithm 2 lines 14-18).

    Returns the new factors and the reconstruction error after the final
    update, which equals ``|X ⊕ X̃|`` for the returned factors.
    """
    current = list(factors)
    error = 0
    for mode in range(3):
        target_index, outer_index, inner_index = MODE_FACTOR_ROLES[mode]
        current[target_index], error = update_factor(
            mode_rdds[mode],
            current[target_index],
            current[outer_index],
            current[inner_index],
            config,
            runtime,
        )
    return (current[0], current[1], current[2]), error


def _update_all_factors_scoped(
    mode_rdds: list[Distributed],
    factors: Factors,
    config: DbtfConfig,
    runtime: SimulatedRuntime,
    dirty_columns: "list[set[int]]",
) -> "tuple[Factors, int | None]":
    """One support-scoped outer iteration (the incremental warm restart).

    Each mode re-sweeps only its dirty columns — escalating to a full sweep
    of the remaining modes as soon as any evaluated column changes, because
    a changed column invalidates every later cached decision (its coverage
    feeds their ``rec0``).  Returns ``(factors, error)`` where the error is
    ``None`` when *no* column anywhere was evaluated (an all-clean delta:
    the caller already knows the exact baseline error) and otherwise the
    exact reconstruction error after the last evaluated column.
    """
    current = list(factors)
    error: "int | None" = None
    escalated = False
    all_columns = set(range(config.rank))
    for mode in range(3):
        target_index, outer_index, inner_index = MODE_FACTOR_ROLES[mode]
        dirty = all_columns if escalated else dirty_columns[mode]
        if not dirty:
            continue
        updated, mode_error, changed = update_factor(
            mode_rdds[mode],
            current[target_index],
            current[outer_index],
            current[inner_index],
            config,
            runtime,
            dirty_columns=dirty,
        )
        current[target_index] = updated
        if mode_error is not None:
            error = mode_error
        if changed:
            escalated = True
    return (current[0], current[1], current[2]), error


def _dbtf_fingerprint(tensor: SparseBoolTensor, config: DbtfConfig) -> str:
    """Fingerprint of everything that shapes the dbtf iteration trajectory.

    Stopping criteria (``max_iterations``, ``tolerance``) are deliberately
    excluded: resuming a crashed run with a larger budget is legitimate and
    continues the identical trajectory, whereas changing any field below
    would silently produce a different decomposition.
    """
    return config_fingerprint(
        {
            "algorithm": "dbtf",
            "rank": config.rank,
            "seed": config.seed,
            "initialization": config.initialization,
            "init_density": config.init_density,
            "n_initial_sets": config.n_initial_sets,
            "n_partitions": config.resolved_partitions(),
            "cache_group_size": config.cache_group_size,
            "shape": list(tensor.shape),
            "nnz": tensor.nnz,
        }
    )


def _dbtf_state(
    factors: Factors,
    errors: list[int],
    converged: bool,
    rng: np.random.Generator,
    init_index: int,
) -> dict:
    """The complete picklable state of a dbtf run at an iteration boundary."""
    return {
        "factors": factors_state(factors),
        "errors": list(errors),
        "converged": converged,
        "rng_state": rng.bit_generator.state,
        "init_index": init_index,
    }


def dbtf(
    tensor: SparseBoolTensor,
    rank: int | None = None,
    config: DbtfConfig | None = None,
    runtime: SimulatedRuntime | None = None,
    **overrides,
) -> DecompositionResult:
    """Boolean CP decomposition of a three-way binary tensor with DBTF.

    Parameters
    ----------
    tensor:
        The binary input tensor.
    rank:
        Number of components R (ignored when ``config`` is given).
    config:
        Full configuration; built from ``rank`` and ``overrides`` if absent.
    runtime:
        Simulated cluster runtime to meter against; a fresh one is created
        (and attached to the result's report) if not provided.
    overrides:
        Extra :class:`DbtfConfig` fields, e.g. ``max_iterations=5, seed=3``.

    Returns
    -------
    DecompositionResult
        Factors, error trace, convergence flag, and the engine cost report.
    """
    if config is None:
        if rank is None:
            raise ValueError("either rank or config must be provided")
        config = DbtfConfig(rank=rank, **overrides)
    elif overrides:
        raise ValueError("pass either config or overrides, not both")
    owns_runtime = runtime is None
    if runtime is None:
        runtime = SimulatedRuntime(config.resolved_cluster())
    try:
        return drive(dbtf_steps(tensor, config, runtime))
    finally:
        # Only tear down worker pools we created — a caller-supplied
        # runtime may still have stages to run (and metering to read).
        if owns_runtime:
            runtime.close()


def dbtf_steps(
    tensor: SparseBoolTensor,
    config: DbtfConfig,
    runtime: SimulatedRuntime,
    *,
    warm_start: "dict | None" = None,
    shared_unfoldings: "list[Distributed] | None" = None,
    dirty_columns: "list[set[int]] | None" = None,
    baseline_error: "int | None" = None,
) -> Generator[StepEvent, None, DecompositionResult]:
    """Cooperatively-stepped DBTF: one outer iteration per ``next()``.

    Yields a :class:`~repro.core.steps.StepEvent` at every iteration
    boundary, *after* that boundary's checkpoint (when configured) has hit
    disk — so a consumer may stop between any two iterations (cancellation
    via ``close()``) and a later run with ``checkpoint.resume=True``
    continues bit-identically.  Draining the generator is exactly
    :func:`dbtf`; the service layer instead interleaves many generators
    over one shared worker pool.

    The keyword-only parameters are the incremental epoch-advance contract
    (:mod:`repro.incremental`); all default to the classic batch behavior:

    ``warm_start``
        A checkpoint-format state dict (the previous epoch's
        ``result.state``).  Skips initialization entirely: factors, RNG
        state, and the init index are restored and iteration starts at 1
        from a ``phase="warm"`` step 0.  A checkpoint resume, when
        configured and present, takes precedence — it encodes progress
        *within* this epoch.
    ``shared_unfoldings``
        Caller-owned partitioned mode RDDs (a
        :class:`~repro.core.incremental.PartitionedUnfoldings` generation).
        The generator neither rebuilds nor unpersists them.
    ``dirty_columns``
        Per-mode sets of columns the epoch's delta can have moved
        (:func:`~repro.core.incremental.dirty_columns_for_delta`).  Only
        honored for the first warm iteration; clean columns skip their
        error evaluations, escalating to full sweeps on any change.  All
        three sets empty means the warm factors are untouched by the delta:
        the run converges at the baseline error with zero stages.
    ``baseline_error``
        The warm factors' exact reconstruction error on *this* tensor
        (:func:`~repro.core.incremental.baseline_error_after_delta`).
        Defaults to the warm state's last recorded error, which is only
        valid when the tensor is unchanged.
    """
    if tensor.ndim != 3:
        raise ValueError(f"DBTF factorizes three-way tensors, got {tensor.ndim}-way")
    manager = None
    if config.checkpoint is not None:
        manager = CheckpointManager(
            config.checkpoint,
            _dbtf_fingerprint(tensor, config),
            metrics=runtime.metrics,
            tracer=runtime.tracer,
        )

    owns_unfoldings = shared_unfoldings is None
    mode_rdds: list[Distributed] = []
    try:
        rng = np.random.default_rng(config.seed)
        # The partitioned unfoldings are rebuilt unless the caller shares a
        # live generation — they are derived data (lineage recomputation,
        # like Spark rebuilding a lost RDD), so checkpoints stay small:
        # only the factors, error trace, and RNG state go to disk.
        # Rebuilding is lazy: the packing stage dispatches fused into the
        # first factor update that touches each mode.
        mode_rdds = (
            list(shared_unfoldings)
            if shared_unfoldings is not None
            else prepare_partitioned_unfoldings(
                tensor, config.resolved_partitions(), runtime
            )
        )

        resumed = None
        if manager is not None and config.checkpoint.resume:
            resumed = manager.load_latest()
        scoped = False
        if resumed is not None:
            step, state = resumed
            factors = factors_from_state(state["factors"])
            errors = list(state["errors"])
            converged = bool(state["converged"])
            init_index = int(state["init_index"])
            # RNG draws all happen during initialization, but restoring the
            # generator state keeps any future rng consumer bit-identical.
            rng.bit_generator.state = state["rng_state"]
            start_iteration = step + 1
            # A resume at step 0 of a warm epoch restarts the epoch's first
            # (and only scoped) iteration; any later step means the scoped
            # pass already ran and full sweeps continue the trajectory.
            scoped = (
                dirty_columns is not None and warm_start is not None and step == 0
            )
        elif warm_start is not None:
            factors = factors_from_state(warm_start["factors"])
            init_index = int(warm_start.get("init_index", 0))
            if "rng_state" in warm_start:
                rng.bit_generator.state = warm_start["rng_state"]
            if baseline_error is None:
                baseline_error = int(warm_start["errors"][-1])
            errors = [int(baseline_error)]
            # All-clean delta: no column's decision can have moved, so the
            # warm factors are already a fixed point for this epoch —
            # converge at the baseline without dispatching a single stage.
            converged = dirty_columns is not None and not any(dirty_columns)
            scoped = dirty_columns is not None and not converged
            start_iteration = 1
            if manager is not None and (manager.should_save(0) or converged):
                manager.save(
                    0, _dbtf_state(factors, errors, converged, rng, init_index)
                )
            yield StepEvent(0, errors[-1], converged, phase="warm")
        else:
            # First iteration: try L initializations, keep the best
            # (lines 5-8).
            candidates = [
                _initial_factors(tensor, config, rng)
                for _ in range(config.n_initial_sets)
            ]
            best_factors, best_error, init_index = None, None, 0
            for index, candidate in enumerate(candidates):
                updated, error = _update_all_factors(
                    mode_rdds, candidate, config, runtime
                )
                if best_error is None or error < best_error:
                    best_factors, best_error, init_index = updated, error, index
            factors = best_factors

            errors = [best_error]
            converged = False
            start_iteration = 1
            if manager is not None and manager.should_save(0):
                manager.save(
                    0, _dbtf_state(factors, errors, converged, rng, init_index)
                )
            yield StepEvent(0, errors[-1], converged, phase="init")

        threshold = config.tolerance * max(tensor.nnz, 1)
        for iteration in range(start_iteration, config.max_iterations):
            if converged:
                break
            if scoped and iteration == start_iteration:
                factors, scoped_error = _update_all_factors_scoped(
                    mode_rdds, factors, config, runtime, dirty_columns
                )
                # None means nothing was evaluated anywhere — impossible
                # here (an all-empty dirty set converged above), but the
                # baseline is the correct error for it regardless.
                error = errors[-1] if scoped_error is None else scoped_error
            else:
                factors, error = _update_all_factors(
                    mode_rdds, factors, config, runtime
                )
            improvement = errors[-1] - error
            errors.append(error)
            if improvement <= threshold:
                converged = True
            if manager is not None and (
                manager.should_save(iteration) or converged
            ):
                manager.save(
                    iteration,
                    _dbtf_state(factors, errors, converged, rng, init_index),
                )
            yield StepEvent(iteration, error, converged)
            if converged:
                break
    finally:
        # Release the per-mode partition caches so a caller-supplied
        # runtime does not accumulate persisted unfoldings across runs —
        # also the cancellation path: ``generator.close()`` lands here.
        # Shared unfoldings belong to the epoch session, which keeps them
        # alive (and patched) across epochs.
        if owns_unfoldings:
            for rdd in mode_rdds:
                rdd.unpersist()

    return DecompositionResult(
        factors=factors,
        error=errors[-1],
        input_nnz=tensor.nnz,
        errors_per_iteration=tuple(errors),
        converged=converged,
        report=runtime.report(),
        config=config,
        state=_dbtf_state(factors, errors, converged, rng, init_index),
    )
