"""Decomposition results."""

from __future__ import annotations

from dataclasses import dataclass

from ..bitops import BitMatrix
from ..distengine import ExecutionReport
from ..tensor import SparseBoolTensor, tensor_from_factors
from .config import DbtfConfig

__all__ = ["DecompositionResult"]


@dataclass(frozen=True)
class DecompositionResult:
    """The outcome of a Boolean CP decomposition.

    Attributes
    ----------
    factors:
        The binary factor matrices ``(A, B, C)``.
    error:
        ``|X ⊕ X̃|`` — number of cells where the reconstruction differs
        from the input (the paper's reconstruction error).
    input_nnz:
        ``|X|``, kept so the relative error is self-contained.
    errors_per_iteration:
        Error after each outer iteration (monotonically non-increasing).
    converged:
        Whether the error stopped improving before ``max_iterations``.
    report:
        Cost summary from the simulated distributed engine (None for
        algorithms that run purely on the driver).
    config:
        The configuration that produced this result.
    state:
        The solver's checkpoint-format state at the final iteration
        boundary (factors, error trace, RNG state, init index), when the
        solver exports one — the warm-start carrier an incremental epoch
        advance (:mod:`repro.incremental`) feeds back into
        ``dbtf_steps(warm_start=...)``.  ``None`` for solvers that do not
        support warm starts.
    """

    factors: tuple[BitMatrix, BitMatrix, BitMatrix]
    error: int
    input_nnz: int
    errors_per_iteration: tuple[int, ...]
    converged: bool
    report: ExecutionReport | None
    config: DbtfConfig
    state: dict | None = None

    @property
    def relative_error(self) -> float:
        """Error normalized by the input nonzero count."""
        return self.error / self.input_nnz if self.input_nnz else float(self.error)

    @property
    def n_iterations(self) -> int:
        return len(self.errors_per_iteration)

    def reconstruct(self) -> SparseBoolTensor:
        """The Boolean tensor the factors represent."""
        return tensor_from_factors(self.factors)

    def __repr__(self) -> str:
        return (
            f"DecompositionResult(rank={self.config.rank}, error={self.error}, "
            f"relative_error={self.relative_error:.4f}, "
            f"iterations={self.n_iterations}, converged={self.converged})"
        )
