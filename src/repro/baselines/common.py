"""Shared result type and helpers for the baseline algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bitops import BitMatrix
from ..tensor import SparseBoolTensor, tensor_from_factors

__all__ = ["BaselineResult", "MemoryBudgetExceeded", "reconstruction_error_of"]


class MemoryBudgetExceeded(MemoryError):
    """Raised when a baseline would exceed its memory budget.

    BCP_ALS's ASSO initialization builds an association matrix quadratic in
    the number of unfolded-tensor columns; on the paper's real-world tensors
    this is what makes BCP_ALS fail with out-of-memory errors (Fig. 6).  The
    guard turns that failure mode into a catchable, reportable event instead
    of taking the host down.
    """


def reconstruction_error_of(
    tensor: SparseBoolTensor, factors: tuple[BitMatrix, BitMatrix, BitMatrix]
) -> int:
    """``|X ⊕ X̃|`` for a factor triple."""
    return tensor.hamming_distance(tensor_from_factors(factors))


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of a baseline Boolean CP factorization.

    Mirrors :class:`repro.core.DecompositionResult` for the fields the
    experiments compare, plus baseline-specific extras in ``details``.
    """

    method: str
    factors: tuple[BitMatrix, BitMatrix, BitMatrix]
    error: int
    input_nnz: int
    errors_per_iteration: tuple[int, ...] = ()
    converged: bool = False
    details: dict = field(default_factory=dict)

    @property
    def relative_error(self) -> float:
        return self.error / self.input_nnz if self.input_nnz else float(self.error)

    @property
    def n_iterations(self) -> int:
        return len(self.errors_per_iteration)

    def reconstruct(self) -> SparseBoolTensor:
        return tensor_from_factors(self.factors)

    def __repr__(self) -> str:
        return (
            f"BaselineResult({self.method}, error={self.error}, "
            f"relative_error={self.relative_error:.4f})"
        )
