"""BCP_ALS — Miettinen's Boolean CP decomposition (ICDM 2011).

The single-machine baseline of the paper: the alternating framework of
Algorithm 1, initialized by running ASSO on each mode's unfolding and
iteratively updating factors column by column.  Two deliberate contrasts
with DBTF:

* the ASSO initialization builds a column-association matrix quadratic in
  the unfolded tensor's column count — BCP_ALS's memory bottleneck (the
  paper reports O.O.M. on all real-world datasets);
* factor updates recompute every Boolean row summation from scratch instead
  of caching the ``2**R`` combinations — the flops bottleneck DBTF's caching
  removes.
"""

from __future__ import annotations

import numpy as np

from ..bitops import BitMatrix, khatri_rao, packing
from ..tensor import MODE_FACTOR_ROLES, SparseBoolTensor, unfold
from .asso import _DEFAULT_MEMORY_BUDGET_BYTES, asso
from .common import BaselineResult

__all__ = ["bcp_als", "update_factor_uncached"]

Factors = tuple[BitMatrix, BitMatrix, BitMatrix]


def _packed_unfolding_rows(tensor: SparseBoolTensor, mode: int) -> BitMatrix:
    """The mode-n unfolding with rows packed over the full column range."""
    return BitMatrix.from_dense(unfold(tensor, mode).to_dense())


def update_factor_uncached(
    unfolded: BitMatrix,
    target: BitMatrix,
    outer: BitMatrix,
    inner: BitMatrix,
) -> tuple[BitMatrix, int]:
    """Column-wise greedy factor update *without* row-summation caching.

    Semantically identical to DBTF's :func:`repro.core.update_factor` — for
    every column and row, pick the value of ``target[r, c]`` with the
    smaller error — but each Boolean row summation is recomputed from the
    Khatri-Rao rows on every column iteration, the cost profile of the
    original BCP_ALS.
    """
    rank = target.n_cols
    kr_rows = khatri_rao(outer, inner).transpose()  # R x (outer*inner), packed
    updated = target.copy()
    n_rows = updated.n_rows
    n_words = unfolded.words.shape[1]
    error_after = 0
    for column in range(rank):
        # Coverage by all other components, recomputed from scratch.
        cover_others = np.zeros((n_rows, n_words), dtype=np.uint64)
        for component in range(rank):
            if component == column:
                continue
            users = updated.column(component).astype(bool)
            if users.any():
                cover_others[users] |= kr_rows.words[component]
        column_cover = kr_rows.words[column]
        error_if_zero = packing.popcount_rows(unfolded.words ^ cover_others)
        error_if_one = packing.popcount_rows(
            unfolded.words ^ (cover_others | column_cover)
        )
        chosen = (error_if_one < error_if_zero).astype(np.uint8)
        updated.set_column(column, chosen)
        error_after = int(np.minimum(error_if_zero, error_if_one).sum())
    return updated, error_after


def bcp_als(
    tensor: SparseBoolTensor,
    rank: int,
    max_iterations: int = 10,
    threshold: float = 0.7,
    tolerance: float = 0.0,
    memory_budget_bytes: int = _DEFAULT_MEMORY_BUDGET_BYTES,
) -> BaselineResult:
    """Boolean CP decomposition with the BCP_ALS algorithm.

    Parameters
    ----------
    tensor:
        Three-way binary input.
    rank:
        Number of components R.
    max_iterations:
        Iteration cap T of the alternating framework.
    threshold:
        ASSO's association discretization level τ (the paper uses 0.7).
    tolerance:
        Relative convergence threshold, as in :class:`repro.core.DbtfConfig`.
    memory_budget_bytes:
        Cap on the ASSO association matrix;
        :class:`repro.baselines.MemoryBudgetExceeded` is raised beyond it —
        the baseline's real-world failure mode (paper Fig. 6).
    """
    if tensor.ndim != 3:
        raise ValueError(f"BCP_ALS factorizes three-way tensors, got {tensor.ndim}-way")
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    if max_iterations <= 0:
        raise ValueError(f"max_iterations must be positive, got {max_iterations}")

    unfoldings = [_packed_unfolding_rows(tensor, mode) for mode in range(3)]
    factors: list[BitMatrix] = []
    for mode in range(3):
        result = asso(
            unfoldings[mode],
            rank,
            threshold=threshold,
            memory_budget_bytes=memory_budget_bytes,
        )
        factors.append(result.usage)

    errors: list[int] = []
    converged = False
    threshold_delta = tolerance * max(tensor.nnz, 1)
    error = None
    for _ in range(max_iterations):
        for mode in range(3):
            target_index, outer_index, inner_index = MODE_FACTOR_ROLES[mode]
            factors[target_index], error = update_factor_uncached(
                unfoldings[mode],
                factors[target_index],
                factors[outer_index],
                factors[inner_index],
            )
        if errors and errors[-1] - error <= threshold_delta:
            errors.append(error)
            converged = True
            break
        errors.append(error)

    return BaselineResult(
        method="BCP_ALS",
        factors=(factors[0], factors[1], factors[2]),
        error=errors[-1],
        input_nnz=tensor.nnz,
        errors_per_iteration=tuple(errors),
        converged=converged,
        details={"initialization": "asso", "asso_threshold": threshold},
    )
