"""Walk'n'Merge — random-walk Boolean tensor factorization (Erdős &
Miettinen, 2013), the paper's second baseline.

The tensor's nonzeros form a graph where two nonzeros are adjacent when they
share two of their three coordinates (they lie on a common fiber).  Dense
rank-1 blocks make dense subgraphs, so short random walks tend to stay
inside them.  The algorithm:

1. **Walk** — from random seed nonzeros, run short random walks; nonzeros
   visited repeatedly form a candidate block, which is shrunk until its
   density reaches the threshold ``t`` (the paper sets ``t = 1 - n_d`` for
   destructive-noise level ``n_d``) and kept if it still meets the minimum
   size (4x4x4 in the paper's runs).
2. **Merge** — blocks whose union is still dense are merged, greedily,
   until a fixpoint.

Unlike the CP methods, Walk'n'Merge discovers its *own* number of blocks;
the requested rank only selects the largest blocks when exporting factor
matrices.  That is why the paper's Fig. 1(c) shows its runtime flat in rank.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

import numpy as np

from ..bitops import BitMatrix
from ..tensor import SparseBoolTensor
from .common import BaselineResult

__all__ = ["DenseBlock", "WalkNMergeConfig", "walk_n_merge", "blocks_to_factors"]


@dataclass(frozen=True)
class DenseBlock:
    """A combinatorial rank-1 block: an index set per mode."""

    mode_indices: tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]
    nnz_inside: int

    @property
    def n_cells(self) -> int:
        sizes = [len(indices) for indices in self.mode_indices]
        return sizes[0] * sizes[1] * sizes[2]

    @property
    def density(self) -> float:
        return self.nnz_inside / self.n_cells if self.n_cells else 0.0

    @property
    def dims(self) -> tuple[int, int, int]:
        return tuple(len(indices) for indices in self.mode_indices)


@dataclass(frozen=True)
class WalkNMergeConfig:
    """Knobs of Walk'n'Merge, defaults following the paper's Sec. IV-A.2."""

    density_threshold: float = 0.9  # t = 1 - n_d in the paper's runs
    min_block_dim: int = 4          # "minimum size of blocks is 4-by-4-by-4"
    walk_length: int = 5            # "the length of random walks is 5"
    walks_per_seed: int = 12
    visit_threshold: int = 2
    # Safety valve only: the original algorithm seeds until every nonzero is
    # assigned or rejected, so the cap is set far above any tensor used here
    # and the experiment harness's timeout is the practical control.
    max_seeds: int = 500_000
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.density_threshold <= 1.0:
            raise ValueError(
                f"density_threshold must be in (0, 1], got {self.density_threshold}"
            )
        if self.min_block_dim < 1:
            raise ValueError(f"min_block_dim must be >= 1, got {self.min_block_dim}")
        if self.walk_length < 1 or self.walks_per_seed < 1:
            raise ValueError("walk_length and walks_per_seed must be >= 1")
        if self.visit_threshold < 1:
            raise ValueError(f"visit_threshold must be >= 1, got {self.visit_threshold}")
        if self.max_seeds < 1:
            raise ValueError(f"max_seeds must be >= 1, got {self.max_seeds}")


class _FiberGraph:
    """Adjacency of nonzeros along the three fiber directions."""

    def __init__(self, coords: np.ndarray):
        self.coords = coords
        # fibers[d] maps the two fixed coordinates to the nonzero ids on
        # that fiber (the nonzeros differing only in mode d).
        self.fibers: list[dict[tuple[int, int], np.ndarray]] = []
        for mode in range(3):
            fixed = [m for m in range(3) if m != mode]
            groups: dict[tuple[int, int], list[int]] = defaultdict(list)
            for node, coordinate in enumerate(coords):
                key = (int(coordinate[fixed[0]]), int(coordinate[fixed[1]]))
                groups[key].append(node)
            self.fibers.append(
                {key: np.asarray(nodes) for key, nodes in groups.items()}
            )

    def fiber_of(self, node: int, mode: int) -> np.ndarray:
        fixed = [m for m in range(3) if m != mode]
        coordinate = self.coords[node]
        key = (int(coordinate[fixed[0]]), int(coordinate[fixed[1]]))
        return self.fibers[mode][key]

    def random_step(self, node: int, rng: np.random.Generator) -> int:
        mode = int(rng.integers(0, 3))
        fiber = self.fiber_of(node, mode)
        return int(fiber[rng.integers(0, fiber.shape[0])])


def _count_inside(coords: np.ndarray, index_sets: list[np.ndarray]) -> np.ndarray:
    """Boolean mask over nonzeros: inside the block spanned by the sets."""
    mask = np.ones(coords.shape[0], dtype=bool)
    for mode in range(3):
        mask &= np.isin(coords[:, mode], index_sets[mode])
    return mask


def _shrink_to_density(
    coords: np.ndarray,
    index_sets: list[np.ndarray],
    config: WalkNMergeConfig,
) -> DenseBlock | None:
    """Greedily drop the weakest index until the block is dense enough.

    The weakest index is the one whose slice inside the block has the lowest
    fill ratio.  Returns None if the block falls under the minimum size
    before reaching the density threshold.
    """
    while True:
        dims = [len(s) for s in index_sets]
        if any(dim < config.min_block_dim for dim in dims):
            return None
        inside = _count_inside(coords, index_sets)
        nnz_inside = int(inside.sum())
        cells = dims[0] * dims[1] * dims[2]
        if nnz_inside / cells >= config.density_threshold:
            return DenseBlock(
                mode_indices=tuple(
                    tuple(int(v) for v in sorted(s)) for s in index_sets
                ),
                nnz_inside=nnz_inside,
            )
        # Fill ratio of each index's slice; drop the globally weakest.
        worst_ratio, worst = None, None
        block_coords = coords[inside]
        for mode in range(3):
            slice_cells = cells // dims[mode]
            counts = Counter(block_coords[:, mode].tolist())
            for index in index_sets[mode]:
                ratio = counts.get(int(index), 0) / slice_cells
                if worst_ratio is None or ratio < worst_ratio:
                    worst_ratio, worst = ratio, (mode, int(index))
        mode, index = worst
        index_sets[mode] = index_sets[mode][index_sets[mode] != index]


def _try_merge(
    coords: np.ndarray, left: DenseBlock, right: DenseBlock, threshold: float
) -> DenseBlock | None:
    """The union block, if it is still dense enough."""
    union_sets = [
        np.union1d(np.asarray(left.mode_indices[mode]), np.asarray(right.mode_indices[mode]))
        for mode in range(3)
    ]
    cells = int(np.prod([len(s) for s in union_sets]))
    if cells == 0:
        return None
    nnz_inside = int(_count_inside(coords, union_sets).sum())
    if nnz_inside / cells < threshold:
        return None
    return DenseBlock(
        mode_indices=tuple(tuple(int(v) for v in s) for s in union_sets),
        nnz_inside=nnz_inside,
    )


def _find_blocks(
    tensor: SparseBoolTensor, config: WalkNMergeConfig, rng: np.random.Generator
) -> list[DenseBlock]:
    coords = tensor.coords
    graph = _FiberGraph(coords)
    unassigned = np.ones(tensor.nnz, dtype=bool)
    blocks: list[DenseBlock] = []
    for _ in range(config.max_seeds):
        remaining = np.flatnonzero(unassigned)
        if remaining.size == 0:
            break
        seed_node = int(remaining[rng.integers(0, remaining.size)])
        visits: Counter[int] = Counter()
        for _ in range(config.walks_per_seed):
            node = seed_node
            visits[node] += 1
            for _ in range(config.walk_length):
                node = graph.random_step(node, rng)
                visits[node] += 1
        hot = [node for node, count in visits.items() if count >= config.visit_threshold]
        unassigned[seed_node] = False  # guarantee progress
        if not hot:
            continue
        hot_coords = coords[hot]
        index_sets = [np.unique(hot_coords[:, mode]) for mode in range(3)]
        block = _shrink_to_density(coords, index_sets, config)
        if block is None:
            continue
        blocks.append(block)
        unassigned &= ~_count_inside(
            coords, [np.asarray(s) for s in block.mode_indices]
        )
    return blocks


def _merge_blocks(
    coords: np.ndarray, blocks: list[DenseBlock], threshold: float
) -> list[DenseBlock]:
    merged = list(blocks)
    changed = True
    while changed:
        changed = False
        for i in range(len(merged)):
            for j in range(i + 1, len(merged)):
                union = _try_merge(coords, merged[i], merged[j], threshold)
                if union is not None:
                    merged[i] = union
                    merged.pop(j)
                    changed = True
                    break
            if changed:
                break
    return merged


def blocks_to_factors(
    blocks: list[DenseBlock], shape: tuple[int, int, int], rank: int
) -> tuple[BitMatrix, BitMatrix, BitMatrix]:
    """Factor matrices from the ``rank`` largest blocks (by covered ones)."""
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    chosen = sorted(blocks, key=lambda block: block.nnz_inside, reverse=True)[:rank]
    factors = tuple(BitMatrix.zeros(dimension, rank) for dimension in shape)
    for component, block in enumerate(chosen):
        for factor, indices in zip(factors, block.mode_indices):
            for index in indices:
                factor.set(index, component, 1)
    return factors


def walk_n_merge(
    tensor: SparseBoolTensor,
    rank: int,
    config: WalkNMergeConfig | None = None,
) -> BaselineResult:
    """Factorize a Boolean tensor with Walk'n'Merge.

    The block discovery ignores ``rank``; it only limits how many blocks
    become factor-matrix components (largest first), matching how the paper
    compares the methods at a given rank.
    """
    if tensor.ndim != 3:
        raise ValueError(
            f"Walk'n'Merge factorizes three-way tensors, got {tensor.ndim}-way"
        )
    config = config or WalkNMergeConfig()
    rng = np.random.default_rng(config.seed)
    if tensor.nnz == 0:
        factors = blocks_to_factors([], tensor.shape, rank)
        return BaselineResult(
            method="WalkNMerge", factors=factors, error=0, input_nnz=0,
            details={"n_blocks": 0},
        )
    blocks = _find_blocks(tensor, config, rng)
    blocks = _merge_blocks(tensor.coords, blocks, config.density_threshold)
    factors = blocks_to_factors(blocks, tensor.shape, rank)
    from ..tensor import tensor_from_factors

    error = tensor.hamming_distance(tensor_from_factors(factors))
    return BaselineResult(
        method="WalkNMerge",
        factors=factors,
        error=error,
        input_nnz=tensor.nnz,
        details={
            "n_blocks": len(blocks),
            "block_dims": [block.dims for block in blocks],
        },
    )
