"""The ASSO algorithm for Boolean matrix factorization.

ASSO (Miettinen et al., *The Discrete Basis Problem*) factorizes a binary
matrix ``X ≈ B ∘ C`` with ``B`` (n × k) choosing, per row, which of the k
basis vectors (rows of ``C``, length m) are used.  Basis-vector candidates
come from the column-association matrix: candidate j is the indicator of
"columns implied by column j" at confidence level τ.  Candidates and their
usage columns are then picked greedily to maximize a cover score.

BCP_ALS uses ASSO's usage matrix ``B`` to initialize each tensor factor
(Miettinen, *Boolean Tensor Factorizations*, ICDM 2011).  The association
matrix is m × m where m is the *column* count of the unfolded tensor — the
quadratic space/time cost the DBTF paper cites as BCP_ALS's bottleneck; a
memory budget turns that into a reportable :class:`MemoryBudgetExceeded`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bitops import BitMatrix
from .common import MemoryBudgetExceeded

__all__ = ["AssoResult", "asso", "association_matrix", "cover_score"]

# Association matrices are float32: guard = m * m * 4 bytes.
_DEFAULT_MEMORY_BUDGET_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class AssoResult:
    """ASSO output: ``X ≈ usage ∘ basis`` plus the achieved cover score."""

    usage: BitMatrix  # n x k
    basis: BitMatrix  # k x m
    score: float


def association_matrix(
    matrix: np.ndarray, memory_budget_bytes: int = _DEFAULT_MEMORY_BUDGET_BYTES
) -> np.ndarray:
    """Column-association confidences ``conf(j ⇒ l) = |x_:j ∧ x_:l| / |x_:j|``.

    Raises
    ------
    MemoryBudgetExceeded
        If the m × m result would not fit the budget (BCP_ALS's documented
        failure mode on large unfoldings).
    """
    dense = np.asarray(matrix, dtype=np.float32)
    n_cols = dense.shape[1]
    needed = n_cols * n_cols * 4
    if needed > memory_budget_bytes:
        raise MemoryBudgetExceeded(
            f"association matrix needs {needed / 2**20:.0f} MiB for "
            f"{n_cols} columns (budget {memory_budget_bytes / 2**20:.0f} MiB)"
        )
    co_occurrence = dense.T @ dense
    column_sums = np.diag(co_occurrence).copy()
    column_sums[column_sums == 0] = 1.0  # empty columns imply nothing
    return co_occurrence / column_sums[:, None]


def cover_score(
    covered: np.ndarray,
    candidate_cover: np.ndarray,
    target: np.ndarray,
    weight_positive: float,
    weight_negative: float,
) -> np.ndarray:
    """Per-row gain of adding ``candidate_cover`` on top of ``covered``.

    Newly covered 1s gain ``weight_positive``; newly covered 0s cost
    ``weight_negative``.
    """
    newly = candidate_cover & ~covered
    gains = (newly & target).sum(axis=1) * weight_positive
    costs = (newly & ~target).sum(axis=1) * weight_negative
    return gains - costs


def asso(
    matrix: BitMatrix,
    rank: int,
    threshold: float = 0.7,
    weight_positive: float = 1.0,
    weight_negative: float = 1.0,
    memory_budget_bytes: int = _DEFAULT_MEMORY_BUDGET_BYTES,
) -> AssoResult:
    """Rank-k ASSO factorization of a Boolean matrix.

    Parameters follow the original: ``threshold`` is the association
    discretization level τ (the paper's experiments use 0.7), and the
    weights trade covered 1s against covered 0s.
    """
    if rank <= 0:
        raise ValueError(f"rank must be positive, got {rank}")
    if not 0.0 < threshold <= 1.0:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    dense = matrix.to_dense().astype(bool)
    n_rows, n_cols = dense.shape
    candidates = association_matrix(dense, memory_budget_bytes) >= threshold

    usage = np.zeros((n_rows, rank), dtype=bool)
    basis = np.zeros((rank, n_cols), dtype=bool)
    covered = np.zeros_like(dense)
    candidate_matrix = candidates.astype(np.float32)
    total_score = 0.0
    for component in range(rank):
        # Vectorized gain of every candidate for every row: a newly covered
        # cell is one the candidate covers that `covered` does not yet.
        uncovered_ones = (dense & ~covered).astype(np.float32)
        uncovered_zeros = (~dense & ~covered).astype(np.float32)
        gains = uncovered_ones @ candidate_matrix.T  # (n_rows, n_candidates)
        costs = uncovered_zeros @ candidate_matrix.T
        row_gains = gains * weight_positive - costs * weight_negative
        candidate_scores = np.where(row_gains > 0, row_gains, 0.0).sum(axis=0)
        best_index = int(candidate_scores.argmax())
        best_score = float(candidate_scores[best_index])
        if best_score <= 0:
            break  # no candidate improves the cover
        candidate = candidates[best_index]
        use_rows = row_gains[:, best_index] > 0
        total_score += best_score
        usage[:, component] = use_rows
        basis[component] = candidate
        covered |= use_rows[:, None] & candidate[None, :]

    return AssoResult(
        usage=BitMatrix.from_dense(usage.astype(np.uint8)),
        basis=BitMatrix.from_dense(basis.astype(np.uint8)),
        score=total_score,
    )
