"""Baseline Boolean tensor factorization algorithms from the paper."""

from .asso import AssoResult, asso, association_matrix
from .bcp_als import bcp_als, update_factor_uncached
from .common import BaselineResult, MemoryBudgetExceeded, reconstruction_error_of
from .naive import error_of_rank1, exhaustive_best_rank1
from .walk_n_merge import (
    DenseBlock,
    WalkNMergeConfig,
    blocks_to_factors,
    walk_n_merge,
)

__all__ = [
    "asso",
    "AssoResult",
    "association_matrix",
    "bcp_als",
    "update_factor_uncached",
    "walk_n_merge",
    "WalkNMergeConfig",
    "DenseBlock",
    "blocks_to_factors",
    "BaselineResult",
    "MemoryBudgetExceeded",
    "reconstruction_error_of",
    "exhaustive_best_rank1",
    "error_of_rank1",
]
