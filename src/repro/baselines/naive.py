"""Exhaustive solvers for tiny tensors — test oracles, not baselines.

These enumerate candidate factors outright, so they are exponential and only
usable on toy sizes, but they give the test suite ground truth to verify the
heuristics against.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from ..bitops import BitMatrix
from ..tensor import SparseBoolTensor, outer_product

__all__ = ["exhaustive_best_rank1", "error_of_rank1"]


def error_of_rank1(
    tensor: SparseBoolTensor, a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> int:
    """``|X ⊕ a ∘ b ∘ c|``."""
    return tensor.hamming_distance(outer_product(a, b, c))


def exhaustive_best_rank1(
    tensor: SparseBoolTensor,
) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray], int]:
    """The globally optimal rank-1 Boolean approximation, by enumeration.

    Complexity is ``2**(I+J+K)``; intended for I, J, K <= 4.
    """
    shape = tensor.shape
    total_bits = sum(shape)
    if total_bits > 14:
        raise ValueError(
            f"exhaustive search over 2^{total_bits} candidates is too large; "
            "use tensors with I+J+K <= 14"
        )
    best_vectors = None
    best_error = None
    options = [list(product((0, 1), repeat=dimension)) for dimension in shape]
    for a in options[0]:
        for b in options[1]:
            for c in options[2]:
                error = error_of_rank1(
                    tensor, np.asarray(a), np.asarray(b), np.asarray(c)
                )
                if best_error is None or error < best_error:
                    best_error = error
                    best_vectors = (np.asarray(a), np.asarray(b), np.asarray(c))
    return best_vectors, best_error
