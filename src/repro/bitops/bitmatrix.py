"""A Boolean matrix with bit-packed rows.

:class:`BitMatrix` is the workhorse representation for factor matrices and
unfolded-tensor rows throughout the reproduction.  Rows are packed into
``uint64`` words (see :mod:`repro.bitops.packing`), so Boolean sums of rows
are word-wise ORs and Hamming distances are XOR + popcount.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..observability.trace import kernel_span, record_metric
from . import packing

__all__ = ["BitMatrix"]


class BitMatrix:
    """An ``n_rows`` x ``n_cols`` Boolean matrix packed row-wise into uint64.

    The packed buffer is exposed as ``.words`` (shape ``(n_rows, n_words)``)
    for vectorized kernels; all mutating helpers keep padding bits beyond
    ``n_cols`` cleared, which the equality/popcount operations rely on.
    """

    __slots__ = ("n_rows", "n_cols", "words")

    def __init__(self, n_rows: int, n_cols: int, words: np.ndarray | None = None):
        if n_rows < 0 or n_cols < 0:
            raise ValueError(f"negative shape ({n_rows}, {n_cols})")
        self.n_rows = n_rows
        self.n_cols = n_cols
        n_words = packing.words_for_bits(n_cols)
        if words is None:
            words = np.zeros((n_rows, n_words), dtype=np.uint64)
        else:
            words = np.ascontiguousarray(words, dtype=np.uint64)
            if words.shape != (n_rows, n_words):
                raise ValueError(
                    f"words shape {words.shape} does not match "
                    f"({n_rows}, {n_words}) for a {n_rows}x{n_cols} matrix"
                )
        self.words = words

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "BitMatrix":
        """Build from a 2-D 0/1 array."""
        dense = np.atleast_2d(np.asarray(dense))
        if dense.ndim != 2:
            raise ValueError(f"expected a 2-D array, got ndim={dense.ndim}")
        n_rows, n_cols = dense.shape
        return cls(n_rows, n_cols, packing.pack_bits(dense))

    @classmethod
    def zeros(cls, n_rows: int, n_cols: int) -> "BitMatrix":
        return cls(n_rows, n_cols)

    @classmethod
    def identity(cls, n: int) -> "BitMatrix":
        return cls.from_dense(np.eye(n, dtype=np.uint8))

    @classmethod
    def random(
        cls, n_rows: int, n_cols: int, density: float, rng: np.random.Generator
    ) -> "BitMatrix":
        """A random Boolean matrix with i.i.d. Bernoulli(density) entries."""
        if not 0.0 <= density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {density}")
        dense = (rng.random((n_rows, n_cols)) < density).astype(np.uint8)
        return cls.from_dense(dense)

    def copy(self) -> "BitMatrix":
        return BitMatrix(self.n_rows, self.n_cols, self.words.copy())

    # ------------------------------------------------------------------
    # Element / row access
    # ------------------------------------------------------------------
    def get(self, row: int, col: int) -> int:
        self._check_index(row, col)
        return packing.get_bit(self.words, row, col)

    def set(self, row: int, col: int, value: int) -> None:
        self._check_index(row, col)
        packing.set_bit(self.words, row, col, value)

    def _check_index(self, row: int, col: int) -> None:
        if not (0 <= row < self.n_rows and 0 <= col < self.n_cols):
            raise IndexError(
                f"index ({row}, {col}) out of bounds for "
                f"{self.n_rows}x{self.n_cols} matrix"
            )

    def row_mask(self, row: int) -> int:
        """The row as an integer bitmask (bit c set iff entry (row, c) is 1).

        Only sensible for narrow matrices such as factor matrices, where the
        mask is used as a cache key.
        """
        mask = 0
        for word_index in range(self.words.shape[1] - 1, -1, -1):
            mask = (mask << packing.WORD_BITS) | int(self.words[row, word_index])
        return mask

    def row_masks(self) -> list[int]:
        """All rows as integer bitmasks."""
        return [self.row_mask(r) for r in range(self.n_rows)]

    def column(self, col: int) -> np.ndarray:
        """One column as a dense 0/1 vector."""
        word, offset = divmod(col, packing.WORD_BITS)
        return ((self.words[:, word] >> np.uint64(offset)) & np.uint64(1)).astype(np.uint8)

    def set_column(self, col: int, values: np.ndarray) -> None:
        """Overwrite one column from a dense 0/1 vector."""
        values = np.asarray(values)
        if values.shape != (self.n_rows,):
            raise ValueError(f"column values shape {values.shape} != ({self.n_rows},)")
        word, offset = divmod(col, packing.WORD_BITS)
        bit = np.uint64(1 << offset)
        column_words = self.words[:, word]
        column_words &= ~bit
        column_words |= np.where(values.astype(bool), bit, np.uint64(0))
        self.words[:, word] = column_words

    # ------------------------------------------------------------------
    # Whole-matrix operations
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        return packing.unpack_bits(self.words, self.n_cols)

    def transpose(self) -> "BitMatrix":
        with kernel_span("bitmatrix.transpose", rows=self.n_rows,
                         cols=self.n_cols):
            return BitMatrix.from_dense(self.to_dense().T)

    def boolean_or(self, other: "BitMatrix") -> "BitMatrix":
        """Element-wise Boolean sum (Eq. 5 of the paper)."""
        self._check_same_shape(other)
        record_metric("bitmatrix_ops_total", op="or")
        return BitMatrix(self.n_rows, self.n_cols, self.words | other.words)

    def boolean_and(self, other: "BitMatrix") -> "BitMatrix":
        self._check_same_shape(other)
        record_metric("bitmatrix_ops_total", op="and")
        return BitMatrix(self.n_rows, self.n_cols, self.words & other.words)

    def xor(self, other: "BitMatrix") -> "BitMatrix":
        self._check_same_shape(other)
        record_metric("bitmatrix_ops_total", op="xor")
        return BitMatrix(self.n_rows, self.n_cols, self.words ^ other.words)

    def hamming_distance(self, other: "BitMatrix") -> int:
        """Number of differing entries."""
        self._check_same_shape(other)
        record_metric("bitmatrix_ops_total", op="hamming")
        return packing.popcount(self.words ^ other.words)

    def _check_same_shape(self, other: "BitMatrix") -> None:
        if (self.n_rows, self.n_cols) != (other.n_rows, other.n_cols):
            raise ValueError(
                f"shape mismatch: {self.shape} vs {other.shape}"
            )

    def or_rows(self, rows: Iterable[int]) -> np.ndarray:
        """Boolean sum (OR) of the selected rows, as packed words.

        This is Lemma 1 of the paper: a Boolean vector-matrix product selects
        and ORs the rows named by the vector's nonzeros.
        """
        rows = list(rows)
        if not rows:
            return np.zeros(self.words.shape[1], dtype=np.uint64)
        return np.bitwise_or.reduce(self.words[rows], axis=0)

    def count_nonzeros(self) -> int:
        return packing.popcount(self.words)

    def density(self) -> float:
        cells = self.n_rows * self.n_cols
        return self.count_nonzeros() / cells if cells else 0.0

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitMatrix):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self.words, other.words))

    def __hash__(self):  # mutable container
        raise TypeError("BitMatrix is mutable and unhashable")

    def __repr__(self) -> str:
        return f"BitMatrix({self.n_rows}x{self.n_cols}, nnz={self.count_nonzeros()})"
