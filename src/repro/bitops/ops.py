"""Boolean linear-algebra operations on :class:`BitMatrix` operands.

These implement the operators of Section II of the paper: the Boolean matrix
product (Eq. 6), the Khatri-Rao product (Eq. 3) under Boolean semantics, and
the pointwise vector-matrix product (Eq. 4).

Every public kernel here is a thin wrapper over the dispatch tier
(:mod:`repro.bitops.dispatch`): several implementations of each kernel are
registered at the bottom of this module — the loop-form reference, the
vectorized paths, and (when available) a Numba-compiled path — and the
dispatcher picks one per call shape.  All registered implementations are
pinned bit-identical by ``tests/test_bitops_differential.py``, so dispatch
decisions change speed, never results.  The chosen implementation is
surfaced as the ``impl=`` attribute of each ``kernel_span`` and counted in
the ``kernel_dispatch_total`` metric.
"""

from __future__ import annotations

import sys

import numpy as np

from ..observability.trace import kernel_span, record_metric
from . import _numba, dispatch, packing
from .bitmatrix import BitMatrix

__all__ = [
    "boolean_matmul",
    "khatri_rao",
    "pointwise_vector_matrix",
    "xor_popcount",
    "xor_popcount_rows",
    "or_accumulate_table",
]

#: Default fixed-tier threshold: below this row count the per-row loop beats
#: amortizing the 256-entry byte tables of the batched kernel.  The autotune
#: cache's ``thresholds`` section overrides it per machine.
_BATCH_MIN_ROWS = 32


def _record_dispatch(kernel_name: str, impl_name: str) -> None:
    """Count one dispatch decision (no-op outside traced tasks)."""
    record_metric(
        "kernel_dispatch_total",
        kernel=kernel_name,
        impl=impl_name,
        tier=dispatch.get_dispatcher().tier,
    )


# ----------------------------------------------------------------------
# boolean_matmul
# ----------------------------------------------------------------------
def boolean_matmul(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Boolean matrix product ``left ∘ right`` (Eq. 6).

    ``(left ∘ right)[i, j] = OR_k left[i, k] AND right[k, j]``.  Output row
    *i* is the OR of the rows of ``right`` selected by the nonzeros of
    ``left``'s row *i* (Lemma 1).  The dispatch tier picks one of the
    registered implementations per call shape: the per-row reference loop,
    the byte-group table gather (:func:`or_accumulate_table` per 8 inner
    columns), a numpy-bulk reduction, or a compiled path when Numba is
    present.
    """
    if left.n_cols != right.n_rows:
        raise ValueError(
            f"inner dimensions differ: {left.shape} ∘ {right.shape}"
        )
    shape = (left.n_rows, left.n_cols, right.n_cols)
    spec = dispatch.get_dispatcher().resolve("boolean_matmul", shape, (left, right))
    with kernel_span("boolean_matmul", m=left.n_rows, k=left.n_cols,
                     n=right.n_cols, impl=spec.name):
        _record_dispatch("boolean_matmul", spec.name)
        return spec.fn(left, right)


def _boolean_matmul_rowloop(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Reference per-row implementation (and small-matrix fast path)."""
    out_words = np.zeros((left.n_rows, right.words.shape[1]), dtype=np.uint64)
    left_dense = left.to_dense().astype(bool)
    for i in range(left.n_rows):
        selected = np.flatnonzero(left_dense[i])
        if selected.size:
            out_words[i] = np.bitwise_or.reduce(right.words[selected], axis=0)
    return BitMatrix(left.n_rows, right.n_cols, out_words)


def _boolean_matmul_batched(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Byte-group table gather: one 256-entry OR table per 8 inner columns.

    ``left``'s padding bits are zero (BitMatrix invariant), so a partial
    final group indexes only the low ``2**size`` table entries.  The byte
    view of uint64 words only lines up with bit positions on little-endian
    hosts, so this implementation is registered with
    ``needs_little_endian=True``.
    """
    out = np.zeros((left.n_rows, right.words.shape[1]), dtype=np.uint64)
    left_bytes = np.ascontiguousarray(left.words).view(np.uint8)
    n_groups = (left.n_cols + 7) // 8
    for group in range(n_groups):
        size = min(8, left.n_cols - 8 * group)
        table = or_accumulate_table(
            right.words[8 * group : 8 * group + size], size
        )
        out |= table[left_bytes[:, group]]
    return BitMatrix(left.n_rows, right.n_cols, out)


def _boolean_matmul_bulk(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Numpy-bulk path: mask-select right's rows, OR-reduce over the inner axis.

    Materializes an ``(m, k, n_words)`` intermediate, so it only wins for
    small inner dimensions — exactly the regime the autotuner probes.
    """
    selected = np.where(
        left.to_dense().astype(bool)[:, :, None],
        right.words[None, :, :],
        np.uint64(0),
    )
    out_words = np.bitwise_or.reduce(selected, axis=1)
    return BitMatrix(left.n_rows, right.n_cols, out_words)


def _boolean_matmul_numba(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Compiled bit-scan OR-accumulate (registered only when Numba exists)."""
    out_words = _numba.boolean_matmul_words(
        left.words, right.words, right.words.shape[1]
    )
    return BitMatrix(left.n_rows, right.n_cols, out_words)


def _boolean_matmul_heuristic(shape, thresholds) -> str:
    m = shape[0]
    if sys.byteorder != "little":
        return "rowloop"
    min_rows = thresholds.get("boolean_matmul.batch_min_rows", _BATCH_MIN_ROWS)
    return "batched" if m >= min_rows else "rowloop"


def _boolean_matmul_args(shape, rng):
    m, k, n = shape
    return (BitMatrix.random(m, k, 0.3, rng), BitMatrix.random(k, n, 0.3, rng))


def _boolean_matmul_threshold_rule(winners: dict) -> dict:
    """Smallest row count where a batched-style impl beat the row loop."""
    batched_rows = sorted(
        shape[0] for shape, impl in winners.items() if impl != "rowloop"
    )
    if not batched_rows:
        return {}
    return {"boolean_matmul.batch_min_rows": batched_rows[0]}


# ----------------------------------------------------------------------
# khatri_rao
# ----------------------------------------------------------------------
def khatri_rao(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Column-wise Kronecker product ``left ⊙ right`` (Eq. 3).

    For Boolean inputs the result is Boolean.  Column *r* of the result is
    ``left[:, r] ⊗ right[:, r]``; the row indexed by ``(p, q)`` maps to flat
    row ``p * right.n_rows + q``, matching the paper's matricization layout
    where block *p* of the unfolding corresponds to row *p* of the first
    (outer) matrix.  Operates directly on packed words — result row
    ``(p, q)`` is ``left.words[p] & right.words[q]`` — via whichever
    registered implementation the dispatch tier selects.
    """
    if left.n_cols != right.n_cols:
        raise ValueError(
            f"Khatri-Rao needs equal column counts: {left.shape} vs {right.shape}"
        )
    shape = (left.n_rows, right.n_rows, left.n_cols)
    spec = dispatch.get_dispatcher().resolve("khatri_rao", shape, (left, right))
    with kernel_span("khatri_rao", p=left.n_rows, q=right.n_rows,
                     r=left.n_cols, impl=spec.name):
        _record_dispatch("khatri_rao", spec.name)
        return spec.fn(left, right)


def _khatri_rao_rowloop(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Reference loop over ``(p, q)`` row pairs."""
    n_words = left.words.shape[1]
    out_words = np.zeros((left.n_rows * right.n_rows, n_words), dtype=np.uint64)
    for p in range(left.n_rows):
        for q in range(right.n_rows):
            out_words[p * right.n_rows + q] = left.words[p] & right.words[q]
    return BitMatrix(left.n_rows * right.n_rows, left.n_cols, out_words)


def _khatri_rao_broadcast(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Broadcast AND: ``(P, 1, W) & (1, Q, W) -> (P*Q, W)``.

    Padding stays zero because both operands' padding bits are zero.
    """
    words = (left.words[:, None, :] & right.words[None, :, :]).reshape(
        left.n_rows * right.n_rows, left.words.shape[1]
    )
    return BitMatrix(left.n_rows * right.n_rows, left.n_cols, words)


def _khatri_rao_bulk(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Repeat/tile formulation of the same packed AND."""
    repeated = np.repeat(left.words, right.n_rows, axis=0)
    tiled = np.tile(right.words, (left.n_rows, 1))
    return BitMatrix(left.n_rows * right.n_rows, left.n_cols, repeated & tiled)


def _khatri_rao_args(shape, rng):
    p, q, r = shape
    return (BitMatrix.random(p, r, 0.3, rng), BitMatrix.random(q, r, 0.3, rng))


# ----------------------------------------------------------------------
# pointwise_vector_matrix
# ----------------------------------------------------------------------
def pointwise_vector_matrix(vector: np.ndarray, matrix: BitMatrix) -> BitMatrix:
    """Pointwise vector-matrix product ``v ∗ M`` (Eq. 4).

    Column *r* of the result is ``v[r] * M[:, r]`` — i.e. columns of ``M``
    are kept where the vector is 1 and zeroed where it is 0.  Dispatched
    over the registered implementations (packed-mask AND, per-row loop,
    dense roundtrip).
    """
    vector = np.asarray(vector).ravel()
    if vector.shape[0] != matrix.n_cols:
        raise ValueError(
            f"vector length {vector.shape[0]} != matrix columns {matrix.n_cols}"
        )
    shape = (matrix.n_rows, matrix.n_cols)
    spec = dispatch.get_dispatcher().resolve(
        "pointwise_vector_matrix", shape, (vector, matrix)
    )
    with kernel_span("pointwise_vector_matrix", rows=matrix.n_rows,
                     cols=matrix.n_cols, impl=spec.name):
        _record_dispatch("pointwise_vector_matrix", spec.name)
        return spec.fn(vector, matrix)


def _pointwise_mask(vector: np.ndarray, matrix: BitMatrix) -> BitMatrix:
    """One packed AND of every row against the packed vector."""
    mask = packing.pack_bits(vector.astype(bool))
    return BitMatrix(matrix.n_rows, matrix.n_cols, matrix.words & mask)


def _pointwise_rowloop(vector: np.ndarray, matrix: BitMatrix) -> BitMatrix:
    """Reference per-row masked copy."""
    mask = packing.pack_bits(vector.astype(bool))
    out_words = np.zeros_like(matrix.words)
    for i in range(matrix.n_rows):
        out_words[i] = matrix.words[i] & mask
    return BitMatrix(matrix.n_rows, matrix.n_cols, out_words)


def _pointwise_dense(vector: np.ndarray, matrix: BitMatrix) -> BitMatrix:
    """Unpack, zero the masked columns densely, re-pack."""
    dense = matrix.to_dense()
    dense[:, ~vector.astype(bool)] = 0
    return BitMatrix(matrix.n_rows, matrix.n_cols, packing.pack_bits(dense))


def _pointwise_args(shape, rng):
    rows, cols = shape
    vector = (rng.random(cols) < 0.5).astype(np.uint8)
    return (vector, BitMatrix.random(rows, cols, 0.3, rng))


# ----------------------------------------------------------------------
# xor_popcount family
# ----------------------------------------------------------------------
def xor_popcount(a: np.ndarray, b: np.ndarray) -> int:
    """Total ``popcount(a ^ b)`` — Hamming distance of packed word arrays.

    Dispatched over the fused ``bitwise_count`` path, the byte-LUT path,
    and the compiled path when Numba is present.  No ``kernel_span`` is
    opened (this runs inside already-traced worker spans on the hot path);
    the dispatch decision is still counted in ``kernel_dispatch_total``.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    shape = np.broadcast_shapes(a.shape, b.shape)
    spec = dispatch.get_dispatcher().resolve("xor_popcount", shape, (a, b))
    _record_dispatch("xor_popcount", spec.name)
    return spec.fn(a, b)


def xor_popcount_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row ``popcount(a ^ b)`` (sum over the trailing word axis).

    Dispatched like :func:`xor_popcount`; returns int64 sums with the
    operands' broadcast leading shape.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    shape = np.broadcast_shapes(a.shape, b.shape)
    spec = dispatch.get_dispatcher().resolve("xor_popcount_rows", shape, (a, b))
    _record_dispatch("xor_popcount_rows", spec.name)
    return spec.fn(a, b)


def _xor_popcount_twopass(a: np.ndarray, b: np.ndarray) -> int:
    """Reference two-pass form: XOR temporary, then a separate popcount."""
    return int(np.bitwise_count(np.bitwise_xor(a, b)).sum(dtype=np.int64))


def _xor_popcount_rows_twopass(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference two-pass per-row form."""
    return np.bitwise_count(np.bitwise_xor(a, b)).sum(axis=-1, dtype=np.int64)


def _xor_args(shape, rng):
    a = rng.integers(0, 1 << 64, size=shape, dtype=np.uint64)
    b = rng.integers(0, 1 << 64, size=shape, dtype=np.uint64)
    return (a, b)


# ----------------------------------------------------------------------
# or_accumulate_table (not dispatched: its span attrs are golden-pinned)
# ----------------------------------------------------------------------
def or_accumulate_table(columns_packed: np.ndarray, n_columns: int) -> np.ndarray:
    """All ``2**n_columns`` Boolean sums of a set of packed rows.

    ``columns_packed`` has shape ``(n_columns, n_words)``; entry ``mask`` of
    the returned ``(2**n_columns, n_words)`` table is the OR of the rows whose
    bit is set in ``mask``.  Built by doubling — table entry ``m | 2^b`` is
    ``table[m] | columns_packed[b]`` — in ``n_columns`` vectorized steps.
    This is the cache-table construction of Section III-C.
    """
    if n_columns < 0:
        raise ValueError("n_columns must be non-negative")
    if columns_packed.shape[0] < n_columns:
        raise ValueError(
            f"need at least {n_columns} packed rows, got {columns_packed.shape[0]}"
        )
    with kernel_span("or_accumulate_table", n_columns=n_columns,
                     n_entries=1 << n_columns):
        n_words = columns_packed.shape[1]
        table = np.zeros((1 << n_columns, n_words), dtype=np.uint64)
        for bit in range(n_columns):
            half = 1 << bit
            table[half : 2 * half] = table[:half] | columns_packed[bit]
        return table


# ----------------------------------------------------------------------
# Registry population
# ----------------------------------------------------------------------
def _register_kernels() -> None:
    dispatch.register_default_threshold(
        "boolean_matmul.batch_min_rows", _BATCH_MIN_ROWS
    )

    dispatch.register_kernel(
        "boolean_matmul",
        heuristic=_boolean_matmul_heuristic,
        make_args=_boolean_matmul_args,
        autotune_grid=[(8, 16, 64), (16, 32, 128), (32, 32, 128),
                       (64, 32, 256), (256, 64, 1024)],
        threshold_rule=_boolean_matmul_threshold_rule,
    )
    dispatch.register_impl(
        "boolean_matmul", "rowloop", _boolean_matmul_rowloop, reference=True
    )
    dispatch.register_impl(
        "boolean_matmul", "batched", _boolean_matmul_batched,
        needs_little_endian=True,
    )
    dispatch.register_impl("boolean_matmul", "bulk", _boolean_matmul_bulk)

    dispatch.register_kernel(
        "khatri_rao",
        make_args=_khatri_rao_args,
        autotune_grid=[(16, 16, 32), (48, 48, 64)],
    )
    dispatch.register_impl(
        "khatri_rao", "rowloop", _khatri_rao_rowloop, reference=True
    )
    dispatch.register_impl(
        "khatri_rao", "broadcast", _khatri_rao_broadcast, default=True
    )
    dispatch.register_impl("khatri_rao", "bulk", _khatri_rao_bulk)

    dispatch.register_kernel(
        "pointwise_vector_matrix",
        make_args=_pointwise_args,
        autotune_grid=[(256, 64), (4096, 64)],
    )
    dispatch.register_impl(
        "pointwise_vector_matrix", "rowloop", _pointwise_rowloop, reference=True
    )
    dispatch.register_impl(
        "pointwise_vector_matrix", "mask", _pointwise_mask, default=True
    )
    dispatch.register_impl("pointwise_vector_matrix", "dense", _pointwise_dense)

    dispatch.register_kernel(
        "xor_popcount",
        make_args=_xor_args,
        autotune_grid=[(64, 8), (512, 64)],
    )
    dispatch.register_impl(
        "xor_popcount", "twopass", _xor_popcount_twopass, reference=True
    )
    dispatch.register_impl(
        "xor_popcount", "fused", packing.xor_popcount, default=True
    )
    dispatch.register_impl(
        "xor_popcount", "bytelut", packing.xor_popcount_bytelut
    )

    dispatch.register_kernel(
        "xor_popcount_rows",
        make_args=_xor_args,
        autotune_grid=[(64, 8), (512, 64)],
    )
    dispatch.register_impl(
        "xor_popcount_rows", "twopass", _xor_popcount_rows_twopass, reference=True
    )
    dispatch.register_impl(
        "xor_popcount_rows", "fused", packing.xor_popcount_rows, default=True
    )
    dispatch.register_impl(
        "xor_popcount_rows", "bytelut", packing.xor_popcount_rows_bytelut
    )

    if _numba.HAS_NUMBA:  # pragma: no cover - numba absent in CI
        dispatch.register_impl(
            "boolean_matmul", "numba", _boolean_matmul_numba
        )
        dispatch.register_impl(
            "xor_popcount", "numba", _numba.xor_popcount_words
        )
        dispatch.register_impl(
            "xor_popcount_rows", "numba", _numba.xor_popcount_rows_words
        )


_register_kernels()
