"""Boolean linear-algebra operations on :class:`BitMatrix` operands.

These implement the operators of Section II of the paper: the Boolean matrix
product (Eq. 6), the Khatri-Rao product (Eq. 3) under Boolean semantics, and
the pointwise vector-matrix product (Eq. 4).
"""

from __future__ import annotations

import numpy as np

from ..observability.trace import kernel_span
from .bitmatrix import BitMatrix

__all__ = [
    "boolean_matmul",
    "khatri_rao",
    "pointwise_vector_matrix",
    "or_accumulate_table",
]


def boolean_matmul(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Boolean matrix product ``left ∘ right`` (Eq. 6).

    ``(left ∘ right)[i, j] = OR_k left[i, k] AND right[k, j]``.  Implemented
    row-wise: output row *i* is the OR of the rows of ``right`` selected by
    the nonzeros of ``left``'s row *i* (Lemma 1).
    """
    if left.n_cols != right.n_rows:
        raise ValueError(
            f"inner dimensions differ: {left.shape} ∘ {right.shape}"
        )
    with kernel_span("boolean_matmul", m=left.n_rows, k=left.n_cols,
                     n=right.n_cols):
        out_words = np.zeros((left.n_rows, right.words.shape[1]), dtype=np.uint64)
        left_dense = left.to_dense().astype(bool)
        for i in range(left.n_rows):
            selected = np.flatnonzero(left_dense[i])
            if selected.size:
                out_words[i] = np.bitwise_or.reduce(right.words[selected], axis=0)
        return BitMatrix(left.n_rows, right.n_cols, out_words)


def khatri_rao(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Column-wise Kronecker product ``left ⊙ right`` (Eq. 3).

    For Boolean inputs the result is Boolean.  Column *r* of the result is
    ``left[:, r] ⊗ right[:, r]``; the row indexed by ``(p, q)`` maps to flat
    row ``p * right.n_rows + q``, matching the paper's matricization layout
    where block *p* of the unfolding corresponds to row *p* of the first
    (outer) matrix.
    """
    if left.n_cols != right.n_cols:
        raise ValueError(
            f"Khatri-Rao needs equal column counts: {left.shape} vs {right.shape}"
        )
    left_dense = left.to_dense().astype(bool)
    right_dense = right.to_dense().astype(bool)
    # (P, 1, R) & (1, Q, R) -> (P, Q, R) -> (P*Q, R)
    product = (left_dense[:, None, :] & right_dense[None, :, :]).astype(np.uint8)
    flat = product.reshape(left.n_rows * right.n_rows, left.n_cols)
    return BitMatrix.from_dense(flat)


def pointwise_vector_matrix(vector: np.ndarray, matrix: BitMatrix) -> BitMatrix:
    """Pointwise vector-matrix product ``v ∗ M`` (Eq. 4).

    Column *r* of the result is ``v[r] * M[:, r]`` — i.e. columns of ``M``
    are kept where the vector is 1 and zeroed where it is 0.
    """
    vector = np.asarray(vector).ravel()
    if vector.shape[0] != matrix.n_cols:
        raise ValueError(
            f"vector length {vector.shape[0]} != matrix columns {matrix.n_cols}"
        )
    dense = matrix.to_dense() * vector.astype(np.uint8)[None, :]
    return BitMatrix.from_dense(dense)


def or_accumulate_table(columns_packed: np.ndarray, n_columns: int) -> np.ndarray:
    """All ``2**n_columns`` Boolean sums of a set of packed rows.

    ``columns_packed`` has shape ``(n_columns, n_words)``; entry ``mask`` of
    the returned ``(2**n_columns, n_words)`` table is the OR of the rows whose
    bit is set in ``mask``.  Built by doubling — table entry ``m | 2^b`` is
    ``table[m] | columns_packed[b]`` — in ``n_columns`` vectorized steps.
    This is the cache-table construction of Section III-C.
    """
    if n_columns < 0:
        raise ValueError("n_columns must be non-negative")
    if columns_packed.shape[0] < n_columns:
        raise ValueError(
            f"need at least {n_columns} packed rows, got {columns_packed.shape[0]}"
        )
    with kernel_span("or_accumulate_table", n_columns=n_columns,
                     n_entries=1 << n_columns):
        n_words = columns_packed.shape[1]
        table = np.zeros((1 << n_columns, n_words), dtype=np.uint64)
        for bit in range(n_columns):
            half = 1 << bit
            table[half : 2 * half] = table[:half] | columns_packed[bit]
        return table
