"""Boolean linear-algebra operations on :class:`BitMatrix` operands.

These implement the operators of Section II of the paper: the Boolean matrix
product (Eq. 6), the Khatri-Rao product (Eq. 3) under Boolean semantics, and
the pointwise vector-matrix product (Eq. 4).
"""

from __future__ import annotations

import sys

import numpy as np

from ..observability.trace import kernel_span
from . import packing
from .bitmatrix import BitMatrix

__all__ = [
    "boolean_matmul",
    "khatri_rao",
    "pointwise_vector_matrix",
    "or_accumulate_table",
]

#: Below this row count the per-row loop beats amortizing the 256-entry
#: byte tables of the batched kernel.
_BATCH_MIN_ROWS = 32


def boolean_matmul(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Boolean matrix product ``left ∘ right`` (Eq. 6).

    ``(left ∘ right)[i, j] = OR_k left[i, k] AND right[k, j]``.  Output row
    *i* is the OR of the rows of ``right`` selected by the nonzeros of
    ``left``'s row *i* (Lemma 1).  For enough rows this dispatches to a
    batched table-gather: ``left``'s packed rows are viewed as bytes, each
    byte group of 8 inner columns gets its 256 possible row-ORs built once
    by doubling (:func:`or_accumulate_table`), and the output is the OR of
    one gathered table row per group — no per-row Python loop.
    """
    if left.n_cols != right.n_rows:
        raise ValueError(
            f"inner dimensions differ: {left.shape} ∘ {right.shape}"
        )
    # The byte view of uint64 words only lines up with bit positions on
    # little-endian hosts; elsewhere keep the loop.
    batched = sys.byteorder == "little" and left.n_rows >= _BATCH_MIN_ROWS
    with kernel_span("boolean_matmul", m=left.n_rows, k=left.n_cols,
                     n=right.n_cols, impl="batched" if batched else "rowloop"):
        if batched:
            return _boolean_matmul_batched(left, right)
        return _boolean_matmul_rowloop(left, right)


def _boolean_matmul_rowloop(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Reference per-row implementation (and small-matrix fast path)."""
    out_words = np.zeros((left.n_rows, right.words.shape[1]), dtype=np.uint64)
    left_dense = left.to_dense().astype(bool)
    for i in range(left.n_rows):
        selected = np.flatnonzero(left_dense[i])
        if selected.size:
            out_words[i] = np.bitwise_or.reduce(right.words[selected], axis=0)
    return BitMatrix(left.n_rows, right.n_cols, out_words)


def _boolean_matmul_batched(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Byte-group table gather: one 256-entry OR table per 8 inner columns.

    ``left``'s padding bits are zero (BitMatrix invariant), so a partial
    final group indexes only the low ``2**size`` table entries.
    """
    out = np.zeros((left.n_rows, right.words.shape[1]), dtype=np.uint64)
    left_bytes = np.ascontiguousarray(left.words).view(np.uint8)
    n_groups = (left.n_cols + 7) // 8
    for group in range(n_groups):
        size = min(8, left.n_cols - 8 * group)
        table = or_accumulate_table(
            right.words[8 * group : 8 * group + size], size
        )
        out |= table[left_bytes[:, group]]
    return BitMatrix(left.n_rows, right.n_cols, out)


def khatri_rao(left: BitMatrix, right: BitMatrix) -> BitMatrix:
    """Column-wise Kronecker product ``left ⊙ right`` (Eq. 3).

    For Boolean inputs the result is Boolean.  Column *r* of the result is
    ``left[:, r] ⊗ right[:, r]``; the row indexed by ``(p, q)`` maps to flat
    row ``p * right.n_rows + q``, matching the paper's matricization layout
    where block *p* of the unfolding corresponds to row *p* of the first
    (outer) matrix.

    Operates directly on packed words: result row ``(p, q)`` is
    ``left.words[p] & right.words[q]`` over the shared R-bit layout, so no
    dense ``(P*Q, R)`` intermediate is materialized.
    """
    if left.n_cols != right.n_cols:
        raise ValueError(
            f"Khatri-Rao needs equal column counts: {left.shape} vs {right.shape}"
        )
    # (P, 1, W) & (1, Q, W) -> (P, Q, W) -> (P*Q, W); padding stays zero
    # because both operands' padding bits are zero.
    words = (left.words[:, None, :] & right.words[None, :, :]).reshape(
        left.n_rows * right.n_rows, left.words.shape[1]
    )
    return BitMatrix(left.n_rows * right.n_rows, left.n_cols, words)


def pointwise_vector_matrix(vector: np.ndarray, matrix: BitMatrix) -> BitMatrix:
    """Pointwise vector-matrix product ``v ∗ M`` (Eq. 4).

    Column *r* of the result is ``v[r] * M[:, r]`` — i.e. columns of ``M``
    are kept where the vector is 1 and zeroed where it is 0.  One packed
    AND of every row against the packed vector.
    """
    vector = np.asarray(vector).ravel()
    if vector.shape[0] != matrix.n_cols:
        raise ValueError(
            f"vector length {vector.shape[0]} != matrix columns {matrix.n_cols}"
        )
    mask = packing.pack_bits(vector.astype(bool))
    return BitMatrix(matrix.n_rows, matrix.n_cols, matrix.words & mask)


def or_accumulate_table(columns_packed: np.ndarray, n_columns: int) -> np.ndarray:
    """All ``2**n_columns`` Boolean sums of a set of packed rows.

    ``columns_packed`` has shape ``(n_columns, n_words)``; entry ``mask`` of
    the returned ``(2**n_columns, n_words)`` table is the OR of the rows whose
    bit is set in ``mask``.  Built by doubling — table entry ``m | 2^b`` is
    ``table[m] | columns_packed[b]`` — in ``n_columns`` vectorized steps.
    This is the cache-table construction of Section III-C.
    """
    if n_columns < 0:
        raise ValueError("n_columns must be non-negative")
    if columns_packed.shape[0] < n_columns:
        raise ValueError(
            f"need at least {n_columns} packed rows, got {columns_packed.shape[0]}"
        )
    with kernel_span("or_accumulate_table", n_columns=n_columns,
                     n_entries=1 << n_columns):
        n_words = columns_packed.shape[1]
        table = np.zeros((1 << n_columns, n_words), dtype=np.uint64)
        for bit in range(n_columns):
            half = 1 << bit
            table[half : 2 * half] = table[:half] | columns_packed[bit]
        return table
