"""Low-level bit-packing primitives.

All Boolean matrices in this package store their rows packed into ``uint64``
words, least-significant-bit first: bit ``c`` of a row lives in word
``c // 64`` at position ``c % 64``.  Packing is what makes a pure-Python
reproduction of DBTF practical: Boolean row summation becomes a word-wise
``|``, the reconstruction error becomes ``^`` followed by a population count,
and cache keys (Section III-C of the paper) become integer bitmasks.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64
_WORD_DTYPE = np.uint64

__all__ = [
    "WORD_BITS",
    "words_for_bits",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "popcount_rows",
    "xor_popcount",
    "xor_popcount_rows",
    "xor_popcount_bytelut",
    "xor_popcount_rows_bytelut",
    "slice_bits",
    "mask_from_indices",
    "indices_from_mask",
    "packed_zeros",
    "set_bit",
    "get_bit",
    "bit_column",
    "set_bit_column",
]


def words_for_bits(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` bits."""
    if n_bits < 0:
        raise ValueError(f"n_bits must be non-negative, got {n_bits}")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def packed_zeros(shape: tuple[int, ...], n_bits: int) -> np.ndarray:
    """An all-zero packed array whose trailing axis holds ``n_bits`` bits."""
    return np.zeros(shape + (words_for_bits(n_bits),), dtype=_WORD_DTYPE)


def pack_bits(dense: np.ndarray) -> np.ndarray:
    """Pack the trailing axis of a 0/1 array into uint64 words (LSB first).

    ``dense`` may have any leading shape; only the last axis is packed.
    """
    dense = np.asarray(dense)
    if dense.ndim == 0:
        raise ValueError("cannot pack a scalar")
    n_bits = dense.shape[-1]
    # numpy's packbits is big-endian per byte by default; request little so
    # that bit c sits at position c % 8 of byte c // 8.
    as_bytes = np.packbits(dense.astype(bool), axis=-1, bitorder="little")
    n_words = words_for_bits(n_bits)
    padded = np.zeros(dense.shape[:-1] + (n_words * 8,), dtype=np.uint8)
    padded[..., : as_bytes.shape[-1]] = as_bytes
    return padded.view(_WORD_DTYPE).reshape(dense.shape[:-1] + (n_words,))


def unpack_bits(packed: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a uint8 0/1 array."""
    packed = np.ascontiguousarray(packed, dtype=_WORD_DTYPE)
    as_bytes = packed.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., :n_bits]


def popcount(packed: np.ndarray) -> int:
    """Total number of set bits in a packed array."""
    return int(np.bitwise_count(packed).sum())


def popcount_rows(packed: np.ndarray) -> np.ndarray:
    """Per-row popcount: sums set bits over the trailing (word) axis."""
    return np.bitwise_count(packed).sum(axis=-1, dtype=np.int64)


def xor_popcount_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row ``popcount(a ^ b)`` with one temporary instead of two.

    The error kernel's inner loop is XOR-then-popcount; counting bits in
    place into the XOR buffer halves the allocation traffic versus
    ``popcount_rows(a ^ b)`` while returning the identical int64 sums.
    """
    xored = np.bitwise_xor(a, b)
    return np.bitwise_count(xored, out=xored).sum(axis=-1, dtype=np.int64)


def xor_popcount(a: np.ndarray, b: np.ndarray) -> int:
    """Total ``popcount(a ^ b)`` — the Hamming distance of packed arrays."""
    xored = np.bitwise_xor(a, b)
    return int(np.bitwise_count(xored, out=xored).sum(dtype=np.int64))


#: Set-bit count of every byte value; popcount of a word is the sum of its
#: bytes' popcounts regardless of endianness.
_BYTE_POPCOUNT = (
    np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)
    .sum(axis=1)
    .astype(np.int64)
)


def xor_popcount_rows_bytelut(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-row ``popcount(a ^ b)`` via a 256-entry byte lookup table.

    An alternative registered implementation for the dispatch tier: views
    the XOR as bytes and gathers per-byte counts, which on some hosts
    beats the ``bitwise_count`` path for wide rows.  Bit-identical to
    :func:`xor_popcount_rows`.
    """
    xored = np.ascontiguousarray(np.bitwise_xor(a, b))
    counts = _BYTE_POPCOUNT[xored.view(np.uint8)]
    return counts.sum(axis=-1, dtype=np.int64)


def xor_popcount_bytelut(a: np.ndarray, b: np.ndarray) -> int:
    """Total ``popcount(a ^ b)`` via the byte lookup table.

    Bit-identical to :func:`xor_popcount`; registered as an alternative
    implementation for the dispatch tier.
    """
    xored = np.ascontiguousarray(np.bitwise_xor(a, b))
    return int(_BYTE_POPCOUNT[xored.view(np.uint8)].sum(dtype=np.int64))


def slice_bits(packed: np.ndarray, start: int, stop: int) -> np.ndarray:
    """Extract bit columns ``[start, stop)`` from a packed array.

    The result is re-packed so the extracted range starts at bit 0.  Used to
    derive the narrow per-block cache tables of Lemma 3 (block types 1/2/4)
    from a full-width pointwise vector-matrix product table.
    """
    if not 0 <= start <= stop:
        raise ValueError(f"invalid bit range [{start}, {stop})")
    width = stop - start
    if width == 0:
        return np.zeros(packed.shape[:-1] + (0,), dtype=_WORD_DTYPE)
    first_word = start // WORD_BITS
    last_word = (stop - 1) // WORD_BITS
    window = np.ascontiguousarray(packed[..., first_word : last_word + 1])
    shift = start % WORD_BITS
    if shift:
        shifted = window >> _WORD_DTYPE(shift)
        carry = window[..., 1:] << _WORD_DTYPE(WORD_BITS - shift)
        shifted[..., :-1] |= carry
        window = shifted
    n_words = words_for_bits(width)
    window = window[..., :n_words].copy()
    tail = width % WORD_BITS
    if tail:
        window[..., -1] &= _WORD_DTYPE((1 << tail) - 1)
    return window


def mask_from_indices(indices: np.ndarray | list[int]) -> int:
    """Build an integer bitmask with the given bit positions set.

    Vectorized: the positions are scattered into a byte array and packed,
    so the cost is one numpy pass instead of a Python loop per index.
    """
    arr = np.asarray(indices, dtype=np.int64).ravel()
    if arr.size == 0:
        return 0
    if arr.min() < 0:
        raise ValueError("bit positions must be non-negative")
    bits = np.zeros(int(arr.max()) + 1, dtype=np.uint8)
    bits[arr] = 1
    raw = np.packbits(bits, bitorder="little").tobytes()
    return int.from_bytes(raw, "little")


def indices_from_mask(mask: int) -> list[int]:
    """The set bit positions of an integer bitmask, ascending.

    Vectorized via the mask's little-endian byte representation, matching
    the loop form ``[p for p in count() if mask >> p & 1]``.
    """
    if mask < 0:
        raise ValueError("mask must be non-negative")
    if mask == 0:
        return []
    raw = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return [int(position) for position in np.flatnonzero(bits)]


def set_bit(packed: np.ndarray, row: int, bit: int, value: int) -> None:
    """Set or clear one bit of one packed row in place."""
    word, offset = divmod(bit, WORD_BITS)
    if value:
        packed[row, word] |= _WORD_DTYPE(1 << offset)
    else:
        packed[row, word] &= _WORD_DTYPE(~(1 << offset) & (2**WORD_BITS - 1))


def get_bit(packed: np.ndarray, row: int, bit: int) -> int:
    """Read one bit of one packed row."""
    word, offset = divmod(bit, WORD_BITS)
    return int((packed[row, word] >> _WORD_DTYPE(offset)) & _WORD_DTYPE(1))


def bit_column(packed: np.ndarray, bit: int) -> np.ndarray:
    """Bit ``bit`` of every packed row, as a uint8 0/1 vector."""
    word, offset = divmod(bit, WORD_BITS)
    return (
        (packed[:, word] >> _WORD_DTYPE(offset)) & _WORD_DTYPE(1)
    ).astype(np.uint8)


def set_bit_column(packed: np.ndarray, bit: int, values: np.ndarray) -> None:
    """Write a 0/1 vector into bit ``bit`` of every packed row, in place."""
    word, offset = divmod(bit, WORD_BITS)
    select = _WORD_DTYPE(1 << offset)
    column = packed[:, word]
    np.bitwise_and(column, ~select, out=column)
    np.bitwise_or(
        column,
        values.astype(_WORD_DTYPE) << _WORD_DTYPE(offset),
        out=column,
    )
