"""Bit-packed Boolean linear algebra (the reproduction's low-level kernel).

Public kernels (:func:`boolean_matmul`, :func:`khatri_rao`,
:func:`pointwise_vector_matrix`, :func:`xor_popcount`,
:func:`xor_popcount_rows`) route through the kernel-dispatch tier in
:mod:`repro.bitops.dispatch`, which picks a registered implementation per
call shape (heuristic, autotuned, or forced — see ``configure_kernels``).
"""

from ._numba import HAS_NUMBA
from .bitmatrix import BitMatrix
from .dispatch import (
    KernelDispatcher,
    configure as configure_kernels,
    get_dispatcher,
    reset_dispatcher,
)
from .ops import (
    boolean_matmul,
    khatri_rao,
    or_accumulate_table,
    pointwise_vector_matrix,
    xor_popcount,
    xor_popcount_rows,
)
from .packing import (
    WORD_BITS,
    indices_from_mask,
    mask_from_indices,
    pack_bits,
    packed_zeros,
    popcount,
    popcount_rows,
    slice_bits,
    unpack_bits,
    words_for_bits,
)

__all__ = [
    "BitMatrix",
    "WORD_BITS",
    "HAS_NUMBA",
    "KernelDispatcher",
    "boolean_matmul",
    "khatri_rao",
    "or_accumulate_table",
    "pointwise_vector_matrix",
    "xor_popcount",
    "xor_popcount_rows",
    "configure_kernels",
    "get_dispatcher",
    "reset_dispatcher",
    "pack_bits",
    "unpack_bits",
    "packed_zeros",
    "popcount",
    "popcount_rows",
    "slice_bits",
    "words_for_bits",
    "mask_from_indices",
    "indices_from_mask",
]
