"""Bit-packed Boolean linear algebra (the reproduction's low-level kernel)."""

from .bitmatrix import BitMatrix
from .ops import boolean_matmul, khatri_rao, or_accumulate_table, pointwise_vector_matrix
from .packing import (
    WORD_BITS,
    indices_from_mask,
    mask_from_indices,
    pack_bits,
    packed_zeros,
    popcount,
    popcount_rows,
    slice_bits,
    unpack_bits,
    words_for_bits,
)

__all__ = [
    "BitMatrix",
    "WORD_BITS",
    "boolean_matmul",
    "khatri_rao",
    "or_accumulate_table",
    "pointwise_vector_matrix",
    "pack_bits",
    "unpack_bits",
    "packed_zeros",
    "popcount",
    "popcount_rows",
    "slice_bits",
    "words_for_bits",
    "mask_from_indices",
    "indices_from_mask",
]
