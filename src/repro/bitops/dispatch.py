"""Kernel-dispatch tier: registry, shape-classes, autotuner, persistent cache.

Every Boolean kernel in :mod:`repro.bitops` (the Boolean matrix product,
the Khatri-Rao product, the pointwise vector-matrix product, and the
``xor_popcount`` family) has *several* registered implementations — the
per-row reference loop, the vectorized path that previously was the only
alternative, a numpy-bulk path, and (when the host has Numba) a compiled
path.  This module decides, per call shape, which one runs:

* **Registry.**  :func:`register_kernel` / :func:`register_impl` record
  each implementation with its eligibility constraints (e.g. the byte-view
  table gather needs a little-endian host).  The registry is what the
  differential correctness harness (``tests/test_bitops_differential.py``)
  iterates over, so every implementation pair is pinned bit-identical —
  dispatch can change *speed*, never *results*.

* **Tiers.**  The dispatcher runs in one of three modes, selected via
  :func:`configure`, ``ClusterConfig(kernel_tier=...)``, the CLI
  ``--kernel-tier`` flag, or the ``REPRO_KERNEL_TIER`` environment
  variable:

  - ``"fixed"`` (default): per-kernel heuristics with *configurable*
    thresholds — the autotune cache's ``thresholds`` section replaces the
    previously hard-coded ``_BATCH_MIN_ROWS`` constant (which survives
    only as the default when no cache is present);
  - ``"auto"``: per-(kernel, shape-class) winners measured once per
    machine and persisted to the cache; an unseen shape-class is measured
    on first call (every eligible implementation is timed on the live
    operands) and the winner is recorded;
  - ``"reference"``: always the reference (loop-form) implementation;
  - any registered implementation name (``"rowloop"``, ``"batched"``,
    ``"bulk"``, ``"numba"``, ...): force that implementation where the
    kernel registers it (and it is eligible), heuristics elsewhere.

* **Shape classes.**  Calls are bucketed by the bit length of each
  dimension (``0, 1, 2, 3-4, 5-8, ...``), so one measurement covers a
  whole band of nearby shapes and the cache stays small.

* **Persistent cache.**  :class:`AutotuneCache` stores winners and derived
  thresholds as JSON under a configurable path (``REPRO_AUTOTUNE_CACHE``
  or :func:`configure`).  Writes reuse the atomic temp-file +
  ``os.replace`` pattern of :mod:`repro.resilience.checkpoint`, so
  concurrent writers can race but never torn-write.  A missing, corrupt,
  stale-version, or other-machine cache silently falls back to defaults —
  the cache is an accelerator, never a correctness dependency.

Dispatch decisions are observable: the kernel wrappers in
:mod:`repro.bitops.ops` attach the winning implementation as the
``impl=`` attribute of their ``kernel_span`` and increment the
``kernel_dispatch_total{kernel, impl, tier}`` counter inside traced tasks.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

import numpy as np

__all__ = [
    "TIER_FIXED",
    "TIER_AUTO",
    "TIER_REFERENCE",
    "TIERS",
    "ENV_TIER",
    "ENV_CACHE",
    "ImplSpec",
    "Kernel",
    "AutotuneCache",
    "KernelDispatcher",
    "machine_fingerprint",
    "shape_class",
    "register_kernel",
    "register_impl",
    "register_default_threshold",
    "kernel",
    "kernel_names",
    "get_dispatcher",
    "configure",
    "reset_dispatcher",
]

TIER_FIXED = "fixed"
TIER_AUTO = "auto"
TIER_REFERENCE = "reference"
TIERS = (TIER_FIXED, TIER_AUTO, TIER_REFERENCE)

ENV_TIER = "REPRO_KERNEL_TIER"
ENV_CACHE = "REPRO_AUTOTUNE_CACHE"

#: Default file name when the configured cache path is a directory.
CACHE_FILENAME = "kernels.json"

_AUTOTUNE_REPEATS = 3


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ImplSpec:
    """One registered implementation of one kernel."""

    kernel: str
    name: str
    fn: Callable
    #: The byte-view implementations only line bits up on little-endian
    #: hosts; eligibility is re-checked at every resolve so tests can
    #: monkeypatch ``sys.byteorder``.
    needs_little_endian: bool = False
    #: The loop-form reference the differential harness pins everything
    #: against; also the fallback when nothing else is eligible.
    reference: bool = False

    def eligible(self) -> bool:
        """Whether this implementation may run on this host right now."""
        return not (self.needs_little_endian and sys.byteorder != "little")


class Kernel:
    """A dispatchable kernel: named implementations plus dispatch policy."""

    def __init__(
        self,
        name: str,
        heuristic: "Callable[[tuple, Mapping[str, int]], str] | None" = None,
        make_args: "Callable[[tuple, np.random.Generator], tuple] | None" = None,
        autotune_grid: Iterable[tuple] = (),
        threshold_rule: "Callable[[dict], dict] | None" = None,
    ):
        self.name = name
        #: ``heuristic(shape, thresholds) -> impl name`` for the fixed
        #: tier; ``None`` means "always the default implementation".
        self.heuristic = heuristic
        #: Builds representative operands for one grid shape (autotuning).
        self.make_args = make_args
        self.autotune_grid = tuple(autotune_grid)
        #: Derives fixed-tier thresholds from ``{shape: winner}`` results.
        self.threshold_rule = threshold_rule
        self.impls: dict[str, ImplSpec] = {}
        self.reference_name: str | None = None
        self.default_name: str | None = None

    @property
    def reference(self) -> ImplSpec:
        if self.reference_name is None:
            raise LookupError(f"kernel {self.name!r} has no reference impl")
        return self.impls[self.reference_name]

    def eligible_impls(self) -> list[ImplSpec]:
        """Implementations allowed on this host, registration order."""
        return [spec for spec in self.impls.values() if spec.eligible()]


_REGISTRY: dict[str, Kernel] = {}
_DEFAULT_THRESHOLDS: dict[str, int] = {}
_LOCK = threading.RLock()


def register_kernel(
    name: str,
    heuristic: "Callable[[tuple, Mapping[str, int]], str] | None" = None,
    make_args: "Callable[[tuple, np.random.Generator], tuple] | None" = None,
    autotune_grid: Iterable[tuple] = (),
    threshold_rule: "Callable[[dict], dict] | None" = None,
) -> Kernel:
    """Create (or re-create) a kernel entry in the global registry."""
    entry = Kernel(name, heuristic, make_args, autotune_grid, threshold_rule)
    with _LOCK:
        _REGISTRY[name] = entry
    return entry


def register_impl(
    kernel_name: str,
    impl_name: str,
    fn: Callable,
    *,
    needs_little_endian: bool = False,
    reference: bool = False,
    default: bool = False,
) -> ImplSpec:
    """Attach one implementation to a registered kernel."""
    spec = ImplSpec(kernel_name, impl_name, fn, needs_little_endian, reference)
    with _LOCK:
        entry = _REGISTRY[kernel_name]
        entry.impls[impl_name] = spec
        if reference:
            entry.reference_name = impl_name
        if default:
            entry.default_name = impl_name
    return spec


def register_default_threshold(name: str, value: int) -> None:
    """Record a fixed-tier threshold default (cache values override it)."""
    with _LOCK:
        _DEFAULT_THRESHOLDS[name] = int(value)


def kernel(name: str) -> Kernel:
    """Look up one registered kernel (raises ``KeyError`` when unknown)."""
    return _REGISTRY[name]


def kernel_names() -> list[str]:
    """All registered kernel names, registration order."""
    return list(_REGISTRY)


def _impl_names() -> set[str]:
    names: set[str] = set()
    for entry in _REGISTRY.values():
        names.update(entry.impls)
    return names


# ----------------------------------------------------------------------
# Shape classes & machine identity
# ----------------------------------------------------------------------
def shape_class(shape: Iterable[int]) -> str:
    """Bucket a call shape by per-dimension bit length (``33 -> 6``).

    Nearby shapes share a class, so one autotune measurement covers the
    band ``(2**(b-1), 2**b]`` of each dimension.
    """
    return ":".join(str(int(dim).bit_length()) for dim in shape)


def machine_fingerprint() -> str:
    """Identity of the measuring host; cached winners never cross hosts.

    Deliberately coarse (architecture + interpreter + numpy + CPU count):
    enough that a cache file copied to different hardware is ignored
    rather than trusted.
    """
    import platform

    return "|".join(
        (
            platform.machine() or "unknown",
            platform.python_implementation(),
            ".".join(platform.python_version_tuple()[:2]),
            np.__version__,
            str(os.cpu_count() or 0),
        )
    )


# ----------------------------------------------------------------------
# Persistent autotune cache
# ----------------------------------------------------------------------
class AutotuneCache:
    """Atomic JSON persistence for autotune winners and thresholds.

    File schema (``version`` 1)::

        {"version": 1, "machine": "<fingerprint>",
         "entries": {"<kernel>/<shape-class>": {"impl": str,
                                                "timings": {name: sec}}},
         "thresholds": {"<kernel>.<knob>": int}}

    Loading never raises: a missing, unparsable, stale-version, or
    other-machine file yields an empty cache (defaults win).  Saving
    re-reads the file and merges before the atomic replace, so concurrent
    writers lose at most their race, never the file's integrity.
    """

    VERSION = 1

    def __init__(self, path: "str | os.PathLike"):
        raw = str(path)
        if raw.endswith(".json"):
            self.path = raw
        else:
            self.path = os.path.join(raw, CACHE_FILENAME)
        self._lock = threading.Lock()
        self.entries: dict[str, dict[str, Any]] = {}
        self.thresholds: dict[str, int] = {}
        self._load_into_self()

    # -- reading -------------------------------------------------------
    def _read_document(self) -> dict[str, Any]:
        """Best-effort read of the on-disk document; empty on any defect."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return {}
        if not isinstance(document, dict):
            return {}
        if document.get("version") != self.VERSION:
            return {}
        if document.get("machine") != machine_fingerprint():
            return {}
        entries = document.get("entries")
        thresholds = document.get("thresholds")
        return {
            "entries": entries if isinstance(entries, dict) else {},
            "thresholds": thresholds if isinstance(thresholds, dict) else {},
        }

    def _load_into_self(self) -> None:
        document = self._read_document()
        self.entries = dict(document.get("entries", {}))
        self.thresholds = {
            key: int(value)
            for key, value in document.get("thresholds", {}).items()
            if isinstance(value, (int, float))
        }

    def winner(self, key: str) -> "str | None":
        """The cached winning implementation for one dispatch key."""
        entry = self.entries.get(key)
        if isinstance(entry, dict):
            impl = entry.get("impl")
            if isinstance(impl, str):
                return impl
        return None

    # -- writing -------------------------------------------------------
    def record(self, key: str, impl: str, timings: Mapping[str, float]) -> None:
        with self._lock:
            self.entries[key] = {
                "impl": impl,
                "timings": {name: float(sec) for name, sec in timings.items()},
            }

    def update_thresholds(self, thresholds: Mapping[str, int]) -> None:
        with self._lock:
            for name, value in thresholds.items():
                self.thresholds[name] = int(value)

    def save(self) -> str:
        """Merge with the on-disk state and atomically replace the file."""
        with self._lock:
            on_disk = self._read_document()
            entries = dict(on_disk.get("entries", {}))
            entries.update(self.entries)
            thresholds = dict(on_disk.get("thresholds", {}))
            thresholds.update(self.thresholds)
            document = {
                "version": self.VERSION,
                "machine": machine_fingerprint(),
                "entries": entries,
                "thresholds": thresholds,
            }
            directory = os.path.dirname(self.path) or "."
            os.makedirs(directory, exist_ok=True)
            # Atomic temp + rename (the checkpoint.py pattern): a crash or
            # a concurrent writer can never leave a half-written cache.
            fd, temp_path = tempfile.mkstemp(
                dir=directory, prefix=".autotune-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, indent=1, sort_keys=True)
                    handle.write("\n")
                os.replace(temp_path, self.path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        return self.path


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
class KernelDispatcher:
    """Resolves ``(kernel, call shape) -> implementation`` under one tier."""

    def __init__(
        self,
        tier: str = TIER_FIXED,
        cache_path: "str | os.PathLike | None" = None,
        autotune_repeats: int = _AUTOTUNE_REPEATS,
    ):
        if tier not in TIERS and tier not in _impl_names():
            raise ValueError(
                f"unknown kernel tier {tier!r}; expected one of {TIERS} "
                f"or an implementation name {sorted(_impl_names())}"
            )
        if autotune_repeats < 1:
            raise ValueError(f"autotune_repeats must be >= 1, got {autotune_repeats}")
        self.tier = tier
        self.autotune_repeats = autotune_repeats
        self.cache = AutotuneCache(cache_path) if cache_path is not None else None
        self._lock = threading.RLock()

    # -- thresholds ----------------------------------------------------
    def thresholds(self) -> dict[str, int]:
        """Fixed-tier thresholds: registered defaults overlaid by cache."""
        merged = dict(_DEFAULT_THRESHOLDS)
        if self.cache is not None:
            merged.update(self.cache.thresholds)
        return merged

    # -- resolution ----------------------------------------------------
    def resolve(
        self, kernel_name: str, shape: tuple, args: "tuple | None" = None
    ) -> ImplSpec:
        """The implementation to run for one call.

        ``shape`` is the kernel's dispatch shape (a tuple of ints);
        ``args`` are the live operands, used only by the auto tier to
        measure an unseen shape-class.
        """
        entry = _REGISTRY[kernel_name]
        tier = self.tier
        if tier not in TIERS:
            forced = entry.impls.get(tier)
            if forced is not None and forced.eligible():
                return forced
            tier = TIER_FIXED
        if tier == TIER_REFERENCE:
            return entry.reference
        if tier == TIER_AUTO:
            key = f"{kernel_name}/{shape_class(shape)}"
            winner = self.cache.winner(key) if self.cache is not None else None
            if winner is not None:
                spec = entry.impls.get(winner)
                if spec is not None and spec.eligible():
                    return spec
            if args is not None:
                return self._autotune_call(entry, key, args)
        return self._fixed(entry, shape)

    def choose(self, kernel_name: str, shape: tuple) -> str:
        """Implementation *name* for a shape (no measuring, no running)."""
        return self.resolve(kernel_name, shape).name

    def _fixed(self, entry: Kernel, shape: tuple) -> ImplSpec:
        name = None
        if entry.heuristic is not None:
            name = entry.heuristic(tuple(shape), self.thresholds())
        elif entry.default_name is not None:
            name = entry.default_name
        spec = entry.impls.get(name) if name is not None else None
        if spec is None or not spec.eligible():
            return entry.reference
        return spec

    # -- measurement ---------------------------------------------------
    def _measure(
        self, entry: Kernel, args: tuple, repeats: "int | None" = None
    ) -> tuple[ImplSpec, dict[str, float]]:
        """Time every eligible implementation on ``args``; pick the best.

        Ties break on implementation name so the winner is deterministic
        even when two paths measure identically.
        """
        repeats = repeats if repeats is not None else self.autotune_repeats
        timings: dict[str, float] = {}
        for spec in entry.eligible_impls():
            best = float("inf")
            for _ in range(repeats):
                started = time.perf_counter()
                spec.fn(*args)
                best = min(best, time.perf_counter() - started)
            timings[spec.name] = best
        if not timings:
            return entry.reference, {}
        winner = min(timings, key=lambda name: (timings[name], name))
        return entry.impls[winner], timings

    def _autotune_call(self, entry: Kernel, key: str, args: tuple) -> ImplSpec:
        with self._lock:
            # Another thread may have measured this class while we waited.
            if self.cache is not None:
                cached = self.cache.winner(key)
                if cached is not None:
                    spec = entry.impls.get(cached)
                    if spec is not None and spec.eligible():
                        return spec
            spec, timings = self._measure(entry, args)
            if self.cache is not None and timings:
                self.cache.record(key, spec.name, timings)
                self.cache.save()
            return spec

    def autotune(
        self,
        grid: "Mapping[str, Iterable[tuple]] | None" = None,
        repeats: "int | None" = None,
        seed: int = 0,
    ) -> dict[str, dict[tuple, str]]:
        """Measure every kernel over a shape grid and persist the winners.

        ``grid`` maps kernel names to shape tuples; kernels absent from it
        fall back to their registered ``autotune_grid``.  Kernels with a
        :attr:`Kernel.threshold_rule` also contribute derived fixed-tier
        thresholds (this is what retires the hard-coded batch-size
        constants).  Returns ``{kernel: {shape: winner}}``.
        """
        results: dict[str, dict[tuple, str]] = {}
        for entry in _REGISTRY.values():
            shapes = None
            if grid is not None and entry.name in grid:
                shapes = tuple(grid[entry.name])
            elif entry.autotune_grid:
                shapes = entry.autotune_grid
            if not shapes or entry.make_args is None:
                continue
            winners: dict[tuple, str] = {}
            for shape in shapes:
                rng = np.random.default_rng(seed)
                args = entry.make_args(tuple(shape), rng)
                spec, timings = self._measure(entry, args, repeats)
                if self.cache is not None and timings:
                    self.cache.record(
                        f"{entry.name}/{shape_class(shape)}", spec.name, timings
                    )
                winners[tuple(shape)] = spec.name
            if entry.threshold_rule is not None and self.cache is not None:
                self.cache.update_thresholds(entry.threshold_rule(winners))
            results[entry.name] = winners
        if self.cache is not None:
            self.cache.save()
        return results


# ----------------------------------------------------------------------
# Process-global dispatcher
# ----------------------------------------------------------------------
_DISPATCHER: "KernelDispatcher | None" = None


def get_dispatcher() -> KernelDispatcher:
    """The process-wide dispatcher, built from the environment on demand.

    ``REPRO_KERNEL_TIER`` selects the tier and ``REPRO_AUTOTUNE_CACHE``
    the cache path, so spawned worker processes reconstruct the driver's
    dispatch configuration without any explicit hand-off.
    """
    global _DISPATCHER
    if _DISPATCHER is None:
        with _LOCK:
            if _DISPATCHER is None:
                _DISPATCHER = KernelDispatcher(
                    tier=os.environ.get(ENV_TIER, TIER_FIXED),
                    cache_path=os.environ.get(ENV_CACHE) or None,
                )
    return _DISPATCHER


def configure(
    tier: "str | None" = None,
    cache_path: "str | os.PathLike | None" = None,
    autotune_repeats: "int | None" = None,
) -> KernelDispatcher:
    """(Re)build the process-wide dispatcher and export it to workers.

    ``None`` keeps the current (or environment-provided) value for that
    setting.  The chosen tier and cache path are also written to the
    process environment so process-pool workers — forked or spawned —
    dispatch identically to the driver.
    """
    global _DISPATCHER
    with _LOCK:
        current = _DISPATCHER
        resolved_tier = (
            tier
            if tier is not None
            else (current.tier if current else os.environ.get(ENV_TIER, TIER_FIXED))
        )
        resolved_cache = (
            str(cache_path)
            if cache_path is not None
            else (
                current.cache.path
                if current is not None and current.cache is not None
                else os.environ.get(ENV_CACHE) or None
            )
        )
        resolved_repeats = (
            autotune_repeats
            if autotune_repeats is not None
            else (current.autotune_repeats if current else _AUTOTUNE_REPEATS)
        )
        dispatcher = KernelDispatcher(
            tier=resolved_tier,
            cache_path=resolved_cache,
            autotune_repeats=resolved_repeats,
        )
        os.environ[ENV_TIER] = resolved_tier
        if resolved_cache is not None:
            os.environ[ENV_CACHE] = str(dispatcher.cache.path)
        else:
            os.environ.pop(ENV_CACHE, None)
        _DISPATCHER = dispatcher
    return dispatcher


def reset_dispatcher(clear_env: bool = False) -> None:
    """Drop the process-wide dispatcher (tests); optionally scrub the env."""
    global _DISPATCHER
    with _LOCK:
        _DISPATCHER = None
        if clear_env:
            os.environ.pop(ENV_TIER, None)
            os.environ.pop(ENV_CACHE, None)
