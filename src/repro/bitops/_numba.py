"""Optional Numba-compiled kernels for the hottest packed-bit loops.

Import-guarded: when Numba is absent (`HAS_NUMBA` is False) nothing in
here is compiled and the pure-python/numpy tier in :mod:`repro.bitops.ops`
is the only one registered — the system never *requires* a compiler.
When Numba is present, :mod:`repro.bitops.ops` registers the adapters
below as the ``"numba"`` implementation of ``boolean_matmul`` and the
``xor_popcount`` family, where they compete in autotuning like any other
implementation and are pinned bit-identical by the differential harness
(``tests/test_bitops_differential.py``, skip-if-unavailable).

Compilation happens lazily on first call (standard ``@njit`` behavior),
so importing this module stays cheap even with Numba installed.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    HAS_NUMBA = True
except Exception:  # pragma: no cover - the default path in CI
    HAS_NUMBA = False

__all__ = [
    "HAS_NUMBA",
    "boolean_matmul_words",
    "xor_popcount_words",
    "xor_popcount_rows_words",
]


if HAS_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @njit(cache=True, nogil=True)
    def _matmul_or_kernel(left_words, right_words, out):
        n_rows, n_left_words = left_words.shape
        n_out_words = out.shape[1]
        for row in range(n_rows):
            for word_index in range(n_left_words):
                word = left_words[row, word_index]
                base = word_index * 64
                bit = 0
                while word != np.uint64(0):
                    if word & np.uint64(1):
                        shared = base + bit
                        for out_word in range(n_out_words):
                            out[row, out_word] |= right_words[shared, out_word]
                    word >>= np.uint64(1)
                    bit += 1

    @njit(cache=True, nogil=True)
    def _xor_popcount_flat(a, b, sums):
        # SWAR popcount per 64-bit word; wrap-around multiply is intended.
        m1 = np.uint64(0x5555555555555555)
        m2 = np.uint64(0x3333333333333333)
        m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
        h01 = np.uint64(0x0101010101010101)
        n_rows, n_words = a.shape
        for row in range(n_rows):
            total = np.int64(0)
            for word_index in range(n_words):
                x = a[row, word_index] ^ b[row, word_index]
                x = x - ((x >> np.uint64(1)) & m1)
                x = (x & m2) + ((x >> np.uint64(2)) & m2)
                x = (x + (x >> np.uint64(4))) & m4
                total += np.int64((x * h01) >> np.uint64(56))
            sums[row] = total

    def _as_flat_pair(a, b):
        """Broadcast, then flatten all leading axes into rows."""
        shape = np.broadcast_shapes(a.shape, b.shape)
        n_words = shape[-1] if shape else 0
        flat_a = np.ascontiguousarray(np.broadcast_to(a, shape)).reshape(-1, n_words)
        flat_b = np.ascontiguousarray(np.broadcast_to(b, shape)).reshape(-1, n_words)
        return shape, flat_a, flat_b

    def boolean_matmul_words(left_words, right_words, n_out_words):
        """Compiled OR-accumulate product over packed word arrays."""
        out = np.zeros((left_words.shape[0], n_out_words), dtype=np.uint64)
        if left_words.size and right_words.size and n_out_words:
            _matmul_or_kernel(
                np.ascontiguousarray(left_words),
                np.ascontiguousarray(right_words),
                out,
            )
        return out

    def xor_popcount_rows_words(a, b):
        """Compiled per-row Hamming distance (sum over the last axis)."""
        shape, flat_a, flat_b = _as_flat_pair(a, b)
        sums = np.zeros(flat_a.shape[0], dtype=np.int64)
        if flat_a.size:
            _xor_popcount_flat(flat_a, flat_b, sums)
        return sums.reshape(shape[:-1])

    def xor_popcount_words(a, b):
        """Compiled total Hamming distance between packed arrays."""
        return int(xor_popcount_rows_words(a, b).sum())

else:

    def boolean_matmul_words(left_words, right_words, n_out_words):
        """Unavailable without Numba; never registered in this case."""
        raise RuntimeError("numba is not available")

    def xor_popcount_rows_words(a, b):
        """Unavailable without Numba; never registered in this case."""
        raise RuntimeError("numba is not available")

    def xor_popcount_words(a, b):
        """Unavailable without Numba; never registered in this case."""
        raise RuntimeError("numba is not available")
