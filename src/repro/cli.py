"""Command-line interface.

Four subcommands cover the library's day-to-day uses:

* ``generate`` — write a synthetic tensor (uniform random, planted-factor,
  or a Table III dataset stand-in) to a coordinate text file;
* ``info`` — print a tensor file's shape, nonzero count, and density;
* ``factorize`` — run DBTF / BCP_ALS / Walk'n'Merge / Boolean Tucker on a
  tensor file, print the summary, and optionally save the factors;
* ``jobs`` — the multi-tenant service over a file spool: ``submit`` jobs
  without a server, ``serve`` them under fair sharing with per-job
  checkpoints (killing ``serve`` loses nothing), ``status``/``cancel``/
  ``result`` at any time;
* ``experiment`` — regenerate one of the paper's tables or figures.

Examples::

    python -m repro generate --kind planted --shape 64 64 64 --rank 8 \
        --out tensor.tns
    python -m repro factorize tensor.tns --method dbtf --rank 8 \
        --factors-out factors/
    python -m repro experiment fig1a
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Boolean tensor factorization (DBTF reproduction, ICDE 2017)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="write a synthetic Boolean tensor to a file"
    )
    generate.add_argument(
        "--kind", choices=["random", "planted", "dataset"], default="random"
    )
    generate.add_argument(
        "--shape", type=int, nargs=3, default=[64, 64, 64], metavar=("I", "J", "K")
    )
    generate.add_argument("--density", type=float, default=0.01,
                          help="density for --kind random")
    generate.add_argument("--rank", type=int, default=10,
                          help="planted rank for --kind planted")
    generate.add_argument("--factor-density", type=float, default=0.1)
    generate.add_argument("--additive-noise", type=float, default=0.0)
    generate.add_argument("--destructive-noise", type=float, default=0.0)
    generate.add_argument("--dataset", default="facebook",
                          help="Table III stand-in name for --kind dataset")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output .tns path")

    info = subparsers.add_parser("info", help="print tensor statistics")
    info.add_argument("tensor", help="input .tns path")

    factorize = subparsers.add_parser(
        "factorize", help="factorize a Boolean tensor file"
    )
    factorize.add_argument("tensor", help="input .tns path")
    factorize.add_argument(
        "--method",
        choices=["dbtf", "bcp-als", "walk-n-merge", "tucker", "nway-cp"],
        default="dbtf",
    )
    factorize.add_argument("--rank", type=int, default=10)
    factorize.add_argument("--core-shape", type=int, nargs=3, default=None,
                           metavar=("R1", "R2", "R3"),
                           help="core sizes for --method tucker (default rank^3)")
    factorize.add_argument("--max-iterations", type=int, default=10)
    factorize.add_argument("--initial-sets", type=int, default=1,
                           help="DBTF's L parameter")
    factorize.add_argument("--partitions", type=int, default=None,
                           help="DBTF's N parameter")
    factorize.add_argument("--density-threshold", type=float, default=0.9,
                           help="Walk'n'Merge's t parameter")
    factorize.add_argument("--backend", choices=["serial", "thread", "process"],
                           default="serial",
                           help="host-side stage executor for dbtf/nway-cp "
                                "(results are identical; a parallel backend "
                                "uses more cores)")
    factorize.add_argument("--workers", type=int, default=None,
                           help="worker-pool size for --backend thread/process "
                                "(default: all cores)")
    factorize.add_argument("--eager", action="store_true",
                           help="disable stage fusion (legacy stage-per-"
                                "transformation dispatch; dbtf only, "
                                "results are identical)")
    factorize.add_argument("--driver-shuffle", action="store_true",
                           help="route combine_by_key shuffles through the "
                                "legacy driver-side per-pair loop instead "
                                "of the worker-side bucketed plane (dbtf "
                                "only, results are identical)")
    factorize.add_argument("--kernel-tier", default=None, metavar="TIER",
                           help="kernel-dispatch tier: fixed (heuristics, "
                                "the default), auto (autotune + cache), "
                                "reference, or a registered implementation "
                                "name to force it")
    factorize.add_argument("--autotune-cache", default=None, metavar="PATH",
                           help="autotune cache file (or directory) for "
                                "--kernel-tier auto and threshold overrides")
    factorize.add_argument("--seed", type=int, default=0)
    factorize.add_argument("--factors-out", default=None,
                           help="directory for A.mtx/B.mtx/C.mtx")
    factorize.add_argument("--trace", default=None, metavar="PATH",
                           help="write a structured span trace of the run "
                                "(dbtf/nway-cp only)")
    factorize.add_argument("--trace-format", choices=["jsonl", "chrome"],
                           default="jsonl",
                           help="trace file format: one JSON object per "
                                "span, or the Chrome trace-event format "
                                "for chrome://tracing / Perfetto")
    factorize.add_argument("--metrics", action="store_true",
                           help="print the stage/transfer/metrics summary "
                                "after the run (dbtf/nway-cp only)")
    factorize.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                           help="snapshot the decomposition state into DIR "
                                "at iteration boundaries "
                                "(dbtf/tucker/nway-cp only)")
    factorize.add_argument("--checkpoint-every", type=int, default=1,
                           metavar="K",
                           help="snapshot every K iterations (default 1)")
    factorize.add_argument("--checkpoint-keep-last", type=int, default=2,
                           metavar="N",
                           help="newest snapshots retained per run "
                                "(default 2)")
    factorize.add_argument("--resume", action="store_true",
                           help="resume from the newest intact snapshot in "
                                "--checkpoint-dir before iterating")
    factorize.add_argument("--memory-budget", default=None, metavar="SIZE",
                           help="byte ceiling for driver-resident partition "
                                "caches, e.g. 64M or 2G (dbtf only); caches "
                                "beyond it spill to disk and page back in, "
                                "results are bit-identical")
    factorize.add_argument("--spill-dir", default=None, metavar="DIR",
                           help="parent directory for --memory-budget spill "
                                "files (default: system temp dir)")
    factorize.add_argument("--delta", action="append", default=[],
                           metavar="PATH",
                           help="delta file (see repro.tensor.save_delta) to "
                                "apply after the initial factorization; "
                                "repeatable, applied in order (dbtf only). "
                                "Runs the incremental epoch path: cached "
                                "unfoldings are patched in place and the "
                                "solver warm-starts per epoch, re-sweeping "
                                "only delta-dirtied columns")

    jobs = subparsers.add_parser(
        "jobs", help="multi-tenant factorization jobs over a file spool"
    )
    jobs.add_argument("--spool", required=True, metavar="DIR",
                      help="job spool directory (created on first use); "
                           "specs, statuses, results, and checkpoints all "
                           "live under it")
    jobs_sub = jobs.add_subparsers(dest="jobs_command", required=True)

    jobs_submit = jobs_sub.add_parser(
        "submit", help="spool one decomposition job"
    )
    jobs_submit.add_argument("tensor", help="input .tns path")
    jobs_submit.add_argument("--tenant", required=True,
                             help="tenant the job is billed to")
    jobs_submit.add_argument("--method",
                             choices=["dbtf", "nway-cp", "tucker"],
                             default="dbtf")
    jobs_submit.add_argument("--rank", type=int, default=10)
    jobs_submit.add_argument("--core-shape", type=int, nargs=3, default=None,
                             metavar=("R1", "R2", "R3"))
    jobs_submit.add_argument("--max-iterations", type=int, default=10)
    jobs_submit.add_argument("--initial-sets", type=int, default=1)
    jobs_submit.add_argument("--seed", type=int, default=0)
    jobs_submit.add_argument("--priority", type=int, default=0,
                             help="larger runs earlier within the tenant "
                                  "and may preempt lower-priority jobs")

    jobs_status = jobs_sub.add_parser(
        "status", help="print job statuses from the spool"
    )
    jobs_status.add_argument("job_id", nargs="?", default=None,
                             help="one job id (default: every job)")

    jobs_cancel = jobs_sub.add_parser(
        "cancel", help="mark a job cancelled (the server honors it between "
                       "iterations; checkpoints are kept)"
    )
    jobs_cancel.add_argument("job_id")

    jobs_result = jobs_sub.add_parser(
        "result", help="print a finished job's result summary"
    )
    jobs_result.add_argument("job_id")

    jobs_serve = jobs_sub.add_parser(
        "serve", help="run spooled jobs to completion (resumable: killing "
                      "and re-running continues from checkpoints)"
    )
    jobs_serve.add_argument("--backend",
                            choices=["serial", "thread", "process"],
                            default="serial")
    jobs_serve.add_argument("--workers", type=int, default=None)
    jobs_serve.add_argument("--max-live", type=int, default=4,
                            help="jobs holding runtimes concurrently")
    jobs_serve.add_argument("--checkpoint-every", type=int, default=1)
    jobs_serve.add_argument("--keep-last", type=int, default=2)
    jobs_serve.add_argument("--weight", action="append", default=[],
                            metavar="TENANT=W",
                            help="fair-share weight override (repeatable)")
    jobs_serve.add_argument("--max-steps", type=int, default=None,
                            help="stop after N scheduler quanta even if "
                                 "jobs remain (they resume on the next "
                                 "serve)")
    jobs_serve.add_argument("--metrics-out", default=None, metavar="PATH",
                            help="write per-tenant service metrics as JSONL")
    jobs_serve.add_argument("--memory-budget", default=None, metavar="SIZE",
                            help="per-job byte ceiling for driver-resident "
                                 "partition caches, e.g. 64M; spill files "
                                 "live under each job's checkpoint root and "
                                 "are removed when the job finishes")
    jobs_serve.add_argument("--kernel-tier", default=None, metavar="TIER",
                            help="kernel-dispatch tier for every served job "
                                 "(fixed/auto/reference/<impl>)")
    jobs_serve.add_argument("--autotune-cache", default=None, metavar="PATH",
                            help="autotune cache file for --kernel-tier auto")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate a paper table or figure"
    )
    experiment.add_argument(
        "name",
        choices=[
            "fig1a", "fig1b", "fig1c", "fig6", "fig7",
            "error-density", "error-rank", "error-additive",
            "error-destructive", "table1", "table3",
            "lemma-traffic-iterations", "lemma-traffic-partitions",
        ],
    )
    experiment.add_argument("--timeout", type=float, default=30.0,
                            help="per-run budget in seconds")
    experiment.add_argument("--chart", action="store_true",
                            help="also render the series as a bar chart")
    return parser


def _command_generate(args: argparse.Namespace) -> int:
    from .datasets import load_dataset
    from .tensor import planted_tensor, random_tensor, save_tensor

    rng = np.random.default_rng(args.seed)
    shape = tuple(args.shape)
    if args.kind == "random":
        tensor = random_tensor(shape, args.density, rng)
    elif args.kind == "planted":
        tensor, _ = planted_tensor(
            shape,
            rank=args.rank,
            factor_density=args.factor_density,
            rng=rng,
            additive_noise=args.additive_noise,
            destructive_noise=args.destructive_noise,
        )
    else:
        tensor = load_dataset(args.dataset, seed=args.seed)
    save_tensor(tensor, args.out)
    print(f"wrote {tensor} to {args.out}")
    return 0


def _command_info(args: argparse.Namespace) -> int:
    from .tensor import load_tensor

    tensor = load_tensor(args.tensor)
    print(f"shape   : {'x'.join(str(s) for s in tensor.shape)}")
    print(f"nonzeros: {tensor.nnz}")
    print(f"density : {tensor.density():.6f}")
    return 0


def _command_factorize(args: argparse.Namespace) -> int:
    from .tensor import load_tensor, save_factors

    code = _configure_kernel_dispatch(args)
    if code:
        return code
    observing = args.trace is not None or args.metrics
    if observing and args.method not in ("dbtf", "nway-cp"):
        print(
            f"--trace/--metrics are only supported for dbtf and nway-cp, "
            f"not {args.method}",
            file=sys.stderr,
        )
        return 2
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    checkpoint = None
    if args.checkpoint_dir is not None:
        if args.method not in ("dbtf", "tucker", "nway-cp"):
            print(
                f"--checkpoint-dir is only supported for dbtf, tucker, and "
                f"nway-cp, not {args.method}",
                file=sys.stderr,
            )
            return 2
        from .resilience import CheckpointConfig

        checkpoint = CheckpointConfig(
            directory=args.checkpoint_dir,
            every=args.checkpoint_every,
            keep_last=args.checkpoint_keep_last,
            resume=args.resume,
        )

    memory_budget = None
    if args.memory_budget is not None:
        if args.method != "dbtf":
            print(
                f"--memory-budget is only supported for dbtf, "
                f"not {args.method}",
                file=sys.stderr,
            )
            return 2
        from .storage import parse_memory_size

        try:
            memory_budget = parse_memory_size(args.memory_budget)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    if args.spill_dir is not None and memory_budget is None:
        print("--spill-dir requires --memory-budget", file=sys.stderr)
        return 2

    if args.delta and args.method != "dbtf":
        print(
            f"--delta is only supported for dbtf, not {args.method}",
            file=sys.stderr,
        )
        return 2

    tensor = load_tensor(args.tensor)
    tracer = metrics = None
    if args.method == "dbtf" and args.delta:
        from .core import DbtfConfig
        from .incremental import FactorizationSession
        from .tensor import load_delta

        deltas = [load_delta(path) for path in args.delta]
        config = DbtfConfig(
            rank=args.rank,
            seed=args.seed,
            max_iterations=args.max_iterations,
            n_initial_sets=args.initial_sets,
            n_partitions=args.partitions,
            backend=args.backend,
            n_workers=args.workers,
            tracing=observing,
            eager=args.eager,
            memory_budget=memory_budget,
            spill_dir=args.spill_dir,
            worker_shuffle=False if args.driver_shuffle else None,
        )
        with FactorizationSession(
            tensor,
            config,
            checkpoint_root=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            keep_last=args.checkpoint_keep_last,
        ) as session:
            epochs = [session.factorize()]
            epochs.extend(session.advance(delta) for delta in deltas)
            if observing:
                tracer = session.runtime.tracer
                metrics = session.runtime.metrics
            result = epochs[-1].result
        print(f"method         : DBTF incremental ({len(epochs)} epochs, "
              f"{args.backend} backend)")
        print(f"{'epoch':>5} {'changes':>8} {'dirty':>6} {'swept':>6} "
              f"{'skipped':>8}  error")
        for epoch in epochs:
            print(f"{epoch.epoch:>5} {epoch.n_changes:>8} "
                  f"{sum(epoch.dirty_columns):>6} {epoch.columns_swept:>6} "
                  f"{epoch.columns_skipped:>8}  {epoch.error}")
    elif args.method == "dbtf":
        from contextlib import nullcontext

        from .core import dbtf
        from .distengine import SimulatedRuntime

        context = nullcontext()
        if observing:
            from .core import DbtfConfig

            probe = DbtfConfig(
                rank=args.rank,
                backend=args.backend,
                n_workers=args.workers,
                tracing=True,
                eager=args.eager,
                memory_budget=memory_budget,
                spill_dir=args.spill_dir,
                worker_shuffle=False if args.driver_shuffle else None,
            )
            context = SimulatedRuntime(probe.resolved_cluster())
        with context as runtime:
            result = dbtf(
                tensor,
                rank=args.rank,
                seed=args.seed,
                max_iterations=args.max_iterations,
                n_initial_sets=args.initial_sets,
                n_partitions=args.partitions,
                backend=args.backend,
                n_workers=args.workers,
                eager=args.eager,
                checkpoint=checkpoint,
                memory_budget=memory_budget,
                spill_dir=args.spill_dir,
                worker_shuffle=False if args.driver_shuffle else None,
                runtime=runtime,
            )
            if runtime is not None:
                tracer, metrics = runtime.tracer, runtime.metrics
        print(f"method         : DBTF (simulated {result.report.n_machines} machines, "
              f"{args.backend} backend)")
        print(f"simulated time : {result.report.simulated_time:.2f} s")
        if memory_budget is not None:
            print(f"spill I/O      : {result.report.spill_bytes} bytes "
                  f"(budget {memory_budget} bytes)")
    elif args.method == "bcp-als":
        from .baselines import bcp_als

        result = bcp_als(tensor, rank=args.rank, max_iterations=args.max_iterations)
        print("method         : BCP_ALS")
    elif args.method == "walk-n-merge":
        from .baselines import WalkNMergeConfig, walk_n_merge

        result = walk_n_merge(
            tensor,
            rank=args.rank,
            config=WalkNMergeConfig(
                density_threshold=args.density_threshold, seed=args.seed
            ),
        )
        print(f"method         : Walk'n'Merge ({result.details['n_blocks']} blocks)")
    elif args.method == "nway-cp":
        from .nway import NwayCpConfig, cp_nway

        if observing:
            from .observability import MetricsRegistry, Tracer

            tracer = Tracer() if args.trace is not None else None
            metrics = MetricsRegistry()
        result = cp_nway(
            tensor,
            config=NwayCpConfig(
                rank=args.rank,
                max_iterations=args.max_iterations,
                n_initial_sets=args.initial_sets,
                seed=args.seed,
                backend=args.backend,
                n_workers=args.workers,
                checkpoint=checkpoint,
            ),
            tracer=tracer,
            metrics=metrics,
        )
        print(f"method         : N-way Boolean CP ({tensor.ndim} modes)")
    else:
        from .tucker import BooleanTuckerConfig, boolean_tucker

        core_shape = tuple(args.core_shape) if args.core_shape else (args.rank,) * 3
        result = boolean_tucker(
            tensor,
            config=BooleanTuckerConfig(
                core_shape=core_shape,
                max_iterations=args.max_iterations,
                n_initial_sets=args.initial_sets,
                seed=args.seed,
                checkpoint=checkpoint,
            ),
        )
        print(f"method         : Boolean Tucker (core {core_shape}, "
              f"{result.core.nnz} core nonzeros)")

    print(f"error          : {result.error}")
    print(f"relative error : {result.relative_error:.4f}")

    if args.trace is not None and tracer is not None:
        from .observability import write_chrome_trace, write_jsonl

        if args.trace_format == "chrome":
            write_chrome_trace(tracer, args.trace)
        else:
            write_jsonl(tracer, args.trace)
        print(f"trace written to {args.trace} ({len(tracer)} spans, "
              f"{args.trace_format})")
    if args.metrics:
        from .observability import render_report

        print()
        print(render_report(tracer, metrics))

    if args.factors_out:
        if len(result.factors) == 3:
            save_factors(result.factors, args.factors_out)
        else:
            import os

            from .tensor import save_matrix

            os.makedirs(args.factors_out, exist_ok=True)
            for mode, factor in enumerate(result.factors):
                save_matrix(
                    factor, os.path.join(args.factors_out, f"factor_{mode}.mtx")
                )
        print(f"factors written to {args.factors_out}/")
    return 0


def _command_jobs(args: argparse.Namespace) -> int:
    from .service import JobStore

    store = JobStore(args.spool)
    handlers = {
        "submit": _jobs_submit,
        "status": _jobs_status,
        "cancel": _jobs_cancel,
        "result": _jobs_result,
        "serve": _jobs_serve,
    }
    return handlers[args.jobs_command](store, args)


def _jobs_submit(store, args: argparse.Namespace) -> int:
    from .service import JobSpec
    from .tensor import load_tensor

    spec = JobSpec(
        tenant=args.tenant,
        tensor=load_tensor(args.tensor),
        method=args.method,
        rank=args.rank,
        core_shape=tuple(args.core_shape) if args.core_shape else None,
        max_iterations=args.max_iterations,
        n_initial_sets=args.initial_sets,
        seed=args.seed,
        priority=args.priority,
    )
    job_id = store.submit(spec, args.tensor)
    print(job_id)
    return 0


def _jobs_status(store, args: argparse.Namespace) -> int:
    job_ids = [args.job_id] if args.job_id else store.job_ids()
    if not job_ids:
        print("spool is empty")
        return 0
    print(f"{'job':<22} {'tenant':<12} {'method':<8} {'state':<10} "
          f"{'iters':>5}  error")
    for job_id in job_ids:
        status = store.read_status(job_id)
        if status is None:
            spec = store.read_spec(job_id) or {}
            state = "cancelled" if store.is_cancelled(job_id) else "spooled"
            status = {"tenant": spec.get("tenant", "?"),
                      "method": spec.get("method", "?"), "state": state,
                      "iterations": 0, "error": None}
        error = status["error"] if status["error"] is not None else "-"
        print(f"{job_id:<22} {status['tenant']:<12} {status['method']:<8} "
              f"{status['state']:<10} {status['iterations']:>5}  {error}")
    return 0


def _jobs_cancel(store, args: argparse.Namespace) -> int:
    if store.read_status(args.job_id) is None and args.job_id not in store.job_ids():
        print(f"unknown job {args.job_id}", file=sys.stderr)
        return 2
    store.mark_cancelled(args.job_id)
    print(f"{args.job_id} marked cancelled")
    return 0


def _jobs_result(store, args: argparse.Namespace) -> int:
    import json

    summary = store.read_result(args.job_id)
    if summary is None:
        status = store.read_status(args.job_id)
        state = status["state"] if status else "unknown"
        print(f"no result for {args.job_id} (state: {state})", file=sys.stderr)
        return 1
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


def _configure_kernel_dispatch(args: argparse.Namespace) -> int:
    """Apply --kernel-tier/--autotune-cache process-wide; 0 on success."""
    if args.kernel_tier is None and args.autotune_cache is None:
        return 0
    from .bitops import configure_kernels

    try:
        configure_kernels(tier=args.kernel_tier, cache_path=args.autotune_cache)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _jobs_serve(store, args: argparse.Namespace) -> int:
    from .distengine import DEFAULT_CLUSTER
    from .service import FactorizationService, JobState, ServiceConfig, TenantQuota

    code = _configure_kernel_dispatch(args)
    if code:
        return code
    quotas = {}
    for override in args.weight:
        tenant, _, weight = override.partition("=")
        if not tenant or not weight:
            print(f"--weight expects TENANT=W, got {override!r}", file=sys.stderr)
            return 2
        quotas[tenant] = TenantQuota(weight=float(weight))

    cluster = DEFAULT_CLUSTER.with_backend(args.backend, args.workers)
    if args.memory_budget is not None:
        from .storage import parse_memory_size

        try:
            cluster = cluster.with_memory_budget(
                parse_memory_size(args.memory_budget)
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    pending = store.pending_ids()
    if not pending:
        print("nothing to do: no pending jobs in the spool")
        return 0
    config = ServiceConfig(
        cluster=cluster,
        checkpoint_root=store.checkpoint_root,
        checkpoint_every=args.checkpoint_every,
        keep_last=args.keep_last,
        max_live_jobs=args.max_live,
        quotas=quotas,
    )
    written: dict[str, tuple] = {}
    with FactorizationService(config) as service:
        for job_id in pending:
            service.submit(store.load_spec(job_id))
        print(f"serving {len(pending)} jobs ({args.backend} backend)")
        steps = 0
        while True:
            for job_id in list(service.jobs):
                job_status = service.status(job_id)
                if not job_status.state.terminal and store.is_cancelled(job_id):
                    service.cancel(job_id)
            if not service.step():
                break
            steps += 1
            _spool_progress(store, service, written)
            if args.max_steps is not None and steps >= args.max_steps:
                print(f"stopping after {steps} steps; unfinished jobs "
                      f"resume on the next serve")
                break
        _spool_progress(store, service, written)
        for job_id, job in service.jobs.items():
            if job.state is JobState.DONE and store.read_result(job_id) is None:
                store.write_result(job_id, _result_summary(job))
        if args.metrics_out is not None:
            from .observability import write_metrics_jsonl

            write_metrics_jsonl(service.metrics, args.metrics_out)
            print(f"metrics written to {args.metrics_out}")
        board = service.dashboard()
    for tenant in sorted(board):
        row = board[tenant]
        print(f"{tenant}: done={row['done']} pending={row['pending']} "
              f"failed={row['failed']} cancelled={row['cancelled']} "
              f"iterations={row['iterations']}")
    return 0


def _spool_progress(store, service, written: dict) -> None:
    """Write each job's status to the spool when it changed."""
    for job_id in service.jobs:
        status = service.status(job_id)
        key = (status.state, status.iterations)
        if written.get(job_id) != key:
            store.write_status(status)
            written[job_id] = key


def _result_summary(job) -> dict:
    result = job.result
    summary = {
        "job_id": job.job_id,
        "tenant": job.tenant,
        "method": job.spec.method,
        "error": int(result.error),
        "relative_error": float(result.relative_error),
        "converged": bool(result.converged),
        "iterations": job.iterations,
    }
    if hasattr(result, "errors_per_iteration"):
        summary["errors_per_iteration"] = [
            int(e) for e in result.errors_per_iteration
        ]
    return summary


def _command_experiment(args: argparse.Namespace) -> int:
    from . import experiments

    runners = {
        "fig1a": lambda: experiments.run_dimensionality(
            exponents=(4, 5, 6, 7), timeout_sec=args.timeout
        ),
        "fig1b": lambda: experiments.run_density(timeout_sec=args.timeout),
        "fig1c": lambda: experiments.run_rank(timeout_sec=args.timeout),
        "fig6": lambda: experiments.run_realworld(timeout_sec=args.timeout),
        "fig7": lambda: experiments.run_machine_scalability(exponent=6),
        "error-density": lambda: experiments.run_factor_density_sweep(
            timeout_sec=args.timeout
        ),
        "error-rank": lambda: experiments.run_rank_sweep(timeout_sec=args.timeout),
        "error-additive": lambda: experiments.run_additive_noise_sweep(
            timeout_sec=args.timeout
        ),
        "error-destructive": lambda: experiments.run_destructive_noise_sweep(
            timeout_sec=args.timeout
        ),
        "table1": lambda: experiments.table1(timeout_sec=args.timeout),
        "table3": experiments.table3,
        "lemma-traffic-iterations": experiments.run_traffic_vs_iterations,
        "lemma-traffic-partitions": experiments.run_traffic_vs_partitions,
    }
    table = runners[args.name]()
    print(table.to_text())
    if args.chart:
        from .experiments import ascii_bar_chart

        print()
        print(ascii_bar_chart(table))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "info": _command_info,
        "factorize": _command_factorize,
        "jobs": _command_jobs,
        "experiment": _command_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
