"""Command-line interface.

Four subcommands cover the library's day-to-day uses:

* ``generate`` — write a synthetic tensor (uniform random, planted-factor,
  or a Table III dataset stand-in) to a coordinate text file;
* ``info`` — print a tensor file's shape, nonzero count, and density;
* ``factorize`` — run DBTF / BCP_ALS / Walk'n'Merge / Boolean Tucker on a
  tensor file, print the summary, and optionally save the factors;
* ``experiment`` — regenerate one of the paper's tables or figures.

Examples::

    python -m repro generate --kind planted --shape 64 64 64 --rank 8 \
        --out tensor.tns
    python -m repro factorize tensor.tns --method dbtf --rank 8 \
        --factors-out factors/
    python -m repro experiment fig1a
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Boolean tensor factorization (DBTF reproduction, ICDE 2017)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="write a synthetic Boolean tensor to a file"
    )
    generate.add_argument(
        "--kind", choices=["random", "planted", "dataset"], default="random"
    )
    generate.add_argument(
        "--shape", type=int, nargs=3, default=[64, 64, 64], metavar=("I", "J", "K")
    )
    generate.add_argument("--density", type=float, default=0.01,
                          help="density for --kind random")
    generate.add_argument("--rank", type=int, default=10,
                          help="planted rank for --kind planted")
    generate.add_argument("--factor-density", type=float, default=0.1)
    generate.add_argument("--additive-noise", type=float, default=0.0)
    generate.add_argument("--destructive-noise", type=float, default=0.0)
    generate.add_argument("--dataset", default="facebook",
                          help="Table III stand-in name for --kind dataset")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output .tns path")

    info = subparsers.add_parser("info", help="print tensor statistics")
    info.add_argument("tensor", help="input .tns path")

    factorize = subparsers.add_parser(
        "factorize", help="factorize a Boolean tensor file"
    )
    factorize.add_argument("tensor", help="input .tns path")
    factorize.add_argument(
        "--method",
        choices=["dbtf", "bcp-als", "walk-n-merge", "tucker", "nway-cp"],
        default="dbtf",
    )
    factorize.add_argument("--rank", type=int, default=10)
    factorize.add_argument("--core-shape", type=int, nargs=3, default=None,
                           metavar=("R1", "R2", "R3"),
                           help="core sizes for --method tucker (default rank^3)")
    factorize.add_argument("--max-iterations", type=int, default=10)
    factorize.add_argument("--initial-sets", type=int, default=1,
                           help="DBTF's L parameter")
    factorize.add_argument("--partitions", type=int, default=None,
                           help="DBTF's N parameter")
    factorize.add_argument("--density-threshold", type=float, default=0.9,
                           help="Walk'n'Merge's t parameter")
    factorize.add_argument("--backend", choices=["serial", "thread", "process"],
                           default="serial",
                           help="host-side stage executor for dbtf/nway-cp "
                                "(results are identical; a parallel backend "
                                "uses more cores)")
    factorize.add_argument("--workers", type=int, default=None,
                           help="worker-pool size for --backend thread/process "
                                "(default: all cores)")
    factorize.add_argument("--eager", action="store_true",
                           help="disable stage fusion (legacy stage-per-"
                                "transformation dispatch; dbtf only, "
                                "results are identical)")
    factorize.add_argument("--seed", type=int, default=0)
    factorize.add_argument("--factors-out", default=None,
                           help="directory for A.mtx/B.mtx/C.mtx")
    factorize.add_argument("--trace", default=None, metavar="PATH",
                           help="write a structured span trace of the run "
                                "(dbtf/nway-cp only)")
    factorize.add_argument("--trace-format", choices=["jsonl", "chrome"],
                           default="jsonl",
                           help="trace file format: one JSON object per "
                                "span, or the Chrome trace-event format "
                                "for chrome://tracing / Perfetto")
    factorize.add_argument("--metrics", action="store_true",
                           help="print the stage/transfer/metrics summary "
                                "after the run (dbtf/nway-cp only)")
    factorize.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                           help="snapshot the decomposition state into DIR "
                                "at iteration boundaries "
                                "(dbtf/tucker/nway-cp only)")
    factorize.add_argument("--checkpoint-every", type=int, default=1,
                           metavar="K",
                           help="snapshot every K iterations (default 1)")
    factorize.add_argument("--resume", action="store_true",
                           help="resume from the newest intact snapshot in "
                                "--checkpoint-dir before iterating")

    experiment = subparsers.add_parser(
        "experiment", help="regenerate a paper table or figure"
    )
    experiment.add_argument(
        "name",
        choices=[
            "fig1a", "fig1b", "fig1c", "fig6", "fig7",
            "error-density", "error-rank", "error-additive",
            "error-destructive", "table1", "table3",
            "lemma-traffic-iterations", "lemma-traffic-partitions",
        ],
    )
    experiment.add_argument("--timeout", type=float, default=30.0,
                            help="per-run budget in seconds")
    experiment.add_argument("--chart", action="store_true",
                            help="also render the series as a bar chart")
    return parser


def _command_generate(args: argparse.Namespace) -> int:
    from .datasets import load_dataset
    from .tensor import planted_tensor, random_tensor, save_tensor

    rng = np.random.default_rng(args.seed)
    shape = tuple(args.shape)
    if args.kind == "random":
        tensor = random_tensor(shape, args.density, rng)
    elif args.kind == "planted":
        tensor, _ = planted_tensor(
            shape,
            rank=args.rank,
            factor_density=args.factor_density,
            rng=rng,
            additive_noise=args.additive_noise,
            destructive_noise=args.destructive_noise,
        )
    else:
        tensor = load_dataset(args.dataset, seed=args.seed)
    save_tensor(tensor, args.out)
    print(f"wrote {tensor} to {args.out}")
    return 0


def _command_info(args: argparse.Namespace) -> int:
    from .tensor import load_tensor

    tensor = load_tensor(args.tensor)
    print(f"shape   : {'x'.join(str(s) for s in tensor.shape)}")
    print(f"nonzeros: {tensor.nnz}")
    print(f"density : {tensor.density():.6f}")
    return 0


def _command_factorize(args: argparse.Namespace) -> int:
    from .tensor import load_tensor, save_factors

    observing = args.trace is not None or args.metrics
    if observing and args.method not in ("dbtf", "nway-cp"):
        print(
            f"--trace/--metrics are only supported for dbtf and nway-cp, "
            f"not {args.method}",
            file=sys.stderr,
        )
        return 2
    if args.resume and args.checkpoint_dir is None:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    checkpoint = None
    if args.checkpoint_dir is not None:
        if args.method not in ("dbtf", "tucker", "nway-cp"):
            print(
                f"--checkpoint-dir is only supported for dbtf, tucker, and "
                f"nway-cp, not {args.method}",
                file=sys.stderr,
            )
            return 2
        from .resilience import CheckpointConfig

        checkpoint = CheckpointConfig(
            directory=args.checkpoint_dir,
            every=args.checkpoint_every,
            resume=args.resume,
        )

    tensor = load_tensor(args.tensor)
    tracer = metrics = None
    if args.method == "dbtf":
        from .core import dbtf
        from .distengine import SimulatedRuntime

        runtime = None
        if observing:
            from .core import DbtfConfig

            probe = DbtfConfig(
                rank=args.rank,
                backend=args.backend,
                n_workers=args.workers,
                tracing=True,
                eager=args.eager,
            )
            runtime = SimulatedRuntime(probe.resolved_cluster())
        try:
            result = dbtf(
                tensor,
                rank=args.rank,
                seed=args.seed,
                max_iterations=args.max_iterations,
                n_initial_sets=args.initial_sets,
                n_partitions=args.partitions,
                backend=args.backend,
                n_workers=args.workers,
                eager=args.eager,
                checkpoint=checkpoint,
                runtime=runtime,
            )
        finally:
            if runtime is not None:
                runtime.close()
        if runtime is not None:
            tracer, metrics = runtime.tracer, runtime.metrics
        print(f"method         : DBTF (simulated {result.report.n_machines} machines, "
              f"{args.backend} backend)")
        print(f"simulated time : {result.report.simulated_time:.2f} s")
    elif args.method == "bcp-als":
        from .baselines import bcp_als

        result = bcp_als(tensor, rank=args.rank, max_iterations=args.max_iterations)
        print("method         : BCP_ALS")
    elif args.method == "walk-n-merge":
        from .baselines import WalkNMergeConfig, walk_n_merge

        result = walk_n_merge(
            tensor,
            rank=args.rank,
            config=WalkNMergeConfig(
                density_threshold=args.density_threshold, seed=args.seed
            ),
        )
        print(f"method         : Walk'n'Merge ({result.details['n_blocks']} blocks)")
    elif args.method == "nway-cp":
        from .nway import NwayCpConfig, cp_nway

        if observing:
            from .observability import MetricsRegistry, Tracer

            tracer = Tracer() if args.trace is not None else None
            metrics = MetricsRegistry()
        result = cp_nway(
            tensor,
            config=NwayCpConfig(
                rank=args.rank,
                max_iterations=args.max_iterations,
                n_initial_sets=args.initial_sets,
                seed=args.seed,
                backend=args.backend,
                n_workers=args.workers,
                checkpoint=checkpoint,
            ),
            tracer=tracer,
            metrics=metrics,
        )
        print(f"method         : N-way Boolean CP ({tensor.ndim} modes)")
    else:
        from .tucker import BooleanTuckerConfig, boolean_tucker

        core_shape = tuple(args.core_shape) if args.core_shape else (args.rank,) * 3
        result = boolean_tucker(
            tensor,
            config=BooleanTuckerConfig(
                core_shape=core_shape,
                max_iterations=args.max_iterations,
                n_initial_sets=args.initial_sets,
                seed=args.seed,
                checkpoint=checkpoint,
            ),
        )
        print(f"method         : Boolean Tucker (core {core_shape}, "
              f"{result.core.nnz} core nonzeros)")

    print(f"error          : {result.error}")
    print(f"relative error : {result.relative_error:.4f}")

    if args.trace is not None and tracer is not None:
        from .observability import write_chrome_trace, write_jsonl

        if args.trace_format == "chrome":
            write_chrome_trace(tracer, args.trace)
        else:
            write_jsonl(tracer, args.trace)
        print(f"trace written to {args.trace} ({len(tracer)} spans, "
              f"{args.trace_format})")
    if args.metrics:
        from .observability import render_report

        print()
        print(render_report(tracer, metrics))

    if args.factors_out:
        if len(result.factors) == 3:
            save_factors(result.factors, args.factors_out)
        else:
            import os

            from .tensor import save_matrix

            os.makedirs(args.factors_out, exist_ok=True)
            for mode, factor in enumerate(result.factors):
                save_matrix(
                    factor, os.path.join(args.factors_out, f"factor_{mode}.mtx")
                )
        print(f"factors written to {args.factors_out}/")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from . import experiments

    runners = {
        "fig1a": lambda: experiments.run_dimensionality(
            exponents=(4, 5, 6, 7), timeout_sec=args.timeout
        ),
        "fig1b": lambda: experiments.run_density(timeout_sec=args.timeout),
        "fig1c": lambda: experiments.run_rank(timeout_sec=args.timeout),
        "fig6": lambda: experiments.run_realworld(timeout_sec=args.timeout),
        "fig7": lambda: experiments.run_machine_scalability(exponent=6),
        "error-density": lambda: experiments.run_factor_density_sweep(
            timeout_sec=args.timeout
        ),
        "error-rank": lambda: experiments.run_rank_sweep(timeout_sec=args.timeout),
        "error-additive": lambda: experiments.run_additive_noise_sweep(
            timeout_sec=args.timeout
        ),
        "error-destructive": lambda: experiments.run_destructive_noise_sweep(
            timeout_sec=args.timeout
        ),
        "table1": lambda: experiments.table1(timeout_sec=args.timeout),
        "table3": experiments.table3,
        "lemma-traffic-iterations": experiments.run_traffic_vs_iterations,
        "lemma-traffic-partitions": experiments.run_traffic_vs_partitions,
    }
    table = runners[args.name]()
    print(table.to_text())
    if args.chart:
        from .experiments import ascii_bar_chart

        print()
        print(ascii_bar_chart(table))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _command_generate,
        "info": _command_info,
        "factorize": _command_factorize,
        "experiment": _command_experiment,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
