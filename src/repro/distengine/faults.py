"""Deterministic fault injection for the simulated engine.

Spark re-executes failed tasks; a distributed algorithm's cost model should
survive that.  :class:`FaultInjector` makes chosen task attempts fail
deterministically (seeded hash of stage, partition, and attempt number), the
engine re-runs them — charging the lost attempt's duration to the stage,
like a real cluster would — and gives up with :class:`TaskFailedError` after
``max_retries``.  Used by the failure-injection tests to check that DBTF's
results are invariant under retries and that only its *cost* changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["FaultInjector", "TaskFailedError", "InjectedTaskFailure"]


class InjectedTaskFailure(Exception):
    """Raised inside a task attempt the injector decided should fail."""


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget or blew its deadline.

    Carries the failing stage name, partition index, attempt count, and
    accumulated simulated retry-backoff wait both in the message and as
    attributes, so observability consumers (and tests) can attribute the
    failure without parsing text.
    """

    def __init__(
        self,
        message: str,
        stage: "str | None" = None,
        partition: "int | None" = None,
        attempts: "int | None" = None,
        retry_wait: float = 0.0,
    ):
        super().__init__(message)
        self.stage = stage
        self.partition = partition
        self.attempts = attempts
        self.retry_wait = retry_wait

    def __reduce__(self):
        # Keep the structured payload across the process-pool pickle
        # round-trip (the default exception reduce only replays ``args``).
        message = self.args[0] if self.args else ""
        return (
            type(self),
            (message, self.stage, self.partition, self.attempts, self.retry_wait),
        )


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic per-attempt failure decisions.

    Attributes
    ----------
    failure_rate:
        Probability in [0, 1) that any given attempt fails.  Derived from a
        seeded hash, so a given (stage, partition, attempt) always behaves
        the same way — runs are reproducible.
    max_retries:
        Re-executions allowed per task before :class:`TaskFailedError`.
    seed:
        Varies which attempts fail.
    """

    failure_rate: float = 0.1
    max_retries: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate < 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1), got {self.failure_rate}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    def should_fail(self, stage: str, partition: int, attempt: int) -> bool:
        """Deterministic failure decision for one task attempt."""
        token = f"{self.seed}:{stage}:{partition}:{attempt}".encode()
        digest = hashlib.sha256(token).digest()
        draw = int.from_bytes(digest[:8], "big") / 2**64
        return draw < self.failure_rate
