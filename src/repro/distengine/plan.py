"""Lazy lineage and execution planning: fuse narrow stages before dispatch.

This module is the engine's answer to Spark's DAG scheduler.  A
:class:`~repro.distengine.rdd.Distributed` transformation no longer runs a
stage — it appends a :class:`PlanNode` to a lineage DAG.  When an action
needs data, :class:`LogicalPlan` walks the DAG and the
:class:`PlanOptimizer` groups each maximal run of narrow transformations
into one :class:`PhysicalStage`, executed as a single composed task per
partition (:class:`FusedChainTask`) through ``runtime.run_plan``.  A
``map → filter → map`` pipeline therefore costs one task launch, one span,
and one scheduler wave instead of three — the engine-level analogue of the
paper's "never materialize the intermediates" argument (PAPER.md §IV).

Persistence is a real barrier with a twist: fusion runs *through* a
persisted-but-not-yet-cached node.  The node joins the fused chain as a
**tap** — the composed task captures that intermediate output and ships it
back with the final result, so the persist point is populated by the very
stage that first needed it, without a separate materialization dispatch.
Subsequent materializations stop at the cached node (a metered cache hit).

Everything here is deterministic: node ids come from a per-runtime counter,
stage names are the ``"+"``-joined segments of the fused chain, and
:meth:`LogicalPlan.explain` renders the same tree on every run — which is
what lets a plan snapshot live under ``tests/goldens/``.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

__all__ = [
    "PlanNode",
    "PhysicalStage",
    "PlanOptimizer",
    "LogicalPlan",
    "FusedChainTask",
]

#: Display label per operator, used when a transformation was not given an
#: explicit stage name.
_OP_LABELS = {
    "source": "source",
    "map": "map",
    "filter": "filter",
    "mapPartitions": "mapPartitions",
    "mapPartitionsWithIndex": "mapPartitionsWithIndex",
    "combineByKey.map": "combineByKey.map",
    "combineByKey.bucket": "combineByKey.bucket",
}


class PlanNode:
    """One operator in a lineage DAG.

    A node is either a ``source`` (its ``cached`` partitions are the data
    handed to ``parallelize``/``from_partitions``) or a narrow
    transformation of its ``parent``: ``fn(partition_index, items)`` maps
    one input partition to one output partition.  ``persisted`` marks a
    materialization barrier; ``cached`` holds the materialized partitions
    once they exist.  ``node_id`` comes from the owning runtime's counter,
    so :meth:`LogicalPlan.explain` output is deterministic.
    """

    __slots__ = ("op", "label", "fn", "parent", "persisted", "cached", "node_id")

    def __init__(
        self,
        op: str,
        label: str | None = None,
        fn: Callable[[int, list], Any] | None = None,
        parent: "PlanNode | None" = None,
        node_id: int = 0,
    ):
        self.op = op
        self.label = label
        self.fn = fn
        self.parent = parent
        self.persisted = False
        self.cached: list[list] | None = None
        self.node_id = node_id

    @property
    def is_source(self) -> bool:
        return self.op == "source"

    def segment(self) -> str:
        """This node's contribution to a composite stage name."""
        if self.label:
            return self.label
        if self.persisted:
            return "cache-build"
        return _OP_LABELS.get(self.op, self.op)

    def release(self) -> None:
        """Drop lineage references once the node's output is materialized.

        Eager mode caches every node at creation; without this, the chain
        of parent links would keep all intermediate partitions alive.
        """
        self.parent = None
        self.fn = None

    def __repr__(self) -> str:
        state = "cached" if self.cached is not None else "lazy"
        return f"PlanNode(#{self.node_id} {self.op} {self.segment()!r}, {state})"


class FusedChainTask:
    """Composed per-partition payload for a fused chain of narrow ops.

    Applies each chain function in order to the partition.  Outputs at
    ``taps`` positions — persisted-but-uncached nodes the chain fused
    through — are captured and returned alongside the final output, so the
    driver can populate the persist caches without a second dispatch.  The
    task returns a single-element partition wrapping ``(final, taps)``;
    ``runtime.run_plan`` unwraps it.  Attribute-carrying and module-level,
    so it pickles to process-pool workers like every other stage payload.
    """

    __slots__ = ("fns", "taps")

    def __init__(self, fns, taps):
        self.fns = tuple(fns)
        self.taps = tuple(taps)

    def __call__(self, index: int, items: list) -> list:
        out = items
        captured = []
        for position, fn in enumerate(self.fns):
            out = list(fn(index, out))
            if position in self.taps:
                captured.append((position, out))
        return [(out, captured)]


class PhysicalStage:
    """One dispatchable stage: a chain of nodes fused into a single task.

    ``nodes`` are in execution order (upstream first).  The stage name is
    the ``"+"``-joined segment of every fused node, so composite names like
    ``"map+filter+cache-build"`` flow into spans, :class:`StageReport`\\ s,
    the retry/speculation path, and the ledger.
    """

    __slots__ = ("nodes",)

    def __init__(self, nodes):
        self.nodes = tuple(nodes)

    @property
    def name(self) -> str:
        return "+".join(node.segment() for node in self.nodes)

    @property
    def tap_positions(self) -> tuple[int, ...]:
        """Chain positions whose output must be captured for a persist cache.

        The terminal node is excluded — its output *is* the stage result
        and is cached directly by the executor when persisted.
        """
        return tuple(
            position
            for position, node in enumerate(self.nodes[:-1])
            if node.persisted
        )

    def __repr__(self) -> str:
        return f"PhysicalStage({self.name!r})"


class PlanOptimizer:
    """Groups a lineage DAG's nodes into dispatchable physical stages.

    With ``fuse=True`` (the default) each maximal chain of narrow
    transformations becomes one stage; chains run *through* persisted
    nodes that are not cached yet, capturing their outputs as taps so
    ``persist()`` still materializes exactly once.  With ``fuse=False``
    every node is its own stage — the legacy eager dispatch shape, kept
    for A/B comparison (``ClusterConfig(eager=True)``).
    """

    __slots__ = ("fuse",)

    def __init__(self, fuse: bool = True):
        self.fuse = fuse

    def chain_for(self, node: PlanNode) -> tuple[list[PlanNode], PlanNode]:
        """The fusable chain ending at ``node``, plus the chain's input node.

        The chain is upstream-first; the input is the nearest ancestor
        with materialized partitions (a source, or a cached persist point)
        when fusing, or simply ``node.parent`` in eager mode.
        """
        chain = [node]
        cursor = node.parent
        while self.fuse and cursor is not None and cursor.cached is None:
            chain.append(cursor)
            cursor = cursor.parent
        chain.reverse()
        return chain, cursor

    def plan(self, node: PlanNode) -> list[PhysicalStage]:
        """The ordered stages materializing ``node`` would dispatch now.

        Pure planning — nothing runs.  Nodes an earlier planned stage
        would have cached count as materialized for the stages after it.
        """
        stages: list[PhysicalStage] = []
        self._plan(node, stages, set())
        return stages

    def _plan(self, node, stages, assumed_cached) -> None:
        if node.cached is not None or node in assumed_cached:
            return
        chain = [node]
        cursor = node.parent
        while (
            self.fuse
            and cursor is not None
            and cursor.cached is None
            and cursor not in assumed_cached
        ):
            chain.append(cursor)
            cursor = cursor.parent
        chain.reverse()
        if cursor is not None:
            self._plan(cursor, stages, assumed_cached)
        stages.append(PhysicalStage(chain))
        for member in chain:
            if member.persisted:
                assumed_cached.add(member)


class LogicalPlan:
    """A lineage DAG rooted at one result node, plus its optimizer.

    :meth:`execute` materializes the root's partitions, dispatching only
    the stages whose outputs are not already cached; :meth:`explain`
    renders the lineage and the physical stages deterministically.
    """

    __slots__ = ("node", "optimizer")

    def __init__(self, node: PlanNode, optimizer: PlanOptimizer | None = None):
        self.node = node
        self.optimizer = optimizer if optimizer is not None else PlanOptimizer()

    def execute(self, runtime) -> list[list]:
        """Materialize the root node's partitions through ``runtime``."""
        return self._ensure(self.node, runtime)

    def _ensure(self, node: PlanNode, runtime) -> list[list]:
        # `cached is not None` covers both resident lists and the storage
        # tier's SpilledPartitions markers; `cached_partitions` resolves
        # either to the actual list (paging spilled entries back in).
        if node.cached is not None:
            if node.persisted and not node.is_source:
                runtime.count_cache_hits(len(node.cached))
            return runtime.cached_partitions(node)
        chain, base_node = self.optimizer.chain_for(node)
        base = self._ensure(base_node, runtime)
        stage = PhysicalStage(chain)
        finals, tapped = runtime.run_plan(
            stage.name,
            [member.fn for member in chain],
            list(enumerate(base)),
            stage.tap_positions,
        )
        for position, partitions in tapped:
            chain[position].cached = partitions
            runtime.count_partitions_cached(len(partitions))
            runtime.admit_cache(chain[position])
        if node.persisted:
            node.cached = finals
            runtime.count_partitions_cached(len(finals))
            runtime.admit_cache(node)
        return finals

    def explain(self) -> str:
        """A deterministic rendering of the lineage and its physical plan.

        The logical section lists the DAG result-first (ids are the owning
        runtime's creation order); the physical section lists the stages a
        materialization would dispatch *right now*, so the same plan
        explained before and after an action shows the cache taking effect.
        """
        lines = ["== logical lineage (result first) =="]
        cursor: PlanNode | None = self.node
        while cursor is not None:
            flags = []
            if cursor.persisted:
                flags.append("persist")
            if cursor.cached is not None:
                flags.append(f"cached[{len(cursor.cached)}]")
            suffix = f"  ({', '.join(flags)})" if flags else ""
            lines.append(f"#{cursor.node_id} {cursor.op} {cursor.segment()!r}{suffix}")
            cursor = cursor.parent
        mode = "fused" if self.optimizer.fuse else "eager"
        lines.append(f"== physical stages ({mode}) ==")
        stages = self.optimizer.plan(self.node)
        if not stages:
            lines.append("(fully materialized — nothing to dispatch)")
        for number, stage in enumerate(stages, start=1):
            lines.append(f"stage {number}: {stage.name}")
            taps = stage.tap_positions
            if taps:
                names = ", ".join(stage.nodes[p].segment() for p in taps)
                lines.append(f"  tap -> cache: {names}")
            terminal = stage.nodes[-1]
            if terminal.persisted and terminal.cached is None:
                lines.append(f"  cache result: {terminal.segment()}")
        return "\n".join(lines)
