"""Pluggable stage executors for the simulated distributed engine.

The engine meters *measured per-task durations*, not wall-clock order, so
the cost model is identical under every backend here; only the host's real
elapsed time changes.  ``serial`` is the default (and the historical
behavior), ``thread`` overlaps GIL-releasing numpy kernels, ``process``
runs partitions on separate cores.
"""

from .base import BACKEND_NAMES, Backend, StageResult, TaskOutcome, execute_task
from .pools import ProcessBackend, ThreadBackend
from .serial import SerialBackend

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "StageResult",
    "TaskOutcome",
    "execute_task",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]

_BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def make_backend(backend: "str | Backend", n_workers: int | None = None) -> Backend:
    """Resolve a backend name (or pass through an instance).

    ``n_workers`` bounds the worker pool for ``thread``/``process``
    (default: the host's CPU count) and is ignored by ``serial``.
    """
    if isinstance(backend, Backend):
        return backend
    if backend not in _BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKEND_NAMES}"
        )
    return _BACKENDS[backend](n_workers=n_workers)
