"""Sequential in-driver execution — the engine's historical behavior."""

from __future__ import annotations

from collections.abc import Sequence

from ..faults import FaultInjector
from .base import Backend, StageResult, TaskFn, execute_task

__all__ = ["SerialBackend"]


class SerialBackend(Backend):
    """Runs every task inline on the driver, one partition after another.

    This is byte-for-byte the engine's original execution order, kept as
    the default: it needs no worker pool, imposes no picklability
    requirement on task payloads, and is the fastest choice for the small
    tensors the test suite exercises.
    """

    name = "serial"

    def __init__(self, n_workers: int | None = None):
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")

    def run_stage(
        self,
        stage_name: str,
        task_fn: TaskFn,
        indexed_partitions: Sequence[tuple[int, list]],
        fault_injector: FaultInjector | None = None,
        collect_trace: bool = False,
        retry_policy=None,
    ) -> StageResult:
        outcomes = [
            execute_task(
                task_fn, stage_name, index, items, fault_injector,
                collect_trace, retry_policy,
            )
            for index, items in indexed_partitions
        ]
        return StageResult.from_outcomes(outcomes)
