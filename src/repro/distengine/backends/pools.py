"""Parallel backends over :mod:`concurrent.futures` worker pools.

Both backends submit one :func:`~repro.distengine.backends.base.execute_task`
call per partition and gather outcomes in submission order, so results are
deterministic regardless of which worker finishes first.  The pool is
created lazily on the first stage and reused for the rest of the
decomposition (mirroring Spark executors, which live for the whole job);
``close()`` shuts it down.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

from ..faults import FaultInjector
from .base import Backend, StageResult, TaskFn, execute_task

__all__ = ["ThreadBackend", "ProcessBackend"]


class _PoolBackend(Backend):
    """Shared submit/gather logic for the thread and process pools."""

    def __init__(self, n_workers: int | None = None):
        if n_workers is not None and n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers
        self._executor: Executor | None = None

    def _effective_workers(self) -> int:
        return self.n_workers or os.cpu_count() or 1

    def _make_executor(self) -> Executor:
        raise NotImplementedError

    @property
    def executor(self) -> Executor:
        if self._executor is None:
            self._executor = self._make_executor()
        return self._executor

    def run_stage(
        self,
        stage_name: str,
        task_fn: TaskFn,
        indexed_partitions: Sequence[tuple[int, list]],
        fault_injector: FaultInjector | None = None,
        collect_trace: bool = False,
        retry_policy=None,
    ) -> StageResult:
        futures = [
            self.executor.submit(
                execute_task, task_fn, stage_name, index, items,
                fault_injector, collect_trace, retry_policy,
            )
            for index, items in indexed_partitions
        ]
        try:
            outcomes = [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return StageResult.from_outcomes(outcomes)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class ThreadBackend(_PoolBackend):
    """Tasks run concurrently on a thread pool.

    Real parallelism only where the kernels release the GIL (numpy's
    element-wise ops on large arrays do), but task payloads need not be
    picklable and nothing is copied between workers — the cheap way to
    overlap the engine's numpy-heavy stages.
    """

    name = "thread"

    def _make_executor(self) -> Executor:
        return ThreadPoolExecutor(
            max_workers=self._effective_workers(),
            thread_name_prefix="repro-stage",
        )


class ProcessBackend(_PoolBackend):
    """Tasks run on a process pool — actual multi-core parallelism.

    Task payloads, partitions, and results cross process boundaries via
    pickle, so stage functions must be module-level callables carrying
    their broadcast values as attributes (no captured locals); see
    ``_BuildCachedPartitions`` / ``_ColumnErrorsTask`` in
    :mod:`repro.core.update` for the pattern.
    """

    name = "process"

    # Workers live in other interpreters: broadcast handles must resolve
    # from spill files, not from driver memory.
    shares_driver_memory = False

    def _make_executor(self) -> Executor:
        return ProcessPoolExecutor(max_workers=self._effective_workers())
