"""The stage-executor seam: where partition tasks actually run.

A :class:`Backend` executes one *stage* — one task per partition — and
returns, per task, the produced partition, the measured duration, and how
many injected fault retries the task survived.  Everything the cost model
consumes (per-task durations, failure counts, shuffle bytes) is measured
*inside* the task, so the numbers are identical whether tasks run
sequentially, on a thread pool, or on a process pool: the replayed
``simulated_time`` is backend-invariant while the host's wall-clock time is
not.  See DESIGN.md "Execution backends".

Fault-injection retries live inside :func:`execute_task` (i.e. inside the
worker) rather than in the driver loop, so failure counts aggregate
correctly even when tasks of one stage finish out of order.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from ..faults import FaultInjector, TaskFailedError

__all__ = ["BACKEND_NAMES", "Backend", "TaskOutcome", "StageResult", "execute_task"]

#: Names accepted by ``make_backend`` / ``ClusterConfig.backend``.
BACKEND_NAMES = ("serial", "thread", "process")

#: ``fn(partition_index, items) -> iterable`` — the unit of distributed work.
TaskFn = Callable[[int, list], Iterable[Any]]


@dataclass(frozen=True)
class TaskOutcome:
    """What one partition task reports back to the driver."""

    index: int
    result: list
    duration: float
    failures: int


@dataclass(frozen=True)
class StageResult:
    """Per-task outputs of one stage, ordered by partition index."""

    results: list[list]
    durations: list[float]
    failure_counts: list[int]

    def __iter__(self):
        return iter((self.results, self.durations, self.failure_counts))


def execute_task(
    task_fn: TaskFn,
    stage_name: str,
    index: int,
    items: list,
    injector: FaultInjector | None,
) -> TaskOutcome:
    """Run one partition task, timing each attempt and retrying faults.

    This is the function every backend ships to its workers (it must stay
    module-level so :class:`ProcessBackend` can pickle it).  With a fault
    injector, attempts chosen by the injector fail *after* doing their work
    — the lost attempt's duration still counts toward the stage, as on a
    real cluster — and the task retries up to the injector's budget before
    raising :class:`TaskFailedError`.
    """
    task_time = 0.0
    attempt = 0
    failures = 0
    while True:
        started = time.perf_counter()
        result = list(task_fn(index, items))
        task_time += time.perf_counter() - started
        failed = injector is not None and injector.should_fail(
            stage_name, index, attempt
        )
        if not failed:
            return TaskOutcome(index, result, task_time, failures)
        failures += 1
        attempt += 1
        if attempt > injector.max_retries:
            raise TaskFailedError(
                f"task {index} of stage {stage_name!r} failed {attempt} times"
            )


class Backend(ABC):
    """Executes the tasks of one stage and reports measured outcomes.

    Implementations must preserve two invariants that make backends
    interchangeable under the cost model:

    * results, durations, and failure counts come back ordered by partition
      index, regardless of completion order;
    * timing and fault retries happen inside :func:`execute_task`, so the
      metered numbers do not depend on scheduling.
    """

    name = "abstract"

    @abstractmethod
    def run_stage(
        self,
        stage_name: str,
        task_fn: TaskFn,
        indexed_partitions: Sequence[tuple[int, list]],
        fault_injector: FaultInjector | None = None,
    ) -> StageResult:
        """Run ``task_fn`` over every ``(index, items)`` pair."""

    def close(self) -> None:
        """Release worker resources; the backend is reusable until closed."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
