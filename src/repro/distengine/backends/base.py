"""The stage-executor seam: where partition tasks actually run.

A :class:`Backend` executes one *stage* — one task per partition — and
returns, per task, the produced partition, the measured duration, and how
many injected fault retries the task survived.  Everything the cost model
consumes (per-task durations, failure counts, shuffle bytes) is measured
*inside* the task, so the numbers are identical whether tasks run
sequentially, on a thread pool, or on a process pool: the replayed
``simulated_time`` is backend-invariant while the host's wall-clock time is
not.  See DESIGN.md "Execution backends".

Fault-injection retries live inside :func:`execute_task` (i.e. inside the
worker) rather than in the driver loop, so failure counts aggregate
correctly even when tasks of one stage finish out of order.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..faults import FaultInjector, TaskFailedError

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ...resilience import RetryPolicy
from ...observability.trace import (
    TaskTraceContext,
    activate_task_context,
    deactivate_task_context,
)

__all__ = ["BACKEND_NAMES", "Backend", "TaskOutcome", "StageResult", "execute_task"]

#: Names accepted by ``make_backend`` / ``ClusterConfig.backend``.
BACKEND_NAMES = ("serial", "thread", "process")

#: ``fn(partition_index, items) -> iterable`` — the unit of distributed work.
TaskFn = Callable[[int, list], Iterable[Any]]


@dataclass(frozen=True)
class TaskOutcome:
    """What one partition task reports back to the driver.

    ``trace`` is the task's span sub-tree (a picklable dict, ``None`` when
    tracing is off) and ``metric_deltas`` the worker-side metric increments
    — both produced by the :class:`~repro.observability.trace.
    TaskTraceContext` active while the task ran, so they survive the trip
    back from a process-pool worker.
    """

    index: int
    result: list
    duration: float
    failures: int
    trace: dict | None = None
    metric_deltas: tuple = ()
    #: Simulated backoff seconds this task spent waiting between retry
    #: attempts (always 0.0 without a retry policy; never slept for real).
    retry_wait: float = 0.0


@dataclass(frozen=True)
class StageResult:
    """Per-task outputs of one stage, ordered by partition index.

    Iteration keeps the historical ``(results, durations, failure_counts)``
    triple; trace and metric payloads are reached by attribute.
    """

    results: list[list]
    durations: list[float]
    failure_counts: list[int]
    traces: list = field(default_factory=list)
    metric_deltas: list = field(default_factory=list)
    retry_waits: list = field(default_factory=list)

    @classmethod
    def from_outcomes(cls, outcomes: "Sequence[TaskOutcome]") -> "StageResult":
        return cls(
            results=[outcome.result for outcome in outcomes],
            durations=[outcome.duration for outcome in outcomes],
            failure_counts=[outcome.failures for outcome in outcomes],
            traces=[outcome.trace for outcome in outcomes],
            metric_deltas=[outcome.metric_deltas for outcome in outcomes],
            retry_waits=[outcome.retry_wait for outcome in outcomes],
        )

    def __iter__(self):
        return iter((self.results, self.durations, self.failure_counts))


def execute_task(
    task_fn: TaskFn,
    stage_name: str,
    index: int,
    items: list,
    injector: FaultInjector | None,
    collect_trace: bool = False,
    retry_policy: "RetryPolicy | None" = None,
) -> TaskOutcome:
    """Run one partition task, timing each attempt and retrying faults.

    This is the function every backend ships to its workers (it must stay
    module-level so :class:`ProcessBackend` can pickle it).  With a fault
    injector, attempts chosen by the injector fail *after* doing their work
    — the lost attempt's duration still counts toward the stage, as on a
    real cluster — and the task retries up to its budget before raising
    :class:`TaskFailedError`.

    A :class:`~repro.resilience.RetryPolicy` replaces the injector's fixed
    ``max_retries`` with its own budget and charges a simulated exponential
    backoff wait before each re-execution (accumulated in
    ``TaskOutcome.retry_wait`` — never slept for real), optionally failing
    the task once compute time plus backoff exceeds ``deadline_sec``.  The
    backoff jitter is a seeded hash, so the wait accounting is identical
    under every backend.

    With ``collect_trace`` a :class:`TaskTraceContext` is active for the
    whole call (all attempts), so kernel spans and metric increments from
    inside the task land in the outcome regardless of backend.  The fault
    injector is deterministic, so the kernel spans of retried attempts —
    which a real cluster would also re-execute — appear identically under
    every backend.
    """
    context = TaskTraceContext() if collect_trace else None
    if context is not None:
        activate_task_context(context)
    task_time = 0.0
    attempt = 0
    failures = 0
    retry_wait = 0.0
    try:
        while True:
            started = time.perf_counter()
            result = list(task_fn(index, items))
            task_time += time.perf_counter() - started
            failed = injector is not None and injector.should_fail(
                stage_name, index, attempt
            )
            if not failed:
                break
            failures += 1
            attempt += 1
            max_retries = (
                retry_policy.max_retries
                if retry_policy is not None
                else injector.max_retries
            )
            if attempt > max_retries:
                raise TaskFailedError(
                    f"task {index} of stage {stage_name!r} failed {attempt} "
                    f"times (waited {retry_wait:.3f}s of simulated retry "
                    f"backoff)",
                    stage=stage_name,
                    partition=index,
                    attempts=attempt,
                    retry_wait=retry_wait,
                )
            if retry_policy is not None:
                retry_wait += retry_policy.backoff_delay(
                    stage_name, index, attempt
                )
                deadline = retry_policy.deadline_sec
                if deadline is not None and task_time + retry_wait > deadline:
                    raise TaskFailedError(
                        f"task {index} of stage {stage_name!r} failed "
                        f"{attempt} times (waited {retry_wait:.3f}s of "
                        f"simulated retry backoff): deadline of {deadline}s "
                        f"exceeded",
                        stage=stage_name,
                        partition=index,
                        attempts=attempt,
                        retry_wait=retry_wait,
                    )
    finally:
        if context is not None:
            deactivate_task_context()
    trace = None
    metric_deltas: tuple = ()
    if context is not None:
        attrs = {"partition": index, "retries": failures}
        if retry_wait > 0.0:
            # Only present with a retry policy and actual retries, so the
            # no-fault golden trace structure is unchanged.
            attrs["retry_wait"] = retry_wait
        trace = {
            "name": stage_name,
            "start": 0.0,
            "duration": task_time,
            "attrs": attrs,
            "kernels": context.kernels,
        }
        metric_deltas = context.metric_deltas()
    return TaskOutcome(
        index, result, task_time, failures, trace, metric_deltas, retry_wait
    )


class Backend(ABC):
    """Executes the tasks of one stage and reports measured outcomes.

    Implementations must preserve two invariants that make backends
    interchangeable under the cost model:

    * results, durations, and failure counts come back ordered by partition
      index, regardless of completion order;
    * timing and fault retries happen inside :func:`execute_task`, so the
      metered numbers do not depend on scheduling.
    """

    name = "abstract"

    #: Whether workers see the driver's objects directly.  Backends that
    #: cross a process boundary set this False, which tells the runtime to
    #: spill broadcast values to disk so workers can resolve
    #: :class:`~repro.distengine.broadcast.BroadcastHandle` references.
    shares_driver_memory = True

    @abstractmethod
    def run_stage(
        self,
        stage_name: str,
        task_fn: TaskFn,
        indexed_partitions: Sequence[tuple[int, list]],
        fault_injector: FaultInjector | None = None,
        collect_trace: bool = False,
        retry_policy: "RetryPolicy | None" = None,
    ) -> StageResult:
        """Run ``task_fn`` over every ``(index, items)`` pair.

        ``collect_trace`` asks each task to record its kernel spans and
        metric increments (see :func:`execute_task`); the driver grafts
        them into its tracer afterwards.  ``retry_policy`` overrides the
        injector's retry budget and charges simulated backoff waits (see
        :func:`execute_task`).
        """

    def close(self) -> None:
        """Release worker resources; the backend is reusable until closed."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
