"""A partitioned, Spark-like distributed collection with lazy lineage.

:class:`Distributed` is the engine's RDD analogue.  Transformations are
**lazy**: ``map``/``filter``/``map_partitions``/``map_partitions_with_index``
(and the map half of ``combine_by_key``) append a
:class:`~repro.distengine.plan.PlanNode` to a lineage DAG and return
immediately.  Actions (``collect``, ``count``, ``reduce``, ``glom``, and the
shuffle barrier inside ``combine_by_key``) hand the DAG to the plan layer
(:mod:`repro.distengine.plan`), which fuses each maximal chain of narrow
transformations into one composed task per partition before dispatching
through ``runtime.run_plan`` — a ``map → filter → map`` pipeline costs one
stage, not three, and the fused stage carries the composite name
(``"map+filter+..."``) into spans, reports, and the retry path.

``persist()`` is a real materialization barrier: the partitions are cached
at first materialization (metered by ``partitions_cached_total``) and
reused on every later access (``cache_hits_total``) until ``unpersist()``
or ``runtime.close()`` evicts them.  ``ClusterConfig(eager=True)`` restores
the legacy stage-per-transformation dispatch — every transformation
materializes immediately under its legacy stage name — for A/B comparison
(see ``benchmarks/bench_plan.py``).

Wide operations (``combine_by_key``) still move data between partitions and
charge the shuffle ledger; narrow ones do not — the same distinction Spark
draws.  All stage payloads remain module-level callables holding their
captured values as attributes, so they stay picklable and every
transformation works unchanged under the process backend (provided the
user-supplied functions are themselves picklable).
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Iterable
from typing import Any

from ..storage.shuffle_spill import ShuffleSpillWriter, read_bucket
from .plan import LogicalPlan, PlanNode
from .shuffle import (
    TransferKind,
    estimate_bytes,
    estimate_pair_bytes,
    stable_hash,
)

__all__ = ["Distributed", "ShuffleMapOutput"]

#: Sentinel distinguishing "key absent" from a ``None`` combiner.
_MISSING = object()


class _ElementTask:
    """``map`` payload: apply ``fn`` to every element of a partition."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, _index: int, items: list[Any]) -> list[Any]:
        return [self.fn(item) for item in items]


class _FilterTask:
    """``filter`` payload: keep the elements satisfying ``predicate``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable[[Any], bool]):
        self.predicate = predicate

    def __call__(self, _index: int, items: list[Any]) -> list[Any]:
        return [item for item in items if self.predicate(item)]


class _PartitionTask:
    """``map_partitions`` payload: apply ``fn`` to the whole partition."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[list[Any]], Iterable[Any]]):
        self.fn = fn

    def __call__(self, _index: int, items: list[Any]) -> Iterable[Any]:
        return self.fn(items)


class ShuffleMapOutput:
    """One map task's bucketed shuffle output (worker-side routing).

    ``buckets[b]`` holds the in-memory ``(key, combiner)`` pairs destined
    for reduce partition ``b`` in insertion order, ``bucket_bytes[b]`` their
    pre-measured wire size, and ``runs`` the metadata of any spilled runs
    (oldest first) — everything the driver needs to route whole buckets
    without touching a single pair.
    """

    __slots__ = ("buckets", "bucket_bytes", "runs")

    def __init__(
        self,
        buckets: "list[list[tuple]]",
        bucket_bytes: "list[int]",
        runs: list,
    ):
        self.buckets = buckets
        self.bucket_bytes = bucket_bytes
        self.runs = runs


class _CombineMapTask:
    """Map-side of ``combine_by_key``: pre-combine values within a partition.

    In legacy (driver-routed) mode — ``target_count=None`` — it returns a
    single-element partition holding the ``key -> combiner`` dict, so the
    pre-combined data flows back through the stage seam like any other task
    result.  With ``target_count`` set (the worker-side shuffle plane) the
    task buckets combiners by ``stable_hash(key) % target_count`` *as it
    builds them* and returns a :class:`ShuffleMapOutput`: per-bucket pair
    lists in insertion order with their wire bytes batch-measured inside
    the worker.

    With ``spill_threshold`` set (a per-task share of the cluster's memory
    budget), the running combiner-state estimate is tracked incrementally;
    crossing the threshold writes the entire current bucket set as one
    sorted run (bucket-index order, insertion order within buckets) through
    :class:`~repro.storage.ShuffleSpillWriter` and starts over empty — so
    combine state under process pools is bounded by the budget share, and
    the reduce side re-merges runs bit-identically.
    """

    __slots__ = (
        "create_combiner", "merge_value", "target_count", "spill_dir",
        "spill_threshold", "shuffle_id",
    )

    def __init__(
        self,
        create_combiner,
        merge_value,
        target_count: "int | None" = None,
        spill_dir: "str | None" = None,
        spill_threshold: "int | None" = None,
        shuffle_id: int = 0,
    ):
        self.create_combiner = create_combiner
        self.merge_value = merge_value
        self.target_count = target_count
        self.spill_dir = spill_dir
        self.spill_threshold = spill_threshold
        self.shuffle_id = shuffle_id

    def __call__(self, index: int, items: list[Any]) -> list:
        if self.target_count is None:
            combiners: dict[Any, Any] = {}
            for key, value in items:
                if key in combiners:
                    combiners[key] = self.merge_value(combiners[key], value)
                else:
                    combiners[key] = self.create_combiner(value)
            return [combiners]
        return [self._bucketed(index, items)]

    def _bucketed(self, index: int, items: list[Any]) -> ShuffleMapOutput:
        target = self.target_count
        threshold = self.spill_threshold
        buckets: list[dict[Any, Any]] = [{} for _ in range(target)]
        runs: list = []
        writer: "ShuffleSpillWriter | None" = None
        tracked = 0
        for key, value in items:
            bucket = buckets[stable_hash(key) % target]
            old = bucket.get(key, _MISSING)
            if old is _MISSING:
                combiner = self.create_combiner(value)
                if threshold is not None:
                    tracked += estimate_bytes(key) + estimate_bytes(combiner)
            else:
                # Measure the old combiner *before* merging so in-place
                # merge functions still report their growth.
                if threshold is not None:
                    tracked -= estimate_bytes(old)
                combiner = self.merge_value(old, value)
                if threshold is not None:
                    tracked += estimate_bytes(combiner)
            bucket[key] = combiner
            if threshold is not None and tracked > threshold:
                if writer is None:
                    writer = ShuffleSpillWriter(
                        self.spill_dir, self.shuffle_id, index
                    )
                runs.append(
                    writer.write_run(
                        [list(b.items()) for b in buckets],
                        [estimate_pair_bytes(b.items()) for b in buckets],
                    )
                )
                buckets = [{} for _ in range(target)]
                tracked = 0
        mem = [list(b.items()) for b in buckets]
        return ShuffleMapOutput(
            mem, [estimate_pair_bytes(pairs) for pairs in mem], runs
        )


class _CombineReduceTask:
    """Reduce-side of ``combine_by_key``: merge one bucket's combiners."""

    __slots__ = ("merge_combiners",)

    def __init__(self, merge_combiners):
        self.merge_combiners = merge_combiners

    def __call__(self, _index: int, pairs: list[tuple]) -> list[tuple]:
        bucket: dict[Any, Any] = {}
        for key, combiner in pairs:
            if key in bucket:
                bucket[key] = self.merge_combiners(bucket[key], combiner)
            else:
                bucket[key] = combiner
        return list(bucket.items())


class _SpillSegment:
    """Reduce-side reference to one bucket's blob inside a spill run."""

    __slots__ = ("path", "offset", "length")

    def __init__(self, path: str, offset: int, length: int):
        self.path = path
        self.offset = offset
        self.length = length

    def load(self) -> list[tuple]:
        return read_bucket(self.path, self.offset, self.length)


class _ShuffleReduceTask:
    """Reduce-side of the worker shuffle: merge one bucket's segments.

    Each segment is either an in-memory pair list or a :class:`_SpillSegment`
    loaded on demand.  Segments arrive in deterministic (source partition,
    run, insertion) order, so the merged dict's first-occurrence key order —
    and with it ``list(bucket.items())`` — is identical to the legacy
    driver-routed path under every backend.
    """

    __slots__ = ("merge_combiners",)

    def __init__(self, merge_combiners):
        self.merge_combiners = merge_combiners

    def __call__(self, _index: int, segments: list) -> list[tuple]:
        bucket: dict[Any, Any] = {}
        for segment in segments:
            pairs = segment if isinstance(segment, list) else segment.load()
            for key, combiner in pairs:
                if key in bucket:
                    bucket[key] = self.merge_combiners(bucket[key], combiner)
                else:
                    bucket[key] = combiner
        return list(bucket.items())


def _identity(value: Any) -> Any:
    """Module-level identity so ``reduce_by_key`` stays picklable."""
    return value


class Distributed:
    """A lazily evaluated, partitioned collection bound to a runtime.

    The collection takes ownership of ``partitions`` without copying: every
    construction site (``parallelize``/``from_partitions`` ingestion,
    shuffle results) already hands over freshly built lists.  Callers that
    need an independent snapshot should use :meth:`glom`.
    """

    __slots__ = ("runtime", "name", "node")

    def __init__(
        self,
        runtime,
        partitions: list[list[Any]] | None = None,
        name: str = "rdd",
        node: PlanNode | None = None,
    ):
        self.runtime = runtime
        self.name = name
        if node is None:
            node = PlanNode(
                "source", label=name, node_id=runtime.next_plan_id()
            )
            node.cached = partitions if partitions is not None else []
            if partitions:
                # Source data is a driver-resident cache like any persist
                # tap; under a memory budget it becomes spillable too.
                runtime.admit_cache(node)
        self.node = node

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def n_partitions(self) -> int:
        """Partition count, known without materializing (narrow ops keep it)."""
        node = self.node
        while node.cached is None:
            node = node.parent
        return len(node.cached)

    def glom(self) -> list[list[Any]]:
        """The materialized partition structure (like Spark's glom).

        Returns copies, so mutating them never corrupts a persist cache.
        """
        return [list(partition) for partition in self._materialize()]

    def persist(self) -> "Distributed":
        """Mark this collection as a materialization barrier.

        The partitions are cached at first materialization — when fusion
        reaches a persisted node it taps the fused task's intermediate
        output, so the cache fills without a dedicated stage — and reused
        until :meth:`unpersist` or ``runtime.close()`` evicts them.
        Persisting a source is a no-op: its partitions already live on the
        driver.
        """
        node = self.node
        if node.is_source or node.persisted:
            return self
        node.persisted = True
        self.runtime.register_persist(node)
        if node.cached is not None:  # eager mode materialized it already
            self.runtime.count_partitions_cached(len(node.cached))
        return self

    def unpersist(self) -> "Distributed":
        """Evict this collection's cached partitions (metered)."""
        self.runtime.evict(self.node)
        return self

    def explain(self) -> str:
        """Deterministic rendering of the lineage and its physical stages."""
        return LogicalPlan(self.node, self.runtime.plan_optimizer).explain()

    def _materialize(self) -> list[list[Any]]:
        return self.runtime.materialize(self.node)

    # ------------------------------------------------------------------
    # Narrow transformations (no shuffle)
    # ------------------------------------------------------------------
    def _derive(
        self,
        op: str,
        fn: Callable[[int, list[Any]], Iterable[Any]],
        name: str | None,
        default_suffix: str,
    ) -> "Distributed":
        """Append one narrow node to the lineage (dispatching it if eager).

        In eager mode the node's label falls back to the legacy
        ``"<parent>.<op>"`` stage name, so the stage-per-op dispatch is
        name-identical to the pre-plan engine; in fused mode an anonymous
        node contributes just its operator label to the composite name.
        """
        runtime = self.runtime
        label = name or (f"{self.name}.{default_suffix}" if runtime.eager else None)
        node = PlanNode(
            op, label=label, fn=fn, parent=self.node,
            node_id=runtime.next_plan_id(),
        )
        derived = Distributed(
            runtime, name=name or f"{self.name}.{default_suffix}", node=node
        )
        if runtime.eager:
            node.cached = runtime.materialize(node)
            node.release()
            runtime.admit_cache(node)
        return derived

    def map(self, fn: Callable[[Any], Any], name: str | None = None) -> "Distributed":
        return self._derive("map", _ElementTask(fn), name, "map")

    def filter(
        self, predicate: Callable[[Any], bool], name: str | None = None
    ) -> "Distributed":
        return self._derive("filter", _FilterTask(predicate), name, "filter")

    def map_partitions(
        self,
        fn: Callable[[list[Any]], Iterable[Any]],
        name: str | None = None,
    ) -> "Distributed":
        return self._derive(
            "mapPartitions", _PartitionTask(fn), name, "mapPartitions"
        )

    def map_partitions_with_index(
        self,
        fn: Callable[[int, list[Any]], Iterable[Any]],
        name: str | None = None,
    ) -> "Distributed":
        """Lazily apply ``fn(partition_index, items)`` to each partition.

        Execution happens at the next action: the plan layer fuses this
        node with its narrow neighbours and the runtime's backend executes
        the composed task (see
        :func:`repro.distengine.backends.execute_task`), which times it
        and applies fault-injection retries.
        """
        return self._derive(
            "mapPartitionsWithIndex", fn, name, "mapPartitionsWithIndex"
        )

    # ------------------------------------------------------------------
    # Wide transformation (shuffle)
    # ------------------------------------------------------------------
    def combine_by_key(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        n_partitions: int | None = None,
        name: str | None = None,
    ) -> "Distributed":
        """Group ``(key, value)`` elements by key, Spark's combineByKey.

        The map side is a narrow node — it fuses with upstream
        transformations — but the shuffle is a barrier: the lineage up to
        the map side materializes here.  Partial combiners are
        hash-partitioned across the network (charged to the shuffle
        ledger; placement uses
        :func:`~repro.distengine.shuffle.stable_hash`, so it is identical
        across processes and ``PYTHONHASHSEED`` values), then merged per
        target partition.  The result is a new source node: shuffled data
        has no narrow lineage to recompute from.

        With ``ClusterConfig(worker_shuffle=True)`` (the default) the
        bucketing happens inside the map tasks and the driver routes whole
        buckets — O(partitions) work; under a memory budget, map-side
        combiner state that outgrows its per-task share spills sorted runs
        merged back on the reduce side.  ``worker_shuffle=False`` restores
        the legacy driver-side per-pair loop; results, shuffle bytes, and
        per-bucket observability are identical either way.  Both routes
        require ``merge_value``/``merge_combiners`` to be associative with
        ``create_combiner`` (Spark's combiner contract) — the merge *order*
        within a bucket is deterministic, but pre-combining splits differ
        between the paths when a map task spills.
        """
        stage_name = name or f"{self.name}.combineByKey"
        target_count = n_partitions or self.n_partitions or 1
        route = (
            self._combine_worker_routed
            if self.runtime.config.worker_shuffle
            else self._combine_driver_routed
        )
        return route(
            stage_name, target_count, create_combiner, merge_value,
            merge_combiners,
        )

    def _combine_driver_routed(
        self, stage_name, target_count, create_combiner, merge_value,
        merge_combiners,
    ) -> "Distributed":
        """Legacy A/B lever: route every (key, combiner) pair on the driver."""
        runtime = self.runtime
        map_node = PlanNode(
            "combineByKey.map",
            label=f"{stage_name}.map",
            fn=_CombineMapTask(create_combiner, merge_value),
            parent=self.node,
            node_id=runtime.next_plan_id(),
        )
        partial_maps = runtime.materialize(map_node)

        # Driver-side shuffle routing: the driver touches every pair — a
        # stable_hash placement plus a recursive size estimate each, O(pairs)
        # sequential work that extra workers cannot absorb.  Pairs are routed
        # in (source partition, insertion) order so the reduce-side merges
        # are order-identical under every backend; per-bucket bytes are
        # accumulated so the observability surface matches the worker path.
        started = time.perf_counter()
        bucket_bytes = [0] * target_count
        routed: list[list[tuple]] = [[] for _ in range(target_count)]
        for (combiners,) in partial_maps:
            for key, combiner in combiners.items():
                bucket_index = stable_hash(key) % target_count
                bucket_bytes[bucket_index] += (
                    estimate_bytes(key) + estimate_bytes(combiner)
                )
                routed[bucket_index].append((key, combiner))
        runtime.metrics.counter(
            "shuffle_routing_seconds_total", stage=stage_name
        ).inc(time.perf_counter() - started)
        runtime.record_shuffle_buckets(stage_name, bucket_bytes)

        new_partitions = runtime.run_stage(
            f"{stage_name}.reduce",
            _CombineReduceTask(merge_combiners),
            list(enumerate(routed)),
        )
        return Distributed(runtime, new_partitions, name=stage_name)

    def _combine_worker_routed(
        self, stage_name, target_count, create_combiner, merge_value,
        merge_combiners,
    ) -> "Distributed":
        """Worker-side shuffle plane: map tasks bucket, the driver routes
        whole buckets in O(partitions)."""
        runtime = self.runtime
        shuffle_id = runtime.next_shuffle_id()
        spill_dir = runtime.shuffle_spill_dir()
        spill_threshold = None
        if spill_dir is not None:
            # Each map task gets an equal share of the cluster budget for
            # its combiner state; computed driver-side from config, so the
            # spill pattern is deterministic and backend-invariant.
            spill_threshold = max(
                1,
                runtime.config.memory_budget // max(1, self.n_partitions),
            )
        map_node = PlanNode(
            "combineByKey.bucket",
            label=f"{stage_name}.map",
            fn=_CombineMapTask(
                create_combiner, merge_value, target_count=target_count,
                spill_dir=spill_dir, spill_threshold=spill_threshold,
                shuffle_id=shuffle_id,
            ),
            parent=self.node,
            node_id=runtime.next_plan_id(),
        )
        outputs = runtime.materialize(map_node)

        # Driver-side work is now O(source partitions × buckets): per map
        # output, splice in any spilled runs (oldest first) and then the
        # in-memory bucket, accumulating the pre-measured per-bucket bytes.
        # First-occurrence key order across a source's runs + remainder
        # equals its global insertion order, so reduce-side merges stay
        # order-identical to the legacy path.
        started = time.perf_counter()
        bucket_bytes = [0] * target_count
        bucket_spills = [0] * target_count
        segments: list[list] = [[] for _ in range(target_count)]
        run_files: list[str] = []
        spill_write_bytes = 0
        fetch_bytes = 0
        for (output,) in outputs:
            for run in output.runs:
                run_files.append(run.path)
                spill_write_bytes += run.file_bytes
                for index in range(target_count):
                    if run.lengths[index]:
                        segments[index].append(
                            _SpillSegment(
                                run.path, run.offsets[index],
                                run.lengths[index],
                            )
                        )
                        bucket_bytes[index] += run.pair_bytes[index]
                        bucket_spills[index] += 1
                        fetch_bytes += run.lengths[index]
            for index in range(target_count):
                if output.buckets[index]:
                    segments[index].append(output.buckets[index])
                bucket_bytes[index] += output.bucket_bytes[index]
        runtime.metrics.counter(
            "shuffle_routing_seconds_total", stage=stage_name
        ).inc(time.perf_counter() - started)
        if run_files:
            # Spilled runs are disk I/O, not network traffic: the write
            # happened in the map task, the read happens in the reduce task,
            # both metered here from the run metadata (deterministic under
            # every backend).
            runtime.metrics.counter(
                "shuffle_spill_total", stage=stage_name
            ).inc(len(run_files))
            runtime.record_transfer(
                TransferKind.SPILL, f"{stage_name}.spill", spill_write_bytes
            )
            runtime.record_transfer(
                TransferKind.SPILL, f"{stage_name}.fetch", fetch_bytes
            )
        runtime.record_shuffle_buckets(
            stage_name, bucket_bytes,
            bucket_segments=[len(bucket) for bucket in segments],
            bucket_spills=bucket_spills,
        )

        new_partitions = runtime.run_stage(
            f"{stage_name}.reduce",
            _ShuffleReduceTask(merge_combiners),
            list(enumerate(segments)),
        )
        for path in run_files:
            if os.path.exists(path):
                os.remove(path)
        return Distributed(runtime, new_partitions, name=stage_name)

    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        n_partitions: int | None = None,
        name: str | None = None,
    ) -> "Distributed":
        return self.combine_by_key(
            create_combiner=_identity,
            merge_value=fn,
            merge_combiners=fn,
            n_partitions=n_partitions,
            name=name or f"{self.name}.reduceByKey",
        )

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def collect(self, name: str | None = None) -> list[Any]:
        """Materialize and pull every element to the driver (metered)."""
        stage_name = name or f"{self.name}.collect"
        flat = [item for partition in self._materialize() for item in partition]
        self.runtime.record_transfer(
            TransferKind.COLLECT, stage_name, estimate_bytes(flat)
        )
        return flat

    def count(self, name: str | None = None) -> int:
        """Materialize and count the elements.

        Only the per-partition counts cross the wire, so one scalar's worth
        of bytes is charged under a stable ``"<name>.count"`` stage name —
        greppable in the ledger and trace instead of hiding in a generic
        collect.
        """
        stage_name = name or f"{self.name}.count"
        total = sum(len(partition) for partition in self._materialize())
        self.runtime.record_transfer(
            TransferKind.COLLECT, stage_name, estimate_bytes(total)
        )
        return total

    def reduce(self, fn: Callable[[Any, Any], Any], name: str | None = None) -> Any:
        """Materialize, collect, and fold the elements on the driver."""
        items = self.collect(name=name or f"{self.name}.reduce")
        if not items:
            raise ValueError("reduce of an empty collection")
        accumulator = items[0]
        for item in items[1:]:
            accumulator = fn(accumulator, item)
        return accumulator

    def __repr__(self) -> str:
        return f"Distributed({self.name!r}, partitions={self.n_partitions})"
