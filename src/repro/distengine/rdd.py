"""A partitioned, Spark-like distributed collection.

:class:`Distributed` is the engine's RDD analogue.  Transformations execute
eagerly, one task per partition; every task runs through the runtime's
:class:`~repro.distengine.backends.Backend` (the stage-executor seam), which
times it and reports to the owning runtime so a stage's duration can later
be replayed under any cluster size.  Wide operations (``combine_by_key``)
move data between partitions and charge the shuffle ledger, narrow ones
(``map``/``map_partitions``) do not — the same distinction Spark draws.

All stage payloads here are module-level callables holding their captured
values as attributes, so they stay picklable and every transformation works
unchanged under the process backend (provided the user-supplied functions
are themselves picklable).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

from .shuffle import TransferKind, estimate_bytes, stable_hash

__all__ = ["Distributed"]


class _ElementTask:
    """``map`` payload: apply ``fn`` to every element of a partition."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, _index: int, items: list[Any]) -> list[Any]:
        return [self.fn(item) for item in items]


class _FilterTask:
    """``filter`` payload: keep the elements satisfying ``predicate``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable[[Any], bool]):
        self.predicate = predicate

    def __call__(self, _index: int, items: list[Any]) -> list[Any]:
        return [item for item in items if self.predicate(item)]


class _PartitionTask:
    """``map_partitions`` payload: apply ``fn`` to the whole partition."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[list[Any]], Iterable[Any]]):
        self.fn = fn

    def __call__(self, _index: int, items: list[Any]) -> Iterable[Any]:
        return self.fn(items)


class _CombineMapTask:
    """Map-side of ``combine_by_key``: pre-combine values within a partition.

    Returns a single-element partition holding the ``key -> combiner`` dict,
    so the pre-combined data flows back through the stage seam like any
    other task result.
    """

    __slots__ = ("create_combiner", "merge_value")

    def __init__(self, create_combiner, merge_value):
        self.create_combiner = create_combiner
        self.merge_value = merge_value

    def __call__(self, _index: int, items: list[Any]) -> list[dict]:
        combiners: dict[Any, Any] = {}
        for key, value in items:
            if key in combiners:
                combiners[key] = self.merge_value(combiners[key], value)
            else:
                combiners[key] = self.create_combiner(value)
        return [combiners]


class _CombineReduceTask:
    """Reduce-side of ``combine_by_key``: merge one bucket's combiners."""

    __slots__ = ("merge_combiners",)

    def __init__(self, merge_combiners):
        self.merge_combiners = merge_combiners

    def __call__(self, _index: int, pairs: list[tuple]) -> list[tuple]:
        bucket: dict[Any, Any] = {}
        for key, combiner in pairs:
            if key in bucket:
                bucket[key] = self.merge_combiners(bucket[key], combiner)
            else:
                bucket[key] = combiner
        return list(bucket.items())


def _identity(value: Any) -> Any:
    """Module-level identity so ``reduce_by_key`` stays picklable."""
    return value


class Distributed:
    """An eagerly evaluated, partitioned collection bound to a runtime.

    The collection takes ownership of ``partitions`` without copying: every
    construction site (``parallelize``/``from_partitions`` ingestion, stage
    results) already hands over freshly built lists, so the old defensive
    per-stage O(n) copy bought nothing (see DESIGN.md "Execution
    backends" for the measurement).  Callers that need an independent
    snapshot should use :meth:`glom`.
    """

    __slots__ = ("runtime", "partitions", "name")

    def __init__(self, runtime, partitions: list[list[Any]], name: str = "rdd"):
        self.runtime = runtime
        self.partitions = partitions
        self.name = name

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def glom(self) -> list[list[Any]]:
        """The partition structure as a list of lists (like Spark's glom)."""
        return [list(partition) for partition in self.partitions]

    def persist(self) -> "Distributed":
        """No-op cache marker; data already lives in memory."""
        return self

    # ------------------------------------------------------------------
    # Narrow transformations (no shuffle)
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], name: str | None = None) -> "Distributed":
        return self.map_partitions_with_index(
            _ElementTask(fn), name=name or f"{self.name}.map"
        )

    def filter(
        self, predicate: Callable[[Any], bool], name: str | None = None
    ) -> "Distributed":
        return self.map_partitions_with_index(
            _FilterTask(predicate), name=name or f"{self.name}.filter"
        )

    def map_partitions(
        self,
        fn: Callable[[list[Any]], Iterable[Any]],
        name: str | None = None,
    ) -> "Distributed":
        return self.map_partitions_with_index(
            _PartitionTask(fn), name=name or f"{self.name}.mapPartitions"
        )

    def map_partitions_with_index(
        self,
        fn: Callable[[int, list[Any]], Iterable[Any]],
        name: str | None = None,
    ) -> "Distributed":
        """Apply ``fn(partition_index, items)`` to each partition, timed.

        Execution, per-task timing, and fault-injection retries all happen
        inside the runtime's backend (see
        :func:`repro.distengine.backends.execute_task`); this method only
        names the stage and wraps the results.
        """
        stage_name = name or f"{self.name}.mapPartitionsWithIndex"
        new_partitions = self.runtime.run_stage(
            stage_name, fn, list(enumerate(self.partitions))
        )
        return Distributed(self.runtime, new_partitions, name=stage_name)

    # ------------------------------------------------------------------
    # Wide transformation (shuffle)
    # ------------------------------------------------------------------
    def combine_by_key(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        n_partitions: int | None = None,
        name: str | None = None,
    ) -> "Distributed":
        """Group ``(key, value)`` elements by key, Spark's combineByKey.

        Values are pre-combined inside each source partition (a timed
        map-side stage), the partial combiners are hash-partitioned across
        the network (charged to the shuffle ledger; placement uses
        :func:`~repro.distengine.shuffle.stable_hash`, so it is identical
        across processes and ``PYTHONHASHSEED`` values), then merged per
        target partition (a timed reduce-side stage).
        """
        stage_name = name or f"{self.name}.combineByKey"
        target_count = n_partitions or self.n_partitions or 1

        partial_maps = self.runtime.run_stage(
            f"{stage_name}.map",
            _CombineMapTask(create_combiner, merge_value),
            list(enumerate(self.partitions)),
        )

        # Driver-side shuffle routing: deterministic bucket placement and
        # byte accounting.  Pairs are routed in (source partition, insertion)
        # order so the reduce-side merges are order-identical under every
        # backend.
        shuffled_bytes = 0
        routed: list[list[tuple]] = [[] for _ in range(target_count)]
        for (combiners,) in partial_maps:
            for key, combiner in combiners.items():
                bucket_index = stable_hash(key) % target_count
                shuffled_bytes += estimate_bytes(key) + estimate_bytes(combiner)
                routed[bucket_index].append((key, combiner))
        self.runtime.record_transfer(TransferKind.SHUFFLE, stage_name, shuffled_bytes)

        new_partitions = self.runtime.run_stage(
            f"{stage_name}.reduce",
            _CombineReduceTask(merge_combiners),
            list(enumerate(routed)),
        )
        return Distributed(self.runtime, new_partitions, name=stage_name)

    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        n_partitions: int | None = None,
        name: str | None = None,
    ) -> "Distributed":
        return self.combine_by_key(
            create_combiner=_identity,
            merge_value=fn,
            merge_combiners=fn,
            n_partitions=n_partitions,
            name=name or f"{self.name}.reduceByKey",
        )

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def collect(self, name: str | None = None) -> list[Any]:
        """Pull every element to the driver; charged to the collect ledger."""
        stage_name = name or f"{self.name}.collect"
        flat = [item for partition in self.partitions for item in partition]
        self.runtime.record_transfer(
            TransferKind.COLLECT, stage_name, estimate_bytes(flat)
        )
        return flat

    def count(self) -> int:
        return sum(len(partition) for partition in self.partitions)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        items = self.collect(name=f"{self.name}.reduce")
        if not items:
            raise ValueError("reduce of an empty collection")
        accumulator = items[0]
        for item in items[1:]:
            accumulator = fn(accumulator, item)
        return accumulator

    def __repr__(self) -> str:
        return f"Distributed({self.name!r}, partitions={self.n_partitions})"
