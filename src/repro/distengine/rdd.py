"""A partitioned, Spark-like distributed collection.

:class:`Distributed` is the engine's RDD analogue.  Transformations execute
eagerly, one task per partition; each task is timed and reported to the
owning runtime so a stage's duration can later be replayed under any cluster
size.  Wide operations (``combine_by_key``) move data between partitions and
charge the shuffle ledger, narrow ones (``map``/``map_partitions``) do not —
the same distinction Spark draws.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from typing import Any

from .faults import TaskFailedError
from .shuffle import TransferKind, estimate_bytes

__all__ = ["Distributed"]


class Distributed:
    """An eagerly evaluated, partitioned collection bound to a runtime."""

    __slots__ = ("runtime", "partitions", "name")

    def __init__(self, runtime, partitions: list[list[Any]], name: str = "rdd"):
        self.runtime = runtime
        self.partitions = [list(partition) for partition in partitions]
        self.name = name

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def glom(self) -> list[list[Any]]:
        """The partition structure as a list of lists (like Spark's glom)."""
        return [list(partition) for partition in self.partitions]

    def persist(self) -> "Distributed":
        """No-op cache marker; data already lives in memory."""
        return self

    # ------------------------------------------------------------------
    # Narrow transformations (no shuffle)
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], name: str | None = None) -> "Distributed":
        return self.map_partitions(
            lambda items: [fn(item) for item in items],
            name=name or f"{self.name}.map",
        )

    def filter(
        self, predicate: Callable[[Any], bool], name: str | None = None
    ) -> "Distributed":
        return self.map_partitions(
            lambda items: [item for item in items if predicate(item)],
            name=name or f"{self.name}.filter",
        )

    def map_partitions(
        self,
        fn: Callable[[list[Any]], Iterable[Any]],
        name: str | None = None,
    ) -> "Distributed":
        return self.map_partitions_with_index(
            lambda _index, items: fn(items), name=name or f"{self.name}.mapPartitions"
        )

    def map_partitions_with_index(
        self,
        fn: Callable[[int, list[Any]], Iterable[Any]],
        name: str | None = None,
    ) -> "Distributed":
        """Apply ``fn(partition_index, items)`` to each partition, timed.

        With a fault injector configured on the runtime, attempts chosen by
        the injector fail after doing their work (the lost attempt's
        duration still counts toward the stage, as on a real cluster) and
        the task is retried up to the injector's budget.
        """
        stage_name = name or f"{self.name}.mapPartitionsWithIndex"
        injector = getattr(self.runtime, "fault_injector", None)
        new_partitions = []
        durations = []
        for index, items in enumerate(self.partitions):
            task_time = 0.0
            attempt = 0
            while True:
                started = time.perf_counter()
                result = list(fn(index, items))
                task_time += time.perf_counter() - started
                failed = injector is not None and injector.should_fail(
                    stage_name, index, attempt
                )
                if not failed:
                    break
                # The attempt's work is lost but its time was spent.
                self.runtime.count_task_failure(stage_name)
                attempt += 1
                if attempt > injector.max_retries:
                    raise TaskFailedError(
                        f"task {index} of stage {stage_name!r} failed "
                        f"{attempt} times"
                    )
            durations.append(task_time)
            new_partitions.append(result)
        self.runtime.record_stage(stage_name, durations)
        return Distributed(self.runtime, new_partitions, name=stage_name)

    # ------------------------------------------------------------------
    # Wide transformation (shuffle)
    # ------------------------------------------------------------------
    def combine_by_key(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        n_partitions: int | None = None,
        name: str | None = None,
    ) -> "Distributed":
        """Group ``(key, value)`` elements by key, Spark's combineByKey.

        Values are pre-combined inside each source partition (timed as the
        map side), the partial combiners are hash-partitioned across the
        network (charged to the shuffle ledger), then merged per target
        partition (timed as the reduce side).
        """
        stage_name = name or f"{self.name}.combineByKey"
        target_count = n_partitions or self.n_partitions or 1

        map_durations = []
        partial_maps: list[dict[Any, Any]] = []
        for items in self.partitions:
            started = time.perf_counter()
            combiners: dict[Any, Any] = {}
            for key, value in items:
                if key in combiners:
                    combiners[key] = merge_value(combiners[key], value)
                else:
                    combiners[key] = create_combiner(value)
            map_durations.append(time.perf_counter() - started)
            partial_maps.append(combiners)
        self.runtime.record_stage(f"{stage_name}.map", map_durations)

        shuffled_bytes = 0
        buckets: list[dict[Any, Any]] = [{} for _ in range(target_count)]
        reduce_durations = [0.0] * target_count
        for combiners in partial_maps:
            for key, combiner in combiners.items():
                bucket_index = hash(key) % target_count
                shuffled_bytes += estimate_bytes(key) + estimate_bytes(combiner)
                bucket = buckets[bucket_index]
                started = time.perf_counter()
                if key in bucket:
                    bucket[key] = merge_combiners(bucket[key], combiner)
                else:
                    bucket[key] = combiner
                reduce_durations[bucket_index] += time.perf_counter() - started
        self.runtime.ledger.record(TransferKind.SHUFFLE, stage_name, shuffled_bytes)
        self.runtime.record_stage(f"{stage_name}.reduce", reduce_durations)

        new_partitions = [list(bucket.items()) for bucket in buckets]
        return Distributed(self.runtime, new_partitions, name=stage_name)

    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        n_partitions: int | None = None,
        name: str | None = None,
    ) -> "Distributed":
        return self.combine_by_key(
            create_combiner=lambda value: value,
            merge_value=fn,
            merge_combiners=fn,
            n_partitions=n_partitions,
            name=name or f"{self.name}.reduceByKey",
        )

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def collect(self, name: str | None = None) -> list[Any]:
        """Pull every element to the driver; charged to the collect ledger."""
        stage_name = name or f"{self.name}.collect"
        flat = [item for partition in self.partitions for item in partition]
        self.runtime.ledger.record(
            TransferKind.COLLECT, stage_name, estimate_bytes(flat)
        )
        return flat

    def count(self) -> int:
        return sum(len(partition) for partition in self.partitions)

    def reduce(self, fn: Callable[[Any, Any], Any]) -> Any:
        items = self.collect(name=f"{self.name}.reduce")
        if not items:
            raise ValueError("reduce of an empty collection")
        accumulator = items[0]
        for item in items[1:]:
            accumulator = fn(accumulator, item)
        return accumulator

    def __repr__(self) -> str:
        return f"Distributed({self.name!r}, partitions={self.n_partitions})"
