"""A partitioned, Spark-like distributed collection with lazy lineage.

:class:`Distributed` is the engine's RDD analogue.  Transformations are
**lazy**: ``map``/``filter``/``map_partitions``/``map_partitions_with_index``
(and the map half of ``combine_by_key``) append a
:class:`~repro.distengine.plan.PlanNode` to a lineage DAG and return
immediately.  Actions (``collect``, ``count``, ``reduce``, ``glom``, and the
shuffle barrier inside ``combine_by_key``) hand the DAG to the plan layer
(:mod:`repro.distengine.plan`), which fuses each maximal chain of narrow
transformations into one composed task per partition before dispatching
through ``runtime.run_plan`` — a ``map → filter → map`` pipeline costs one
stage, not three, and the fused stage carries the composite name
(``"map+filter+..."``) into spans, reports, and the retry path.

``persist()`` is a real materialization barrier: the partitions are cached
at first materialization (metered by ``partitions_cached_total``) and
reused on every later access (``cache_hits_total``) until ``unpersist()``
or ``runtime.close()`` evicts them.  ``ClusterConfig(eager=True)`` restores
the legacy stage-per-transformation dispatch — every transformation
materializes immediately under its legacy stage name — for A/B comparison
(see ``benchmarks/bench_plan.py``).

Wide operations (``combine_by_key``) still move data between partitions and
charge the shuffle ledger; narrow ones do not — the same distinction Spark
draws.  All stage payloads remain module-level callables holding their
captured values as attributes, so they stay picklable and every
transformation works unchanged under the process backend (provided the
user-supplied functions are themselves picklable).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

from .plan import LogicalPlan, PlanNode
from .shuffle import TransferKind, estimate_bytes, stable_hash

__all__ = ["Distributed"]


class _ElementTask:
    """``map`` payload: apply ``fn`` to every element of a partition."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[Any], Any]):
        self.fn = fn

    def __call__(self, _index: int, items: list[Any]) -> list[Any]:
        return [self.fn(item) for item in items]


class _FilterTask:
    """``filter`` payload: keep the elements satisfying ``predicate``."""

    __slots__ = ("predicate",)

    def __init__(self, predicate: Callable[[Any], bool]):
        self.predicate = predicate

    def __call__(self, _index: int, items: list[Any]) -> list[Any]:
        return [item for item in items if self.predicate(item)]


class _PartitionTask:
    """``map_partitions`` payload: apply ``fn`` to the whole partition."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[list[Any]], Iterable[Any]]):
        self.fn = fn

    def __call__(self, _index: int, items: list[Any]) -> Iterable[Any]:
        return self.fn(items)


class _CombineMapTask:
    """Map-side of ``combine_by_key``: pre-combine values within a partition.

    Returns a single-element partition holding the ``key -> combiner`` dict,
    so the pre-combined data flows back through the stage seam like any
    other task result.
    """

    __slots__ = ("create_combiner", "merge_value")

    def __init__(self, create_combiner, merge_value):
        self.create_combiner = create_combiner
        self.merge_value = merge_value

    def __call__(self, _index: int, items: list[Any]) -> list[dict]:
        combiners: dict[Any, Any] = {}
        for key, value in items:
            if key in combiners:
                combiners[key] = self.merge_value(combiners[key], value)
            else:
                combiners[key] = self.create_combiner(value)
        return [combiners]


class _CombineReduceTask:
    """Reduce-side of ``combine_by_key``: merge one bucket's combiners."""

    __slots__ = ("merge_combiners",)

    def __init__(self, merge_combiners):
        self.merge_combiners = merge_combiners

    def __call__(self, _index: int, pairs: list[tuple]) -> list[tuple]:
        bucket: dict[Any, Any] = {}
        for key, combiner in pairs:
            if key in bucket:
                bucket[key] = self.merge_combiners(bucket[key], combiner)
            else:
                bucket[key] = combiner
        return list(bucket.items())


def _identity(value: Any) -> Any:
    """Module-level identity so ``reduce_by_key`` stays picklable."""
    return value


class Distributed:
    """A lazily evaluated, partitioned collection bound to a runtime.

    The collection takes ownership of ``partitions`` without copying: every
    construction site (``parallelize``/``from_partitions`` ingestion,
    shuffle results) already hands over freshly built lists.  Callers that
    need an independent snapshot should use :meth:`glom`.
    """

    __slots__ = ("runtime", "name", "node")

    def __init__(
        self,
        runtime,
        partitions: list[list[Any]] | None = None,
        name: str = "rdd",
        node: PlanNode | None = None,
    ):
        self.runtime = runtime
        self.name = name
        if node is None:
            node = PlanNode(
                "source", label=name, node_id=runtime.next_plan_id()
            )
            node.cached = partitions if partitions is not None else []
            if partitions:
                # Source data is a driver-resident cache like any persist
                # tap; under a memory budget it becomes spillable too.
                runtime.admit_cache(node)
        self.node = node

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def n_partitions(self) -> int:
        """Partition count, known without materializing (narrow ops keep it)."""
        node = self.node
        while node.cached is None:
            node = node.parent
        return len(node.cached)

    def glom(self) -> list[list[Any]]:
        """The materialized partition structure (like Spark's glom).

        Returns copies, so mutating them never corrupts a persist cache.
        """
        return [list(partition) for partition in self._materialize()]

    def persist(self) -> "Distributed":
        """Mark this collection as a materialization barrier.

        The partitions are cached at first materialization — when fusion
        reaches a persisted node it taps the fused task's intermediate
        output, so the cache fills without a dedicated stage — and reused
        until :meth:`unpersist` or ``runtime.close()`` evicts them.
        Persisting a source is a no-op: its partitions already live on the
        driver.
        """
        node = self.node
        if node.is_source or node.persisted:
            return self
        node.persisted = True
        self.runtime.register_persist(node)
        if node.cached is not None:  # eager mode materialized it already
            self.runtime.count_partitions_cached(len(node.cached))
        return self

    def unpersist(self) -> "Distributed":
        """Evict this collection's cached partitions (metered)."""
        self.runtime.evict(self.node)
        return self

    def explain(self) -> str:
        """Deterministic rendering of the lineage and its physical stages."""
        return LogicalPlan(self.node, self.runtime.plan_optimizer).explain()

    def _materialize(self) -> list[list[Any]]:
        return self.runtime.materialize(self.node)

    # ------------------------------------------------------------------
    # Narrow transformations (no shuffle)
    # ------------------------------------------------------------------
    def _derive(
        self,
        op: str,
        fn: Callable[[int, list[Any]], Iterable[Any]],
        name: str | None,
        default_suffix: str,
    ) -> "Distributed":
        """Append one narrow node to the lineage (dispatching it if eager).

        In eager mode the node's label falls back to the legacy
        ``"<parent>.<op>"`` stage name, so the stage-per-op dispatch is
        name-identical to the pre-plan engine; in fused mode an anonymous
        node contributes just its operator label to the composite name.
        """
        runtime = self.runtime
        label = name or (f"{self.name}.{default_suffix}" if runtime.eager else None)
        node = PlanNode(
            op, label=label, fn=fn, parent=self.node,
            node_id=runtime.next_plan_id(),
        )
        derived = Distributed(
            runtime, name=name or f"{self.name}.{default_suffix}", node=node
        )
        if runtime.eager:
            node.cached = runtime.materialize(node)
            node.release()
            runtime.admit_cache(node)
        return derived

    def map(self, fn: Callable[[Any], Any], name: str | None = None) -> "Distributed":
        return self._derive("map", _ElementTask(fn), name, "map")

    def filter(
        self, predicate: Callable[[Any], bool], name: str | None = None
    ) -> "Distributed":
        return self._derive("filter", _FilterTask(predicate), name, "filter")

    def map_partitions(
        self,
        fn: Callable[[list[Any]], Iterable[Any]],
        name: str | None = None,
    ) -> "Distributed":
        return self._derive(
            "mapPartitions", _PartitionTask(fn), name, "mapPartitions"
        )

    def map_partitions_with_index(
        self,
        fn: Callable[[int, list[Any]], Iterable[Any]],
        name: str | None = None,
    ) -> "Distributed":
        """Lazily apply ``fn(partition_index, items)`` to each partition.

        Execution happens at the next action: the plan layer fuses this
        node with its narrow neighbours and the runtime's backend executes
        the composed task (see
        :func:`repro.distengine.backends.execute_task`), which times it
        and applies fault-injection retries.
        """
        return self._derive(
            "mapPartitionsWithIndex", fn, name, "mapPartitionsWithIndex"
        )

    # ------------------------------------------------------------------
    # Wide transformation (shuffle)
    # ------------------------------------------------------------------
    def combine_by_key(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        n_partitions: int | None = None,
        name: str | None = None,
    ) -> "Distributed":
        """Group ``(key, value)`` elements by key, Spark's combineByKey.

        The map side is a narrow node — it fuses with upstream
        transformations — but the shuffle is a barrier: the lineage up to
        the map side materializes here.  Partial combiners are
        hash-partitioned across the network (charged to the shuffle
        ledger; placement uses
        :func:`~repro.distengine.shuffle.stable_hash`, so it is identical
        across processes and ``PYTHONHASHSEED`` values), then merged per
        target partition.  The result is a new source node: shuffled data
        has no narrow lineage to recompute from.
        """
        stage_name = name or f"{self.name}.combineByKey"
        target_count = n_partitions or self.n_partitions or 1

        map_node = PlanNode(
            "combineByKey.map",
            label=f"{stage_name}.map",
            fn=_CombineMapTask(create_combiner, merge_value),
            parent=self.node,
            node_id=self.runtime.next_plan_id(),
        )
        partial_maps = self.runtime.materialize(map_node)

        # Driver-side shuffle routing: deterministic bucket placement and
        # byte accounting.  Pairs are routed in (source partition, insertion)
        # order so the reduce-side merges are order-identical under every
        # backend.
        shuffled_bytes = 0
        routed: list[list[tuple]] = [[] for _ in range(target_count)]
        for (combiners,) in partial_maps:
            for key, combiner in combiners.items():
                bucket_index = stable_hash(key) % target_count
                shuffled_bytes += estimate_bytes(key) + estimate_bytes(combiner)
                routed[bucket_index].append((key, combiner))
        self.runtime.record_transfer(TransferKind.SHUFFLE, stage_name, shuffled_bytes)

        new_partitions = self.runtime.run_stage(
            f"{stage_name}.reduce",
            _CombineReduceTask(merge_combiners),
            list(enumerate(routed)),
        )
        return Distributed(self.runtime, new_partitions, name=stage_name)

    def reduce_by_key(
        self,
        fn: Callable[[Any, Any], Any],
        n_partitions: int | None = None,
        name: str | None = None,
    ) -> "Distributed":
        return self.combine_by_key(
            create_combiner=_identity,
            merge_value=fn,
            merge_combiners=fn,
            n_partitions=n_partitions,
            name=name or f"{self.name}.reduceByKey",
        )

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------
    def collect(self, name: str | None = None) -> list[Any]:
        """Materialize and pull every element to the driver (metered)."""
        stage_name = name or f"{self.name}.collect"
        flat = [item for partition in self._materialize() for item in partition]
        self.runtime.record_transfer(
            TransferKind.COLLECT, stage_name, estimate_bytes(flat)
        )
        return flat

    def count(self, name: str | None = None) -> int:
        """Materialize and count the elements.

        Only the per-partition counts cross the wire, so one scalar's worth
        of bytes is charged under a stable ``"<name>.count"`` stage name —
        greppable in the ledger and trace instead of hiding in a generic
        collect.
        """
        stage_name = name or f"{self.name}.count"
        total = sum(len(partition) for partition in self._materialize())
        self.runtime.record_transfer(
            TransferKind.COLLECT, stage_name, estimate_bytes(total)
        )
        return total

    def reduce(self, fn: Callable[[Any, Any], Any], name: str | None = None) -> Any:
        """Materialize, collect, and fold the elements on the driver."""
        items = self.collect(name=name or f"{self.name}.reduce")
        if not items:
            raise ValueError("reduce of an empty collection")
        accumulator = items[0]
        for item in items[1:]:
            accumulator = fn(accumulator, item)
        return accumulator

    def __repr__(self) -> str:
        return f"Distributed({self.name!r}, partitions={self.n_partitions})"
