"""Shuffle accounting: how many bytes move across the simulated network.

The paper analyses DBTF's shuffled-data volume (Lemmas 6-7): the unfolded
tensors are shuffled once during partitioning, after which only factor-matrix
broadcasts and per-column error collections cross the network.  The ledger
records every transfer so the experiments can verify those bounds.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
import weakref
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from .broadcast import BroadcastHandle

__all__ = [
    "ShuffleLedger",
    "estimate_bytes",
    "estimate_bytes_cached",
    "estimate_pair_bytes",
    "stable_hash",
    "TransferKind",
    "HANDLE_WIRE_BYTES",
]


class TransferKind:
    """Categories of network transfer the ledger distinguishes.

    ``TASK`` is the serialized task payload the driver ships to workers at
    stage launch — the closure-capture cost Spark charges per task.  Before
    the broadcast-handle plane this traffic was invisible; metering it is
    what makes the handle-vs-closure comparison honest.

    ``SPILL`` is local disk I/O of the out-of-core storage tier (cache
    spill and load under a memory budget).  It is metered through the same
    ledger so spill traffic shows up next to network traffic in reports,
    but the cost replay charges it against disk bandwidth, not as bytes
    crossing the simulated network.
    """

    SHUFFLE = "shuffle"
    BROADCAST = "broadcast"
    COLLECT = "collect"
    TASK = "task"
    SPILL = "spill"

    ALL = (SHUFFLE, BROADCAST, COLLECT, TASK, SPILL)


#: What a :class:`BroadcastHandle` costs on the wire inside a task payload:
#: the content id, the name, and two small integers — not the value.
HANDLE_WIRE_BYTES = 32


def estimate_bytes(obj: object) -> int:
    """Approximate serialized size of a Python object, recursively.

    Numpy buffers dominate DBTF's traffic, so those are exact; containers
    add a small per-element overhead; broadcast handles cost their fixed
    wire size (never the value they reference); payload objects — slotted
    task callables and plain attribute-carrying instances — recurse over
    their attributes so closure-captured arrays are counted at full size.
    Everything else falls back to ``sys.getsizeof``.
    """
    return _estimate(obj, None)


def _estimate(obj: object, seen: "set[int] | None") -> int:
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, BroadcastHandle):
        return HANDLE_WIRE_BYTES
    if isinstance(obj, dict):
        return (
            sum(_estimate(k, seen) + _estimate(v, seen) for k, v in obj.items())
            + 8
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(_estimate(item, seen) for item in obj) + 8
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    words = getattr(obj, "words", None)
    if isinstance(words, np.ndarray):  # BitMatrix and friends
        return int(words.nbytes)
    attrs = _payload_attrs(obj)
    if attrs is not None:
        if seen is None:
            seen = set()
        if id(obj) in seen:  # cycle guard for self-referential payloads
            return 0
        seen.add(id(obj))
        return sum(_estimate(value, seen) for value in attrs) + 8
    return sys.getsizeof(obj)


#: Identity-keyed memo for :func:`estimate_bytes_cached`.  Entries evict
#: themselves when the object is collected, so a recycled ``id()`` can never
#: serve a stale size; the guard ``ref() is obj`` covers the window where the
#: callback has not run yet.
_SIZE_CACHE: "dict[int, tuple[weakref.ref, int]]" = {}


def _evict_size(obj_id: int) -> None:
    _SIZE_CACHE.pop(obj_id, None)


def estimate_bytes_cached(obj: object) -> int:
    """Like :func:`estimate_bytes`, memoized per live object identity.

    Broadcast payloads and packed combiners are sized repeatedly — once per
    fingerprint, once per ledger charge, once per spill decision — and the
    recursive walk over a factor-matrix payload is not free.  This caches
    the measured size against the object's identity via a weak reference,
    so re-sizing the same live object is a dict hit.

    Only weakref-able objects are memoized (plain instances, ndarrays);
    dicts, lists, and slotted payloads without ``__weakref__`` fall through
    to a fresh walk.  Callers must treat memoized objects as immutable —
    the broadcast plane already requires that of its payloads.
    """
    if obj is None:
        return 0
    obj_id = id(obj)
    hit = _SIZE_CACHE.get(obj_id)
    if hit is not None:
        ref, size = hit
        if ref() is obj:
            return size
    size = _estimate(obj, None)
    try:
        ref = weakref.ref(obj, lambda _ref, _id=obj_id: _evict_size(_id))
    except TypeError:
        return size
    _SIZE_CACHE[obj_id] = (ref, size)
    return size


def estimate_pair_bytes(pairs) -> int:
    """Total wire size of an iterable of ``(key, combiner)`` pairs.

    One batched call replaces a per-pair ``estimate_bytes(key) +
    estimate_bytes(combiner)`` loop; the common shuffle shapes — integer
    keys, packed ndarray combiners — take inlined fast paths that bypass
    the recursive dispatch while producing *exactly* the same sum, so the
    ledger charge is bit-equal to the legacy per-pair accounting.
    """
    total = 0
    for key, value in pairs:
        total += 8 if type(key) is int else _estimate(key, None)
        total += (
            int(value.nbytes)
            if type(value) is np.ndarray
            else _estimate(value, None)
        )
    return total


def _payload_attrs(obj: object) -> "list | None":
    """Attribute values of a payload-like object, or ``None`` to fall back.

    Task payloads in this engine are slotted callables carrying their
    captured values as attributes; configs and tensors are plain instances
    with a ``__dict__``.  Objects with neither (functions, builtins) keep
    the ``getsizeof`` fallback.
    """
    values: list = []
    found_slots = False
    for klass in type(obj).__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            found_slots = True
            values.append(getattr(obj, name, None))
    instance_dict = getattr(obj, "__dict__", None)
    if instance_dict:
        values.extend(instance_dict.values())
        return values
    return values if found_slots else None


def _hash_bytes(key: object) -> bytes:
    """Canonical byte encoding of a shuffle key, type-tagged per element.

    Beyond shuffle keys this also has to fingerprint broadcast payloads
    (for ``ClusterConfig(dedup_broadcasts=True)``), so numpy arrays hash
    their dtype, shape, and raw buffer, and lists hash element-wise like
    tuples (with a distinct tag).
    """
    if key is None:
        return b"n"
    if isinstance(key, (bool, np.bool_)):
        return b"b1" if key else b"b0"
    if isinstance(key, (int, np.integer)):
        return b"i" + str(int(key)).encode("ascii")
    if isinstance(key, (float, np.floating)):
        return b"f" + float(key).hex().encode("ascii")
    if isinstance(key, str):
        return b"s" + key.encode("utf-8")
    if isinstance(key, (bytes, bytearray)):
        return b"y" + bytes(key)
    if isinstance(key, np.ndarray):
        header = f"{key.dtype.str}:{key.shape}:".encode("ascii")
        return b"a" + header + np.ascontiguousarray(key).tobytes()
    if isinstance(key, (tuple, list)):
        # Hash each element first so variable-length parts cannot collide
        # across positions.
        digests = b"".join(
            hashlib.blake2b(_hash_bytes(item), digest_size=8).digest()
            for item in key
        )
        return (b"t" if isinstance(key, tuple) else b"l") + digests
    words = getattr(key, "words", None)
    if isinstance(words, np.ndarray):  # BitMatrix and friends
        return b"w" + type(key).__name__.encode("utf-8") + b":" + _hash_bytes(words)
    # Content ids key the worker-side broadcast store, so the fallback must
    # reflect the value, not its (possibly content-free) repr.
    try:
        return b"p" + pickle.dumps(key, protocol=4)
    except Exception:
        return b"r" + repr(key).encode("utf-8")


def stable_hash(key: object) -> int:
    """A 64-bit hash that is identical across processes and interpreter runs.

    The builtin ``hash`` is salted per process (``PYTHONHASHSEED``), so
    using it for shuffle placement would scatter keys differently between
    driver and pool workers — and between two runs of the same experiment.
    Shuffle bucket assignment therefore uses this blake2b-based hash, which
    depends only on the key's value.
    """
    digest = hashlib.blake2b(_hash_bytes(key), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass
class ShuffleLedger:
    """Accumulates bytes moved over the simulated network, by kind and stage."""

    by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    by_stage: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, kind: str, stage: str, n_bytes: int) -> None:
        if kind not in TransferKind.ALL:
            raise ValueError(f"unknown transfer kind {kind!r}")
        if n_bytes < 0:
            raise ValueError(f"negative byte count {n_bytes}")
        self.by_kind[kind] += n_bytes
        self.by_stage[stage] += n_bytes

    @property
    def total_bytes(self) -> int:
        return sum(self.by_kind.values())

    def bytes_of_kind(self, kind: str) -> int:
        return self.by_kind.get(kind, 0)

    def reset(self) -> None:
        self.by_kind.clear()
        self.by_stage.clear()

    def summary(self) -> dict[str, int]:
        """A plain-dict snapshot for reports."""
        return {kind: self.by_kind.get(kind, 0) for kind in TransferKind.ALL}
