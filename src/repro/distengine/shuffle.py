"""Shuffle accounting: how many bytes move across the simulated network.

The paper analyses DBTF's shuffled-data volume (Lemmas 6-7): the unfolded
tensors are shuffled once during partitioning, after which only factor-matrix
broadcasts and per-column error collections cross the network.  The ledger
records every transfer so the experiments can verify those bounds.
"""

from __future__ import annotations

import sys
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ShuffleLedger", "estimate_bytes", "TransferKind"]


class TransferKind:
    """Categories of network transfer the ledger distinguishes."""

    SHUFFLE = "shuffle"
    BROADCAST = "broadcast"
    COLLECT = "collect"

    ALL = (SHUFFLE, BROADCAST, COLLECT)


def estimate_bytes(obj: object) -> int:
    """Approximate serialized size of a Python object, recursively.

    Numpy buffers dominate DBTF's traffic, so those are exact; containers
    add a small per-element overhead; everything else falls back to
    ``sys.getsizeof``.
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, np.integer, np.floating)):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if isinstance(obj, dict):
        return sum(estimate_bytes(k) + estimate_bytes(v) for k, v in obj.items()) + 8
    if isinstance(obj, (list, tuple, set, frozenset)):
        return sum(estimate_bytes(item) for item in obj) + 8
    nbytes = getattr(obj, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    words = getattr(obj, "words", None)
    if isinstance(words, np.ndarray):  # BitMatrix and friends
        return int(words.nbytes)
    return sys.getsizeof(obj)


@dataclass
class ShuffleLedger:
    """Accumulates bytes moved over the simulated network, by kind and stage."""

    by_kind: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    by_stage: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def record(self, kind: str, stage: str, n_bytes: int) -> None:
        if kind not in TransferKind.ALL:
            raise ValueError(f"unknown transfer kind {kind!r}")
        if n_bytes < 0:
            raise ValueError(f"negative byte count {n_bytes}")
        self.by_kind[kind] += n_bytes
        self.by_stage[stage] += n_bytes

    @property
    def total_bytes(self) -> int:
        return sum(self.by_kind.values())

    def bytes_of_kind(self, kind: str) -> int:
        return self.by_kind.get(kind, 0)

    def reset(self) -> None:
        self.by_kind.clear()
        self.by_stage.clear()

    def summary(self) -> dict[str, int]:
        """A plain-dict snapshot for reports."""
        return {kind: self.by_kind.get(kind, 0) for kind in TransferKind.ALL}
