"""Job-scoped runtime leases over one shared worker pool.

A long-lived service runs many decomposition jobs concurrently, but a
:class:`~repro.distengine.runtime.SimulatedRuntime` carries per-run
measurement state — the shuffle ledger, stage reports, persist caches,
broadcast store, metrics registry, trace buffers.  Sharing one runtime
across jobs would bleed one tenant's bytes and counters into another's;
giving every job its own worker pool would pay pool startup per job and
oversubscribe the host.

:class:`RuntimeFactory` splits the two lifetimes: it owns exactly one
stage-executor backend (the expensive, shared part) and hands out
:class:`RuntimeLease`\\ s, each wrapping a *fresh* ``SimulatedRuntime`` that
executes through the shared backend but owns every piece of measurement
state privately.  Closing a lease releases the job's state — persist
caches evicted, broadcast spill files removed — while the pool stays warm
for the next job.  Closing the factory tears down the pool (and any lease
leaked by a crashed job, so spill directories can never outlive the
service).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .backends import make_backend
from .cluster import DEFAULT_CLUSTER, ClusterConfig
from .runtime import SimulatedRuntime

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from ..observability import MetricsRegistry, Tracer
    from ..resilience import RetryPolicy, SpeculationConfig
    from .backends import Backend
    from .faults import FaultInjector

__all__ = ["RuntimeFactory", "RuntimeLease"]


class RuntimeLease:
    """One job's private runtime view over a shared backend.

    Usable as a context manager; :meth:`close` releases the runtime's
    job-scoped state (persist caches, broadcast spill files, counters)
    without touching the shared worker pool.  Closing twice is a no-op.
    """

    def __init__(self, factory: "RuntimeFactory", runtime: SimulatedRuntime):
        self._factory = factory
        self.runtime = runtime
        self.closed = False

    def __enter__(self) -> SimulatedRuntime:
        return self.runtime

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        # The runtime was built with owns_backend=False, so this evicts
        # caches and removes spill files but leaves the pool running.
        self.runtime.close()
        self._factory._release(self)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"RuntimeLease({state}, backend={type(self.runtime.backend).__name__})"


class RuntimeFactory:
    """Owns one shared backend; leases isolated runtimes to jobs.

    Every lease's runtime gets its own ledger, stage reports, metrics
    registry, tracer, plan state, and broadcast store — only the worker
    pool is shared, which is exactly the state whose startup cost and host
    footprint must be paid once per service, not once per job.
    """

    def __init__(self, config: ClusterConfig = DEFAULT_CLUSTER):
        self.config = config
        self.backend: "Backend" = make_backend(config.backend, config.n_workers)
        self._open: list[RuntimeLease] = []
        self.closed = False

    def lease(
        self,
        config: "ClusterConfig | None" = None,
        fault_injector: "FaultInjector | None" = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        speculation: "SpeculationConfig | None" = None,
    ) -> RuntimeLease:
        """A fresh isolated runtime executing through the shared pool.

        ``config`` may override the cluster *model* per job (machine count,
        fusion mode, tracing) but never the backend — the worker pool is
        the factory's.  A job-scoped config naming a different backend is a
        caller bug and refused loudly rather than silently ignored.
        """
        if self.closed:
            raise RuntimeError("RuntimeFactory is closed")
        job_config = config if config is not None else self.config
        if job_config.backend != self.config.backend:
            raise ValueError(
                f"lease config names backend {job_config.backend!r} but the "
                f"shared pool is {self.config.backend!r}; per-job configs "
                f"may not switch backends"
            )
        runtime = SimulatedRuntime(
            job_config,
            fault_injector=fault_injector,
            backend=self.backend,
            tracer=tracer,
            metrics=metrics,
            retry_policy=retry_policy,
            speculation=speculation,
            owns_backend=False,
        )
        lease = RuntimeLease(self, runtime)
        self._open.append(lease)
        return lease

    def _release(self, lease: RuntimeLease) -> None:
        if lease in self._open:
            self._open.remove(lease)

    @property
    def open_leases(self) -> int:
        """Number of leases handed out and not yet closed (leak audit)."""
        return len(self._open)

    def close(self) -> None:
        """Close any leaked leases, then shut down the shared pool."""
        if self.closed:
            return
        for lease in list(self._open):
            lease.close()
        self.closed = True
        self.backend.close()

    def __enter__(self) -> "RuntimeFactory":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RuntimeFactory(backend={self.config.backend!r}, "
            f"open_leases={self.open_leases}, closed={self.closed})"
        )
