"""Simulated distributed engine (the offline Spark stand-in)."""

from ..observability import MetricsRegistry, SpanKind, Tracer
from ..resilience import RetryPolicy, SpeculationConfig, plan_speculation
from .backends import (
    BACKEND_NAMES,
    Backend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from .broadcast import Broadcast, BroadcastHandle
from .cluster import DEFAULT_CLUSTER, ClusterConfig
from .faults import FaultInjector, InjectedTaskFailure, TaskFailedError
from .lease import RuntimeFactory, RuntimeLease
from .plan import FusedChainTask, LogicalPlan, PhysicalStage, PlanNode, PlanOptimizer
from .rdd import Distributed, ShuffleMapOutput
from .runtime import ExecutionReport, SimulatedRuntime, StageReport
from .scheduler import assign_tasks, makespan
from .shuffle import (
    ShuffleLedger,
    TransferKind,
    estimate_bytes,
    estimate_bytes_cached,
    estimate_pair_bytes,
    stable_hash,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "Broadcast",
    "BroadcastHandle",
    "FaultInjector",
    "InjectedTaskFailure",
    "TaskFailedError",
    "ClusterConfig",
    "DEFAULT_CLUSTER",
    "Distributed",
    "ShuffleMapOutput",
    "LogicalPlan",
    "PlanNode",
    "PlanOptimizer",
    "PhysicalStage",
    "FusedChainTask",
    "RuntimeFactory",
    "RuntimeLease",
    "SimulatedRuntime",
    "StageReport",
    "ExecutionReport",
    "ShuffleLedger",
    "TransferKind",
    "estimate_bytes",
    "estimate_bytes_cached",
    "estimate_pair_bytes",
    "stable_hash",
    "makespan",
    "assign_tasks",
    "Tracer",
    "SpanKind",
    "MetricsRegistry",
    "RetryPolicy",
    "SpeculationConfig",
    "plan_speculation",
]
