"""Cluster model for the simulated distributed engine.

The paper runs DBTF on Spark over a driver plus 16 workers, each with 8
usable cores (Sec. IV-A.2).  Offline we cannot run Spark, so the engine
executes partition tasks sequentially *while measuring them*, and this module
holds the cost-model parameters used to replay those measurements under any
cluster size (see :mod:`repro.distengine.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..resilience import SpeculationConfig
from .backends import BACKEND_NAMES

__all__ = ["ClusterConfig", "DEFAULT_CLUSTER"]


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of the simulated cluster.

    Attributes
    ----------
    n_machines:
        Worker (executor) count.  The paper's cluster has 16.
    cores_per_machine:
        Concurrent tasks per worker.  The paper uses 8 cores per executor.
    network_bytes_per_sec:
        Effective point-to-point bandwidth used to convert recorded shuffle
        and broadcast bytes into time.
    task_launch_overhead_sec:
        Fixed scheduling/serialization cost per task wave, modelling Spark's
        task-dispatch latency.  This is what makes tiny tensors *slower*
        distributed than single-machine, as the paper observes for the 2^6
        tensor in Fig. 1(a).
    driver_latency_sec:
        Fixed driver-side cost per stage — job scheduling, collecting the
        per-column errors, updating the column — which no amount of workers
        parallelizes.  This serial fraction is why the paper's Fig. 7
        speed-up is sublinear (2.2x from 4 to 16 machines).
    backend:
        How partition tasks *actually execute on the host*: ``"serial"``
        (inline, the default), ``"thread"``, or ``"process"`` (real
        multi-core parallelism).  The cost model above is backend-invariant
        — it consumes measured per-task durations, not wall-clock order —
        so this only changes how fast the host finishes, never the
        simulated measurements.
    n_workers:
        Worker-pool size for the thread/process backends (``None`` uses
        the host's CPU count).  Unrelated to ``n_machines``, which is the
        *simulated* cluster size.
    tracing:
        Collect a structured span trace (``stage → task → kernel`` plus
        transfer events) on the runtime's
        :class:`~repro.observability.Tracer`.  The trace *structure* is
        backend-invariant; only wall-clock fields differ.  Off by default
        because per-task span collection is not free.
    speculation:
        Straggler thresholds for modelled speculative execution
        (:class:`~repro.resilience.SpeculationConfig`); the runtime folds
        speculative duplicates into the simulated makespan and reports
        them as counters/events.  ``None`` (the default) disables
        speculation entirely.
    eager:
        ``True`` restores the legacy stage-per-transformation dispatch:
        every narrow transformation materializes immediately under its own
        stage name instead of fusing into one composed stage per chain at
        the next action.  Kept for A/B comparison of the plan layer
        (``benchmarks/bench_plan.py``); results and metered bytes are
        identical either way, only the dispatched-stage count differs.
    dedup_broadcasts:
        ``True`` makes the runtime serve a broadcast whose content hash
        matches an earlier payload from the driver's cache without
        recharging the ledger.  Off by default: the reproduced lemma
        measurements deliberately count repeated per-iteration broadcast
        volume (see docs/plan.md).
    handle_broadcasts:
        ``True`` (the default) makes the factor-update hot path reference
        broadcast values through :class:`~repro.distengine.broadcast.
        BroadcastHandle` ids inside task payloads and ship only packed
        per-column deltas, instead of embedding the factor arrays in every
        per-column task closure.  Factors and error traces are identical
        either way; only the metered task-payload bytes differ.  ``False``
        restores the legacy closure-capture path for A/B measurement
        (``benchmarks/bench_update.py``).
    kernel_tier:
        Kernel-dispatch tier applied process-wide when the runtime is
        built (see :mod:`repro.bitops.dispatch`): ``"fixed"`` (heuristics
        with configurable thresholds, the default behavior), ``"auto"``
        (autotuned per shape-class with a persistent cache),
        ``"reference"`` (always the loop-form reference), or a registered
        implementation name to force it.  ``None`` (the default) leaves
        the process configuration — environment variables or an earlier
        ``configure_kernels`` call — untouched.
    autotune_cache:
        Path of the autotune cache file (or directory) used by the
        ``"auto"`` tier and for threshold overrides.  ``None`` keeps the
        current process configuration.
    memory_budget:
        Byte ceiling for driver-resident partition caches.  When set, the
        runtime routes plan caches through the out-of-core storage tier
        (:mod:`repro.storage`): least-recently-used caches spill to disk
        and page back on access, transparently and bit-identically, with
        the I/O metered as :attr:`~repro.distengine.shuffle.TransferKind.
        SPILL`.  ``None`` (the default) disables the tier entirely — no
        storage objects are constructed and the hot paths pay one ``None``
        check.
    spill_dir:
        Parent directory for the storage tier's spill files (a unique
        subdirectory is created inside it per runtime).  ``None`` uses the
        system temp dir.  Only meaningful with ``memory_budget`` set.
    worker_shuffle:
        ``True`` (the default) routes ``combine_by_key`` through the
        worker-side shuffle plane: each map task buckets its partial
        combiners by destination partition *inside the worker* and returns
        per-bucket payloads with byte totals pre-measured, so the driver
        does O(partitions) routing instead of touching every pair — and,
        under ``memory_budget``, oversized combiner state spills sorted
        runs to disk instead of accumulating unbounded.  ``False``
        restores the legacy driver-side per-pair routing loop for A/B
        measurement (``benchmarks/bench_shuffle.py``); results, metered
        shuffle bytes, and per-bucket observability are identical either
        way.
    """

    n_machines: int = 16
    cores_per_machine: int = 8
    network_bytes_per_sec: float = 1.0e9
    #: Effective local-disk bandwidth used to convert storage-tier spill
    #: bytes into time in the cost replay (zero spill bytes without a
    #: memory budget, so the default replay is unaffected).
    disk_bytes_per_sec: float = 2.0e9
    task_launch_overhead_sec: float = 0.004
    driver_latency_sec: float = 0.003
    backend: str = "serial"
    n_workers: int | None = None
    tracing: bool = False
    speculation: SpeculationConfig | None = None
    eager: bool = False
    dedup_broadcasts: bool = False
    handle_broadcasts: bool = True
    kernel_tier: str | None = None
    autotune_cache: str | None = None
    memory_budget: int | None = None
    spill_dir: str | None = None
    worker_shuffle: bool = True

    def __post_init__(self) -> None:
        if self.n_machines <= 0:
            raise ValueError(f"n_machines must be positive, got {self.n_machines}")
        if self.cores_per_machine <= 0:
            raise ValueError(
                f"cores_per_machine must be positive, got {self.cores_per_machine}"
            )
        if self.network_bytes_per_sec <= 0:
            raise ValueError("network_bytes_per_sec must be positive")
        if self.disk_bytes_per_sec <= 0:
            raise ValueError("disk_bytes_per_sec must be positive")
        if self.task_launch_overhead_sec < 0:
            raise ValueError("task_launch_overhead_sec must be non-negative")
        if self.driver_latency_sec < 0:
            raise ValueError("driver_latency_sec must be non-negative")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"backend must be one of {BACKEND_NAMES}, got {self.backend!r}"
            )
        if self.n_workers is not None and self.n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {self.n_workers}")
        if self.kernel_tier is not None and not self.kernel_tier:
            raise ValueError("kernel_tier must be a non-empty string or None")
        if self.memory_budget is not None and self.memory_budget <= 0:
            raise ValueError(
                f"memory_budget must be positive, got {self.memory_budget}"
            )

    @property
    def total_slots(self) -> int:
        """Number of tasks that can run concurrently across the cluster."""
        return self.n_machines * self.cores_per_machine

    def with_machines(self, n_machines: int) -> "ClusterConfig":
        """The same cluster with a different machine count."""
        return replace(self, n_machines=n_machines)

    def with_backend(
        self, backend: str, n_workers: int | None = None
    ) -> "ClusterConfig":
        """The same cluster executing its stages on a different backend."""
        return replace(self, backend=backend, n_workers=n_workers)

    def with_tracing(self, tracing: bool = True) -> "ClusterConfig":
        """The same cluster with span tracing switched on (or off)."""
        return replace(self, tracing=tracing)

    def with_speculation(
        self, speculation: "SpeculationConfig | None"
    ) -> "ClusterConfig":
        """The same cluster with speculative execution (re)configured."""
        return replace(self, speculation=speculation)

    def with_eager(self, eager: bool = True) -> "ClusterConfig":
        """The same cluster with legacy eager dispatch switched on (or off)."""
        return replace(self, eager=eager)

    def with_broadcast_dedup(self, dedup: bool = True) -> "ClusterConfig":
        """The same cluster with content-hash broadcast dedup toggled."""
        return replace(self, dedup_broadcasts=dedup)

    def with_handle_broadcasts(self, handles: bool = True) -> "ClusterConfig":
        """The same cluster with the broadcast-handle hot path toggled."""
        return replace(self, handle_broadcasts=handles)

    def with_memory_budget(
        self, memory_budget: int | None, spill_dir: str | None = None
    ) -> "ClusterConfig":
        """The same cluster with the out-of-core storage tier configured."""
        return replace(self, memory_budget=memory_budget, spill_dir=spill_dir)

    def with_worker_shuffle(self, worker_shuffle: bool = True) -> "ClusterConfig":
        """The same cluster with worker-side shuffle routing toggled."""
        return replace(self, worker_shuffle=worker_shuffle)

    def with_kernel_tier(
        self, kernel_tier: str | None, autotune_cache: str | None = None
    ) -> "ClusterConfig":
        """The same cluster with a kernel-dispatch tier (and cache) set."""
        return replace(
            self, kernel_tier=kernel_tier, autotune_cache=autotune_cache
        )


DEFAULT_CLUSTER = ClusterConfig()
