"""Cluster model for the simulated distributed engine.

The paper runs DBTF on Spark over a driver plus 16 workers, each with 8
usable cores (Sec. IV-A.2).  Offline we cannot run Spark, so the engine
executes partition tasks sequentially *while measuring them*, and this module
holds the cost-model parameters used to replay those measurements under any
cluster size (see :mod:`repro.distengine.scheduler`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ClusterConfig", "DEFAULT_CLUSTER"]


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of the simulated cluster.

    Attributes
    ----------
    n_machines:
        Worker (executor) count.  The paper's cluster has 16.
    cores_per_machine:
        Concurrent tasks per worker.  The paper uses 8 cores per executor.
    network_bytes_per_sec:
        Effective point-to-point bandwidth used to convert recorded shuffle
        and broadcast bytes into time.
    task_launch_overhead_sec:
        Fixed scheduling/serialization cost per task wave, modelling Spark's
        task-dispatch latency.  This is what makes tiny tensors *slower*
        distributed than single-machine, as the paper observes for the 2^6
        tensor in Fig. 1(a).
    driver_latency_sec:
        Fixed driver-side cost per stage — job scheduling, collecting the
        per-column errors, updating the column — which no amount of workers
        parallelizes.  This serial fraction is why the paper's Fig. 7
        speed-up is sublinear (2.2x from 4 to 16 machines).
    """

    n_machines: int = 16
    cores_per_machine: int = 8
    network_bytes_per_sec: float = 1.0e9
    task_launch_overhead_sec: float = 0.004
    driver_latency_sec: float = 0.003

    def __post_init__(self) -> None:
        if self.n_machines <= 0:
            raise ValueError(f"n_machines must be positive, got {self.n_machines}")
        if self.cores_per_machine <= 0:
            raise ValueError(
                f"cores_per_machine must be positive, got {self.cores_per_machine}"
            )
        if self.network_bytes_per_sec <= 0:
            raise ValueError("network_bytes_per_sec must be positive")
        if self.task_launch_overhead_sec < 0:
            raise ValueError("task_launch_overhead_sec must be non-negative")
        if self.driver_latency_sec < 0:
            raise ValueError("driver_latency_sec must be non-negative")

    @property
    def total_slots(self) -> int:
        """Number of tasks that can run concurrently across the cluster."""
        return self.n_machines * self.cores_per_machine

    def with_machines(self, n_machines: int) -> "ClusterConfig":
        """The same cluster with a different machine count."""
        return ClusterConfig(
            n_machines=n_machines,
            cores_per_machine=self.cores_per_machine,
            network_bytes_per_sec=self.network_bytes_per_sec,
            task_launch_overhead_sec=self.task_launch_overhead_sec,
            driver_latency_sec=self.driver_latency_sec,
        )


DEFAULT_CLUSTER = ClusterConfig()
