"""Replay measured task durations under an arbitrary cluster size.

The engine executes all partition tasks sequentially on the host (there is
only one real core) but records each task's wall-clock duration.  This module
answers "how long would that stage have taken on M machines?" with the
classic longest-processing-time (LPT) greedy: sort tasks by decreasing
duration and always hand the next task to the least-loaded slot.  LPT is a
4/3-approximation of the optimal makespan, which is more than accurate enough
to reproduce the paper's machine-scalability curve (Fig. 7).

Resilience feeds in upstream of this module: the durations the runtime
replays here are *effective* per-task durations — measured compute time plus
each task's simulated retry-backoff wait, with stragglers capped at their
modelled speculative duplicate's finish time (see
:meth:`~repro.distengine.runtime.SimulatedRuntime.simulated_time` and
:func:`repro.resilience.plan_speculation`).
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

__all__ = ["makespan", "assign_tasks"]


def assign_tasks(durations: Sequence[float], n_slots: int) -> list[list[int]]:
    """LPT assignment of task indices to ``n_slots`` parallel slots."""
    if n_slots <= 0:
        raise ValueError(f"n_slots must be positive, got {n_slots}")
    if any(d < 0 for d in durations):
        raise ValueError("task durations must be non-negative")
    assignments: list[list[int]] = [[] for _ in range(n_slots)]
    # Heap of (load, slot) so the least-loaded slot is always on top.
    heap = [(0.0, slot) for slot in range(n_slots)]
    heapq.heapify(heap)
    order = sorted(range(len(durations)), key=lambda i: durations[i], reverse=True)
    for index in order:
        load, slot = heapq.heappop(heap)
        assignments[slot].append(index)
        heapq.heappush(heap, (load + durations[index], slot))
    return assignments


def makespan(durations: Sequence[float], n_slots: int) -> float:
    """Completion time of the stage when run on ``n_slots`` parallel slots."""
    if n_slots <= 0:
        raise ValueError(f"n_slots must be positive, got {n_slots}")
    if not durations:
        return 0.0
    if any(d < 0 for d in durations):
        raise ValueError("task durations must be non-negative")
    heap = [0.0] * n_slots
    for duration in sorted(durations, reverse=True):
        load = heapq.heappop(heap)
        heapq.heappush(heap, load + duration)
    return max(heap)
