"""The simulated distributed runtime: stages, timing, and cost replay.

This is the offline stand-in for a Spark cluster.  Work still *really runs*
on the host — through the configured stage-executor backend, which may be
sequential or genuinely parallel — but every partition task is timed and
every network transfer is metered, so :meth:`SimulatedRuntime.simulated_time`
can report what the same execution would have cost on an M-machine cluster.
The metered numbers are backend-invariant (see DESIGN.md §3 and "Execution
backends" for why this substitution preserves the paper's measurements).
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any

from ..observability import MetricsRegistry, SpanKind, Tracer
from ..resilience import RetryPolicy, SpeculationConfig, plan_speculation
from ..storage import MemoryBudget, PartitionSpillStore
from .backends import Backend, make_backend
from .broadcast import Broadcast
from .cluster import DEFAULT_CLUSTER, ClusterConfig
from .faults import FaultInjector
from .plan import FusedChainTask, LogicalPlan, PlanNode, PlanOptimizer
from .rdd import Distributed
from .scheduler import makespan
from .shuffle import (
    ShuffleLedger,
    TransferKind,
    estimate_bytes,
    estimate_bytes_cached,
    stable_hash,
)

__all__ = ["SimulatedRuntime", "StageReport", "ExecutionReport"]

#: Bucket bounds of the ``shuffle_bucket_bytes`` histogram.  The registry
#: default is tuned for task durations in seconds; shuffle buckets are byte
#: counts, so they get power-of-four byte bounds from one cache line up to
#: a paper-scale unfolding slab.
SHUFFLE_BYTE_BUCKETS = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216,
)


@dataclass(frozen=True)
class StageReport:
    """Measured task durations of one stage (one task per partition).

    ``retry_waits`` and ``failure_counts`` are the per-task simulated
    backoff waits and injected fault counts (empty tuples when the stage
    ran without a retry policy / injector — treated as all-zero by the
    cost replay).
    """

    name: str
    durations: tuple[float, ...]
    retry_waits: tuple[float, ...] = ()
    failure_counts: tuple[int, ...] = ()

    @property
    def n_tasks(self) -> int:
        return len(self.durations)

    @property
    def total_cpu_time(self) -> float:
        return sum(self.durations)

    @property
    def total_retry_wait(self) -> float:
        return sum(self.retry_waits)


@dataclass(frozen=True)
class ExecutionReport:
    """Cost summary of everything a runtime executed."""

    n_stages: int
    total_cpu_time: float
    shuffle_bytes: int
    broadcast_bytes: int
    collect_bytes: int
    simulated_time: float
    n_machines: int
    #: Resilience accounting (zero when no retry policy / speculation ran).
    total_retry_wait: float = 0.0
    tasks_speculated: int = 0
    speculative_wins: int = 0
    #: Serialized task-payload bytes shipped at stage launch (closure
    #: capture); already summed over tasks, crosses the network once.
    task_bytes: int = 0
    #: Local disk I/O of the out-of-core storage tier (cache spill + load
    #: under a memory budget); zero without one.  Deliberately excluded
    #: from :attr:`network_bytes` — spill traffic never crosses the wire.
    spill_bytes: int = 0

    @property
    def network_bytes(self) -> int:
        return (
            self.shuffle_bytes + self.broadcast_bytes + self.collect_bytes
            + self.task_bytes
        )


class SimulatedRuntime:
    """Executes distributed collections while metering time and traffic."""

    def __init__(
        self,
        config: ClusterConfig = DEFAULT_CLUSTER,
        fault_injector: "FaultInjector | None" = None,
        backend: "str | Backend | None" = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        retry_policy: "RetryPolicy | None" = None,
        speculation: "SpeculationConfig | None" = None,
        owns_backend: bool = True,
    ):
        self.config = config
        self.ledger = ShuffleLedger()
        self.stages: list[StageReport] = []
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy
        # An explicit speculation config overrides the cluster config's.
        self.speculation = (
            speculation if speculation is not None else config.speculation
        )
        #: ``(stage, partition)`` pairs whose fault count tripped the retry
        #: policy's ``blacklist_after`` threshold (observational, modelling
        #: Spark's executor blacklisting).
        self.blacklisted_partitions: set[tuple[str, int]] = set()
        self._broadcast_base_bytes = 0
        # Every runtime carries a metrics registry (counters are cheap and
        # back the task-failure facade); the tracer is opt-in via
        # ``ClusterConfig(tracing=True)`` or an explicit instance because
        # span collection inside every task is not free.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else (
            Tracer() if config.tracing else None
        )
        # Kernel-dispatch configuration must land before the backend is
        # built: process pools inherit the dispatcher via fork state or the
        # environment variables that configure() exports.
        if config.kernel_tier is not None or config.autotune_cache is not None:
            from ..bitops import dispatch as kernel_dispatch

            kernel_dispatch.configure(
                tier=config.kernel_tier, cache_path=config.autotune_cache
            )
        # `backend` overrides the cluster config's choice — handy for tests
        # that inject a pre-built (or instrumented) executor.
        self.backend = make_backend(
            backend if backend is not None else config.backend, config.n_workers
        )
        # A runtime leased over a shared pool (see ``distengine.lease``)
        # must not shut the pool down when the job finishes; only the pool
        # owner closes it.
        self._owns_backend = owns_backend
        self._closed = False
        # Plan layer: node ids are handed out in creation order (so
        # ``explain()`` output is deterministic), persisted nodes are
        # tracked for eviction, and repeated broadcast payloads can be
        # deduplicated by content hash when the cluster opts in.
        self.plan_optimizer = PlanOptimizer(fuse=not config.eager)
        self._plan_counter = 0
        # Shuffle ids are handed out per wide operation so every spill-run
        # file of every map task lands at a distinct, deterministic path.
        self._shuffle_counter = 0
        self._persisted_nodes: list[PlanNode] = []
        self._broadcast_cache: dict[int, Broadcast] = {}
        # Spill directory for broadcast values when the backend does not
        # share the driver's memory; created lazily, removed by close().
        self._spill_dir: str | None = None
        # Out-of-core storage tier: only constructed under an explicit
        # memory budget, so the default path pays one None check per cache
        # access and records zero storage spans/counters.
        self.storage: PartitionSpillStore | None = None
        if config.memory_budget is not None:
            self.storage = PartitionSpillStore(
                MemoryBudget(config.memory_budget, metrics=self.metrics),
                spill_dir=config.spill_dir,
                measure=estimate_bytes,
                record_io=self._record_spill_io,
                tracer=self.tracer,
            )
        # Memmap-backed unfolding files (built lazily by the first caller):
        # only meaningful alongside the storage tier, which also provides
        # the spill directory the files live under.
        self._unfolding_store = None

    @property
    def eager(self) -> bool:
        """Whether transformations dispatch immediately (legacy mode)."""
        return self.config.eager

    def close(self) -> None:
        """Evict every persist cache, then release execution resources.

        The worker pool is shut down only when this runtime owns it; a
        runtime leased over a shared backend releases all of its private
        state (caches, broadcast spill files) and leaves the pool warm.
        Idempotent, so leases and ``finally`` blocks may both call it.
        """
        if self._closed:
            return
        self._closed = True
        self.evict_all()
        if self._unfolding_store is not None:
            self._unfolding_store.close()
            self._unfolding_store = None
        if self.storage is not None:
            self.storage.close()
        if self._owns_backend:
            self.backend.close()
        if self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)
            self._spill_dir = None

    def __enter__(self) -> "SimulatedRuntime":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Data creation
    # ------------------------------------------------------------------
    def parallelize(
        self, items: list[Any], n_partitions: int | None = None, name: str = "data"
    ) -> Distributed:
        """Split a driver-side list into roughly equal contiguous partitions."""
        count = self.config.total_slots if n_partitions is None else n_partitions
        if count <= 0:
            raise ValueError(f"n_partitions must be positive, got {count}")
        items = list(items)
        partitions: list[list[Any]] = [[] for _ in range(count)]
        if items:
            base, extra = divmod(len(items), count)
            cursor = 0
            for index in range(count):
                size = base + (1 if index < extra else 0)
                partitions[index] = items[cursor : cursor + size]
                cursor += size
        return Distributed(self, partitions, name=name)

    def from_partitions(
        self, partitions: list[list[Any]], name: str = "data"
    ) -> Distributed:
        """Wrap pre-built partitions without re-splitting.

        This ingestion boundary is the one place partitions are copied:
        every downstream stage hands freshly built lists to
        :class:`Distributed`, which takes ownership without copying.
        """
        return Distributed(self, [list(p) for p in partitions], name=name)

    def unfolding_storage(self):
        """The runtime's memmap-backed unfolding store (budgeted runs only).

        Returns ``None`` when no memory budget is configured — the default
        path must build nothing and touch no disk.  Under a budget, a
        :class:`~repro.storage.MmapUnfoldingStore` is created lazily inside
        the spill store's directory, so one ``close()`` tears down both
        tiers and a leased runtime's unfolding files share its job-scoped
        spill root.
        """
        if self.storage is None:
            return None
        if self._unfolding_store is None:
            from ..storage import MmapUnfoldingStore

            self._unfolding_store = MmapUnfoldingStore(
                os.path.join(self.storage.directory, "unfoldings")
            )
        return self._unfolding_store

    def broadcast(self, value: Any, name: str = "broadcast") -> Broadcast:
        """Ship one read-only copy of ``value`` toward every machine.

        Returns a content-addressed
        :class:`~repro.distengine.broadcast.BroadcastHandle`.  Task
        payloads embed the handle instead of the value: pickling a handle
        drops the value, so referencing a broadcast from N per-column tasks
        costs N × ~32 bytes instead of N copies of the arrays.  When the
        backend does not share driver memory (process pools) the value is
        spilled once to a content-addressed file that worker processes load
        on first resolution — one transfer per worker per value, which is
        exactly what the single BROADCAST ledger charge models.

        With ``ClusterConfig(dedup_broadcasts=True)`` a payload whose
        content hash matches an earlier broadcast is served from the
        driver's cache: nothing is charged to the ledger and
        ``broadcast_dedup_hits_total`` is incremented.  Off by default —
        several reproduced lemma measurements count repeated broadcast
        volume deliberately (see docs/plan.md).
        """
        fingerprint = stable_hash(value)
        content_id = f"{fingerprint:016x}"
        if self.config.dedup_broadcasts:
            cached = self._broadcast_cache.get(fingerprint)
            if cached is not None:
                self.metrics.counter(
                    "broadcast_dedup_hits_total", broadcast=name
                ).inc()
                return Broadcast(
                    cached.value, content_id, name, cached.n_bytes,
                    cached.spill_path,
                )
        # Broadcast payloads are fingerprinted, sized, and (under process
        # backends) spilled — the memoized sizer makes the repeated walks
        # over one factor-matrix payload a dict hit.
        n_bytes = estimate_bytes_cached(value)
        self._broadcast_base_bytes += n_bytes
        # The ledger stores the per-machine copy; replay multiplies by M.
        self.record_transfer(TransferKind.BROADCAST, name, n_bytes)
        result = Broadcast(
            value, content_id, name, n_bytes, self._spill(content_id, value)
        )
        if self.config.dedup_broadcasts:
            self._broadcast_cache[fingerprint] = result
        return result

    def _spill(self, content_id: str, value: Any) -> str | None:
        """Write ``value`` where worker processes can load it, if needed.

        Spill files are content-addressed, so re-broadcasting an equal
        value reuses the existing file.  Returns ``None`` under backends
        whose workers already see driver memory.
        """
        if self.backend.shares_driver_memory:
            return None
        if self._spill_dir is None:
            self._spill_dir = tempfile.mkdtemp(prefix="repro-broadcast-")
        path = os.path.join(self._spill_dir, content_id + ".pkl")
        if not os.path.exists(path):
            staging = path + ".tmp"
            with open(staging, "wb") as stream:
                pickle.dump(value, stream, protocol=4)
            os.replace(staging, path)
        return path

    # ------------------------------------------------------------------
    # Plan layer: lazy lineage, fusion, persist caches
    # ------------------------------------------------------------------
    def next_plan_id(self) -> int:
        """Deterministic lineage-node id (creation order per runtime)."""
        self._plan_counter += 1
        return self._plan_counter

    def materialize(self, node: PlanNode) -> list[list]:
        """Partitions of ``node``, dispatching whatever stages are missing."""
        return LogicalPlan(node, self.plan_optimizer).execute(self)

    def register_persist(self, node: PlanNode) -> None:
        """Track a persisted node so ``close()`` can evict its cache."""
        if node not in self._persisted_nodes:
            self._persisted_nodes.append(node)

    def evict(self, node: PlanNode, count: bool = True) -> None:
        """Drop one node's cached partitions (and its persist registration)."""
        if node in self._persisted_nodes:
            self._persisted_nodes.remove(node)
        node.persisted = False
        if node.cached is not None and not node.is_source:
            if count:
                self.metrics.counter("partitions_evicted_total").inc(
                    len(node.cached)
                )
            node.cached = None
        if self.storage is not None:
            self.storage.discard(node)

    def evict_all(self, count: bool = True) -> None:
        """Evict every registered persist cache (``close()``/``reset()``)."""
        for node in list(self._persisted_nodes):
            self.evict(node, count=count)

    def count_partitions_cached(self, n_partitions: int) -> None:
        self.metrics.counter("partitions_cached_total").inc(n_partitions)

    def count_cache_hits(self, n_partitions: int) -> None:
        self.metrics.counter("cache_hits_total").inc(n_partitions)

    # ------------------------------------------------------------------
    # Out-of-core storage tier (no-ops without a memory budget)
    # ------------------------------------------------------------------
    def cached_partitions(self, node: PlanNode) -> "list[list] | None":
        """The partitions behind ``node.cached``, paging spilled ones in."""
        if self.storage is not None:
            return self.storage.fetch(node)
        return node.cached

    def admit_cache(self, node: PlanNode) -> None:
        """Hand a freshly cached node to the storage tier for budgeting."""
        if self.storage is not None:
            self.storage.admit(node)

    def _record_spill_io(self, stage: str, n_bytes: int) -> None:
        """Ledger/metrics/trace entry for one storage spill or load."""
        self.record_transfer(TransferKind.SPILL, stage, n_bytes)

    def run_plan(
        self,
        stage_name: str,
        fns: list,
        indexed_partitions,
        tap_positions=(),
    ) -> tuple[list[list], list[tuple[int, list[list]]]]:
        """Execute a fused chain of narrow task functions as one stage.

        ``fns`` are applied in order inside a single
        :class:`~repro.distengine.plan.FusedChainTask` per partition;
        ``tap_positions`` name the chain positions whose intermediate
        output must come back for persist caches.  Single-function chains
        skip the wrapper entirely, so an unfused stage is bit-for-bit the
        legacy dispatch.  Returns ``(final_partitions, tapped)`` with
        ``tapped`` sorted by chain position; all metering — durations,
        counters, retries, speculation, spans — flows through
        :meth:`run_stage` under the composite ``stage_name``.
        """
        if len(fns) == 1 and not tap_positions:
            return self.run_stage(stage_name, fns[0], indexed_partitions), []
        task = FusedChainTask(fns, tap_positions)
        wrapped = self.run_stage(stage_name, task, indexed_partitions)
        finals: list[list] = []
        tapped: dict[int, list[list]] = {
            position: [] for position in tap_positions
        }
        for partition in wrapped:
            final, captured = partition[0]
            finals.append(final)
            for position, intermediate in captured:
                tapped[position].append(intermediate)
        return finals, sorted(tapped.items())

    # ------------------------------------------------------------------
    # Stage execution and metering
    # ------------------------------------------------------------------
    def run_stage(self, stage_name: str, task_fn, indexed_partitions) -> list[list]:
        """Execute one stage through the backend and meter the outcome.

        Returns the produced partitions ordered by partition index; the
        measured per-task durations and fault-retry counts are recorded on
        this runtime.  This is the single choke point all task execution
        flows through, so serial, thread, and process backends feed the
        cost model — and the trace/metrics layer — identically.
        """
        tracing = self.tracer is not None
        # The serialized task payload ships to every task at stage launch —
        # Spark's closure-capture cost.  Metering it is what makes embedding
        # arrays in a payload visibly more expensive than referencing a
        # BroadcastHandle (~32 bytes on the wire).
        indexed_partitions = list(indexed_partitions)
        payload_bytes = estimate_bytes(task_fn)
        if payload_bytes and indexed_partitions:
            self.record_transfer(
                TransferKind.TASK, stage_name,
                payload_bytes * len(indexed_partitions),
            )
        started = time.perf_counter()
        stage = self.backend.run_stage(
            stage_name, task_fn, indexed_partitions, self.fault_injector,
            collect_trace=tracing, retry_policy=self.retry_policy,
        )
        wall_time = time.perf_counter() - started
        self.record_stage(
            stage_name, stage.durations,
            retry_waits=stage.retry_waits,
            failure_counts=stage.failure_counts,
        )

        registry = self.metrics
        registry.counter("stages_total").inc()
        registry.counter("tasks_total", stage=stage_name).inc(len(stage.durations))
        duration_histogram = registry.histogram(
            "task_duration_seconds", stage=stage_name
        )
        for duration in stage.durations:
            duration_histogram.observe(duration)
        failures = sum(stage.failure_counts)
        if failures:
            self.count_task_failure(stage_name, failures)
        total_wait = sum(stage.retry_waits)
        if total_wait > 0.0:
            wait_histogram = registry.histogram(
                "retry_wait_seconds", stage=stage_name
            )
            for wait in stage.retry_waits:
                if wait > 0.0:
                    wait_histogram.observe(wait)
            registry.counter("retry_wait_seconds_total").inc(total_wait)
        if self.retry_policy is not None and failures:
            for index, count in enumerate(stage.failure_counts):
                if (
                    self.retry_policy.should_blacklist(count)
                    and (stage_name, index) not in self.blacklisted_partitions
                ):
                    self.blacklisted_partitions.add((stage_name, index))
                    registry.counter(
                        "partitions_blacklisted_total", stage=stage_name
                    ).inc()
        plan = None
        if self.speculation is not None and failures:
            # The plan is a pure function of deterministic inputs (fault
            # counts, seeded backoff waits) plus measured durations; counts
            # and events are recorded here, the makespan effect is replayed
            # from the StageReport in ``simulated_time``.
            plan = plan_speculation(
                stage.durations, stage.retry_waits, stage.failure_counts,
                self.speculation,
            )
            if plan.speculated:
                registry.counter(
                    "tasks_speculated_total", stage=stage_name
                ).inc(len(plan.speculated))
                registry.counter(
                    "speculative_wins_total", stage=stage_name
                ).inc(len(plan.wins))
        # Worker-side metric increments (cache builds, bitmatrix op counts)
        # merge in partition order; counters commute, so the totals are
        # identical under every backend.
        for deltas in stage.metric_deltas:
            if deltas:
                registry.merge_deltas(deltas)

        if tracing:
            stage_span_id = self.tracer.add_span(
                stage_name, SpanKind.STAGE, start=started, duration=wall_time,
                n_tasks=len(stage.durations), task_failures=failures,
            )
            for task_trace in stage.traces:
                if task_trace is not None:
                    self.tracer.graft(stage_span_id, task_trace)
            if plan is not None:
                for index in plan.speculated:
                    self.tracer.event(
                        stage_name, SpanKind.SPECULATION, partition=index,
                        won=index in plan.wins,
                    )
        return stage.results

    def record_stage(
        self,
        name: str,
        durations: list[float],
        retry_waits: "list[float] | tuple[float, ...]" = (),
        failure_counts: "list[int] | tuple[int, ...]" = (),
    ) -> None:
        self.stages.append(
            StageReport(
                name, tuple(durations), tuple(retry_waits),
                tuple(failure_counts),
            )
        )

    # ------------------------------------------------------------------
    # Failure accounting (registry-backed facade)
    # ------------------------------------------------------------------
    def count_task_failure(self, stage: str, count: int = 1) -> None:
        """Compatible facade over ``task_failures_total`` in the registry."""
        self.metrics.counter("task_failures_total", stage=stage).inc(count)

    @property
    def task_failures(self) -> dict[str, int]:
        """Per-stage fault-retry counts, read back from the registry."""
        counters = self.metrics.counters().get("task_failures_total", {})
        return {
            dict(labels)["stage"]: int(value)
            for labels, value in counters.items()
        }

    @property
    def total_task_failures(self) -> int:
        return sum(self.task_failures.values())

    # ------------------------------------------------------------------
    # Network accounting
    # ------------------------------------------------------------------
    def record_transfer(self, kind: str, stage: str, n_bytes: int) -> None:
        """Meter one network transfer: ledger, metrics, and trace at once.

        This is the single entry point for shuffle/broadcast/collect bytes,
        so the byte attribution in the span tree always matches the ledger
        the cost model replays.
        """
        self.ledger.record(kind, stage, n_bytes)
        self.metrics.counter(
            "transfer_bytes_total", kind=kind, stage=stage
        ).inc(n_bytes)
        if self.tracer is not None:
            self.tracer.event(
                stage, SpanKind.TRANSFER, transfer=kind, bytes=int(n_bytes)
            )

    # ------------------------------------------------------------------
    # Shuffle plane (worker-side bucketed routing support)
    # ------------------------------------------------------------------
    def next_shuffle_id(self) -> int:
        """Deterministic per-runtime id of one wide (shuffling) operation."""
        self._shuffle_counter += 1
        return self._shuffle_counter

    def shuffle_spill_dir(self) -> "str | None":
        """Directory for map-side combiner spill runs, or ``None``.

        Only meaningful under a memory budget: the runs live inside the
        storage tier's spill directory, so one ``close()`` removes both
        and a leased runtime's shuffle runs share its job-scoped root.
        """
        if self.storage is None:
            return None
        return os.path.join(self.storage.directory, "shuffle")

    def record_shuffle_buckets(
        self,
        stage_name: str,
        bucket_bytes: "list[int]",
        bucket_segments: "list[int] | None" = None,
        bucket_spills: "list[int] | None" = None,
    ) -> None:
        """Meter one shuffle's reduce buckets: ledger, histogram, and events.

        The SHUFFLE ledger charge is the sum over buckets — identical to
        the legacy per-pair accounting — while the per-bucket breakdown
        lands in the ``shuffle_bucket_bytes`` histogram and one ``shuffle``
        span event per bucket fetch.  Both routing paths call this, so the
        observability surface is A/B- and backend-invariant.
        """
        self.record_transfer(
            TransferKind.SHUFFLE, stage_name, sum(bucket_bytes)
        )
        histogram = self.metrics.histogram(
            "shuffle_bucket_bytes", buckets=SHUFFLE_BYTE_BUCKETS,
            stage=stage_name,
        )
        for index, n_bytes in enumerate(bucket_bytes):
            histogram.observe(n_bytes)
            if self.tracer is not None:
                self.tracer.event(
                    stage_name, SpanKind.SHUFFLE, bucket=index,
                    bytes=int(n_bytes),
                    segments=(
                        bucket_segments[index]
                        if bucket_segments is not None else 1
                    ),
                    spilled=(
                        bucket_spills[index]
                        if bucket_spills is not None else 0
                    ),
                )

    def reset(self) -> None:
        self.ledger.reset()
        self.stages.clear()
        self.blacklisted_partitions.clear()
        self._broadcast_base_bytes = 0
        # Persist caches are measurement state too: evict silently (the
        # counters are being wiped anyway) so a reset runtime re-dispatches
        # from clean lineage.
        self.evict_all(count=False)
        self._broadcast_cache.clear()
        self.metrics.reset()
        if self.tracer is not None:
            self.tracer.reset()

    # ------------------------------------------------------------------
    # Cost replay
    # ------------------------------------------------------------------
    def simulated_time(self, n_machines: int | None = None) -> float:
        """Wall-clock estimate of this execution on an M-machine cluster.

        Per stage: the LPT makespan of its measured task durations over
        ``M × cores`` slots, a task-launch overhead per task wave, and a
        machine-independent driver latency (the serial fraction that makes
        real Spark speed-ups sublinear).  Network: shuffle, collect, and
        task-payload bytes cross the network once (the ledger already sums
        payloads over tasks); broadcast bytes are shipped once per machine.

        Resilience folds in here: each task's simulated retry-backoff wait
        extends its duration, and with speculation configured the modelled
        duplicate caps a straggler's completion at the duplicate's finish
        time (:func:`~repro.resilience.plan_speculation`) — so
        ``ExecutionReport`` charges what a real cluster would have paid for
        retries and recovered through speculation.
        """
        machines = n_machines if n_machines is not None else self.config.n_machines
        if machines <= 0:
            raise ValueError(f"n_machines must be positive, got {machines}")
        slots = machines * self.config.cores_per_machine
        compute = 0.0
        for stage in self.stages:
            if not stage.durations:
                continue
            waves = -(-stage.n_tasks // slots)  # ceil division
            compute += makespan(self._effective_durations(stage), slots)
            compute += waves * self.config.task_launch_overhead_sec
            compute += self.config.driver_latency_sec
        shuffle_bytes = self.ledger.bytes_of_kind(TransferKind.SHUFFLE)
        collect_bytes = self.ledger.bytes_of_kind(TransferKind.COLLECT)
        task_bytes = self.ledger.bytes_of_kind(TransferKind.TASK)
        network_bytes = (
            shuffle_bytes + collect_bytes + task_bytes
            + self._broadcast_base_bytes * machines
        )
        network_time = network_bytes / self.config.network_bytes_per_sec
        # Storage-tier spill/load is local disk I/O, not network traffic:
        # it extends the driver's critical path at disk bandwidth.  Zero
        # without a memory budget, so the default replay is unchanged.
        spill_bytes = self.ledger.bytes_of_kind(TransferKind.SPILL)
        spill_time = spill_bytes / self.config.disk_bytes_per_sec
        total = compute + network_time + spill_time
        # The cost replay (the scheduler's consumer) reports its split into
        # the registry so experiments can read compute vs. network shares.
        self.metrics.gauge("simulated_compute_seconds", machines=machines).set(
            compute
        )
        self.metrics.gauge("simulated_network_seconds", machines=machines).set(
            network_time
        )
        if spill_bytes:
            self.metrics.gauge(
                "simulated_spill_seconds", machines=machines
            ).set(spill_time)
        self.metrics.gauge("simulated_time_seconds", machines=machines).set(
            total
        )
        return total

    def _effective_durations(self, stage: StageReport) -> tuple[float, ...]:
        """A stage's per-task simulated durations with resilience applied.

        Without retry waits this is the measured durations unchanged (the
        pre-resilience cost model); with waits each task is extended by its
        simulated backoff, and with speculation configured stragglers are
        capped at their modelled duplicate's finish time.
        """
        if not stage.retry_waits or not any(stage.retry_waits):
            if self.speculation is None or not any(stage.failure_counts):
                return stage.durations
        if self.speculation is not None:
            plan = plan_speculation(
                stage.durations, stage.retry_waits, stage.failure_counts,
                self.speculation,
            )
            return plan.effective_durations
        waits = stage.retry_waits or (0.0,) * stage.n_tasks
        return tuple(
            duration + wait
            for duration, wait in zip(stage.durations, waits)
        )

    def report(self, n_machines: int | None = None) -> ExecutionReport:
        machines = n_machines if n_machines is not None else self.config.n_machines
        counters = self.metrics.counters()
        speculated = sum(
            counters.get("tasks_speculated_total", {}).values()
        )
        wins = sum(counters.get("speculative_wins_total", {}).values())
        return ExecutionReport(
            n_stages=len(self.stages),
            total_cpu_time=sum(stage.total_cpu_time for stage in self.stages),
            shuffle_bytes=self.ledger.bytes_of_kind(TransferKind.SHUFFLE),
            broadcast_bytes=self._broadcast_base_bytes * machines,
            collect_bytes=self.ledger.bytes_of_kind(TransferKind.COLLECT),
            simulated_time=self.simulated_time(machines),
            n_machines=machines,
            total_retry_wait=sum(
                stage.total_retry_wait for stage in self.stages
            ),
            tasks_speculated=int(speculated),
            speculative_wins=int(wins),
            task_bytes=self.ledger.bytes_of_kind(TransferKind.TASK),
            spill_bytes=self.ledger.bytes_of_kind(TransferKind.SPILL),
        )
