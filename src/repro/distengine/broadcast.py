"""Broadcast variables for the simulated distributed engine.

Mirrors Spark broadcasts: the driver ships one read-only copy of a value to
every machine.  DBTF broadcasts the three factor matrices each iteration
(paper Sec. III-E); the engine charges ``size × n_machines`` bytes of
network traffic for each broadcast when replaying the cost model.
"""

from __future__ import annotations

__all__ = ["Broadcast"]


class Broadcast:
    """A read-only value shipped to every worker."""

    __slots__ = ("_value", "name", "n_bytes")

    def __init__(self, value: object, name: str, n_bytes: int):
        self._value = value
        self.name = name
        self.n_bytes = n_bytes

    @property
    def value(self) -> object:
        return self._value

    def __repr__(self) -> str:
        return f"Broadcast({self.name!r}, {self.n_bytes} bytes)"
