"""Broadcast variables for the simulated distributed engine.

Mirrors Spark broadcasts: the driver ships one read-only copy of a value to
every machine.  DBTF broadcasts the three factor matrices each iteration
(paper Sec. III-E); the engine charges ``size × n_machines`` bytes of
network traffic for each broadcast when replaying the cost model.

:class:`BroadcastHandle` is what :meth:`SimulatedRuntime.broadcast` returns:
a first-class, content-addressed reference that task payloads embed *instead
of* the value itself.  Pickling a handle drops the value — only the content
id, the metadata, and (for process pools) a spill-file path cross the task
boundary — so a handle inside a task payload costs a few dozen bytes per
task while the value is transferred once per worker, exactly the Spark
semantics the closure-capture pattern was approximating.

Resolution is deliberately span- and metric-free: the serial and thread
backends resolve from driver memory while a process worker loads the spill
file once into its process-local store, and instrumenting that difference
would break the engine's backend-invariant trace structure.
"""

from __future__ import annotations

import pickle
from typing import Any

__all__ = ["Broadcast", "BroadcastHandle"]

#: Process-local broadcast store: ``content_id -> value``.  Each worker
#: process pays the deserialization once per distinct broadcast value, no
#: matter how many task payloads reference the handle.
_STORE: dict[str, Any] = {}

_MISSING = object()


def _store_size() -> int:
    """Number of distinct broadcast values resident in this process."""
    return len(_STORE)


def clear_store() -> None:
    """Drop every value from this process's broadcast store."""
    _STORE.clear()


class BroadcastHandle:
    """A content-addressed reference to a broadcast value.

    ``content_id`` is a stable content hash assigned by the runtime; two
    broadcasts of equal payloads share an id (and therefore a store entry
    and a spill file).  ``spill_path`` is set by the runtime when the
    backend does not share the driver's memory; it names a pickle of the
    value that any worker process can load.
    """

    __slots__ = ("content_id", "name", "n_bytes", "spill_path", "_value")

    def __init__(
        self,
        value: object,
        content_id: str,
        name: str,
        n_bytes: int,
        spill_path: str | None = None,
    ):
        self._value = value
        self.content_id = content_id
        self.name = name
        self.n_bytes = n_bytes
        self.spill_path = spill_path

    @property
    def value(self) -> object:
        """The broadcast value, resolved from the nearest copy.

        Driver-side (and under the serial/thread backends) this is the
        in-memory value.  In a process-pool worker the handle arrives
        without its value and resolves through the process-local store,
        loading the spill file on first use.
        """
        if self._value is not _MISSING:
            return self._value
        cached = _STORE.get(self.content_id, _MISSING)
        if cached is not _MISSING:
            self._value = cached
            return cached
        if self.spill_path is None:
            raise RuntimeError(
                f"broadcast {self.name!r} ({self.content_id}) has no value "
                f"in this process and no spill file to load it from"
            )
        with open(self.spill_path, "rb") as stream:
            loaded = pickle.load(stream)
        _STORE[self.content_id] = loaded
        self._value = loaded
        return loaded

    def __getstate__(self) -> tuple:
        # The value never rides inside a pickled handle — that is the whole
        # point.  Workers re-resolve through the store / spill file.
        return (self.content_id, self.name, self.n_bytes, self.spill_path)

    def __setstate__(self, state: tuple) -> None:
        self.content_id, self.name, self.n_bytes, self.spill_path = state
        self._value = _MISSING

    def __repr__(self) -> str:
        return (
            f"BroadcastHandle({self.name!r}, {self.n_bytes} bytes, "
            f"id={self.content_id})"
        )


#: Historical name; ``runtime.broadcast`` has always returned this type.
Broadcast = BroadcastHandle
