"""Process-wide memory budget with tracked allocation accounting.

The storage tier never inspects the host's real RSS — that would make spill
decisions racy and backend-dependent.  Instead every byte the tier holds
resident is *charged* to a :class:`MemoryBudget` when admitted and
*released* when spilled or discarded, all on the driver thread.  Spill
decisions are therefore a pure function of the admit/release sequence,
which is identical under the serial, thread, and process backends — the
same determinism argument the shuffle ledger makes for byte accounting.

Observability (all strictly gated on the tier being enabled, so a run with
``memory_budget=None`` reports zero storage metrics):

* ``storage_bytes_resident`` (gauge) — currently charged bytes;
* ``storage_bytes_spilled_total`` (counter) — bytes written to spill files;
* ``storage_spill_events_total`` (counter) — spill (eviction) count;
* ``storage_load_events_total`` (counter) — loads of spilled entries.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..observability import MetricsRegistry

__all__ = ["MemoryBudget", "parse_memory_size", "format_size"]

_SUFFIX_FACTORS = {
    "": 1,
    "B": 1,
    "K": 1024,
    "KB": 1024,
    "M": 1024 ** 2,
    "MB": 1024 ** 2,
    "G": 1024 ** 3,
    "GB": 1024 ** 3,
    "T": 1024 ** 4,
    "TB": 1024 ** 4,
}


def parse_memory_size(text: "str | int") -> int:
    """Parse a human memory size (``"64M"``, ``"1.5G"``, ``"4096"``) to bytes.

    Suffixes are binary (K = 1024) and case-insensitive; a bare number is
    bytes.  Raises :class:`ValueError` on anything else, including
    non-positive sizes — a zero budget would spill every admit forever.
    """
    if isinstance(text, int):
        value, factor = float(text), 1
    else:
        cleaned = text.strip().upper()
        split = len(cleaned)
        while split > 0 and cleaned[split - 1].isalpha():
            split -= 1
        number, suffix = cleaned[:split].strip(), cleaned[split:]
        if suffix not in _SUFFIX_FACTORS:
            raise ValueError(f"unknown memory-size suffix {suffix!r} in {text!r}")
        try:
            value = float(number)
        except ValueError:
            raise ValueError(f"invalid memory size {text!r}") from None
        factor = _SUFFIX_FACTORS[suffix]
    n_bytes = int(value * factor)
    if n_bytes <= 0:
        raise ValueError(f"memory size must be positive, got {text!r}")
    return n_bytes


def format_size(n_bytes: int) -> str:
    """Human rendering of a byte count (``"12.0 MiB"``), for logs and docs."""
    value = float(n_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


class MemoryBudget:
    """Tracked allocation accounting for the storage tier.

    ``limit_bytes`` is the hard ceiling on tracked resident bytes.  The
    budget itself only counts; the :class:`~repro.storage.spill.
    PartitionSpillStore` enforces the ceiling by spilling before charging,
    so :attr:`peak_resident` never exceeds the limit — the invariant
    ``benchmarks/bench_storage.py`` asserts throughout a factorization.
    """

    __slots__ = (
        "limit_bytes",
        "resident_bytes",
        "peak_resident",
        "total_charged",
        "spilled_bytes",
        "spill_events",
        "load_events",
        "metrics",
    )

    def __init__(
        self,
        limit_bytes: int,
        metrics: "MetricsRegistry | None" = None,
    ):
        if limit_bytes <= 0:
            raise ValueError(f"limit_bytes must be positive, got {limit_bytes}")
        self.limit_bytes = int(limit_bytes)
        self.resident_bytes = 0
        #: High-water mark of tracked resident bytes over the budget's life.
        self.peak_resident = 0
        #: Cumulative bytes ever charged — the tracked working set, which
        #: keeps growing as entries are admitted, spilled, and reloaded.
        self.total_charged = 0
        self.spilled_bytes = 0
        self.spill_events = 0
        self.load_events = 0
        self.metrics = metrics

    @property
    def available_bytes(self) -> int:
        return max(self.limit_bytes - self.resident_bytes, 0)

    def fits(self, n_bytes: int) -> bool:
        """Whether charging ``n_bytes`` more would stay within the limit."""
        return self.resident_bytes + n_bytes <= self.limit_bytes

    def charge(self, n_bytes: int) -> None:
        """Account ``n_bytes`` as resident (admit or reload)."""
        if n_bytes < 0:
            raise ValueError(f"negative charge {n_bytes}")
        self.resident_bytes += n_bytes
        self.total_charged += n_bytes
        if self.resident_bytes > self.peak_resident:
            self.peak_resident = self.resident_bytes
        self._set_resident_gauge()

    def release(self, n_bytes: int) -> None:
        """Un-account ``n_bytes`` (spill or discard)."""
        if n_bytes < 0:
            raise ValueError(f"negative release {n_bytes}")
        if n_bytes > self.resident_bytes:
            raise ValueError(
                f"releasing {n_bytes} bytes but only {self.resident_bytes} "
                f"are charged — storage accounting bug"
            )
        self.resident_bytes -= n_bytes
        self._set_resident_gauge()

    def count_spill(self, n_bytes: int) -> None:
        """Record one spill (eviction) that wrote ``n_bytes`` to disk."""
        self.spilled_bytes += n_bytes
        self.spill_events += 1
        if self.metrics is not None:
            self.metrics.counter("storage_bytes_spilled_total").inc(n_bytes)
            self.metrics.counter("storage_spill_events_total").inc()

    def count_load(self) -> None:
        """Record one load of a spilled entry back into memory."""
        self.load_events += 1
        if self.metrics is not None:
            self.metrics.counter("storage_load_events_total").inc()

    def _set_resident_gauge(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("storage_bytes_resident").set(
                float(self.resident_bytes)
            )

    def __repr__(self) -> str:
        return (
            f"MemoryBudget(resident={format_size(self.resident_bytes)}, "
            f"limit={format_size(self.limit_bytes)}, "
            f"spills={self.spill_events})"
        )
