"""Out-of-core storage tier: memory budgets, spill, mmap, streaming ingest.

Every layer above this one assumes partition caches and packed unfoldings
fit in driver RAM.  This package removes that assumption:

* :class:`MemoryBudget` — tracked allocation accounting for everything the
  storage tier holds resident, with observability counters and a hard
  "tracked resident bytes never exceed the budget" invariant;
* :class:`PartitionSpillStore` — an LRU spill-to-disk store for cached
  partition lists; the plan executor consults it transparently, so tasks
  see bit-identical data whether a cache is resident or paged in from disk;
* :class:`MmapUnfoldingStore` — content-addressed, memory-mapped storage
  for :class:`~repro.tensor.PackedUnfolding` words, so an unfolding is
  built once, flushed, and paged on demand;
* :class:`StreamingTensorBuilder` — chunked ingestion that accumulates
  sorted-unique flat indices per batch instead of materializing the full
  coordinate list;
* :class:`ShuffleSpillWriter` — sorted-run spill files for worker-side
  ``combine_by_key`` state: a map task whose combiner dicts outgrow their
  budget share writes the bucket set as one atomic run, merged back
  bit-identically on the reduce side.

The tier is wired through :class:`~repro.distengine.ClusterConfig`
(``memory_budget=...``, ``spill_dir=...``); with ``memory_budget=None``
(the default) nothing here is constructed and the engine's hot paths pay a
single ``None`` check.
"""

from .budget import MemoryBudget, format_size, parse_memory_size
from .mmap_store import MmapUnfoldingStore
from .shuffle_spill import ShuffleSpillWriter, SpillRun, read_bucket
from .spill import PartitionSpillStore, SpilledPartitions
from .stream import StreamingTensorBuilder, iter_coordinate_batches

__all__ = [
    "MemoryBudget",
    "parse_memory_size",
    "format_size",
    "MmapUnfoldingStore",
    "PartitionSpillStore",
    "SpilledPartitions",
    "ShuffleSpillWriter",
    "SpillRun",
    "read_bucket",
    "StreamingTensorBuilder",
    "iter_coordinate_batches",
]
