"""Chunked tensor ingestion without a full in-memory coordinate list.

Importers hand each batch of coordinate rows to a
:class:`StreamingTensorBuilder`, which immediately collapses it to sorted,
deduplicated row-major *flat* indices and merges those into a single
running int64 array — one number per distinct nonzero instead of ``ndim``
numbers per raw input row.  Duplicate-heavy inputs (logs, event streams)
therefore peak at roughly the size of the final tensor plus one batch,
never the size of the raw file.

The builder produces a :class:`~repro.tensor.SparseBoolTensor` (or a
packed unfolding directly, optionally flushed through a
:class:`~repro.storage.mmap_store.MmapUnfoldingStore` so the words go
straight to a memory-mapped file).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

__all__ = ["StreamingTensorBuilder", "iter_coordinate_batches"]

#: Default coordinate rows per batch for the file/iterable chunkers.
DEFAULT_BATCH_ROWS = 65536


class StreamingTensorBuilder:
    """Accumulates nonzero coordinates batch by batch.

    The running state is one sorted-unique int64 array of row-major flat
    indices, so memory is proportional to distinct nonzeros seen so far —
    not to the raw (possibly duplicate-laden) input.
    """

    def __init__(self, shape: "tuple[int, ...]"):
        self.shape = tuple(int(s) for s in shape)
        if not self.shape:
            raise ValueError("tensor must have at least one mode")
        if any(s <= 0 for s in self.shape):
            raise ValueError(f"non-positive dimension in shape {self.shape}")
        self._flat = np.zeros(0, dtype=np.int64)
        self.batches_ingested = 0
        self.rows_ingested = 0

    @property
    def nnz(self) -> int:
        """Distinct nonzeros accumulated so far."""
        return int(self._flat.shape[0])

    def add_batch(self, coords: "np.ndarray | list") -> "StreamingTensorBuilder":
        """Merge one batch of ``(n, ndim)`` coordinate rows; returns self."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.size == 0:
            self.batches_ingested += 1
            return self
        if coords.ndim != 2 or coords.shape[1] != len(self.shape):
            raise ValueError(
                f"batch must have shape (n, {len(self.shape)}), "
                f"got {coords.shape}"
            )
        if (coords < 0).any():
            raise ValueError("negative coordinates in batch")
        limits = np.asarray(self.shape, dtype=np.int64)
        if (coords >= limits[None, :]).any():
            raise ValueError(
                f"coordinates out of bounds for shape {self.shape}"
            )
        flat = np.ravel_multi_index(coords.T, self.shape)
        # union1d sorts and dedups, so the running array stays canonical and
        # each merge is one linear pass over (state + batch).
        self._flat = np.union1d(self._flat, flat)
        self.batches_ingested += 1
        self.rows_ingested += int(coords.shape[0])
        return self

    def build(self):
        """The accumulated :class:`~repro.tensor.SparseBoolTensor`."""
        from ..tensor import SparseBoolTensor

        coords = np.column_stack(np.unravel_index(self._flat, self.shape))
        return SparseBoolTensor(self.shape, coords.astype(np.int64))

    def packed_unfolding(self, mode: int, store=None):
        """The mode-``mode`` :class:`~repro.tensor.PackedUnfolding`.

        With ``store`` (an :class:`~repro.storage.mmap_store.
        MmapUnfoldingStore`) the freshly built words are flushed to disk
        and the returned unfolding is memmap-backed, so the only transient
        full-size allocation is the build itself.
        """
        from ..tensor import PackedUnfolding, unfold

        packed = PackedUnfolding(unfold(self.build(), mode))
        if store is not None:
            packed = store.flush(packed)
        return packed

    def __repr__(self) -> str:
        return (
            f"StreamingTensorBuilder(shape={self.shape}, nnz={self.nnz}, "
            f"batches={self.batches_ingested})"
        )


def iter_coordinate_batches(
    rows: "Iterable[tuple[int, ...]]",
    batch_rows: int = DEFAULT_BATCH_ROWS,
) -> "Iterator[np.ndarray]":
    """Chunk an iterable of coordinate tuples into ``(n, ndim)`` arrays.

    The generic adapter between row-at-a-time sources (file parsers,
    generators) and :meth:`StreamingTensorBuilder.add_batch`: at most
    ``batch_rows`` raw rows are materialized at once.
    """
    if batch_rows <= 0:
        raise ValueError(f"batch_rows must be positive, got {batch_rows}")
    pending: list = []
    for row in rows:
        pending.append(row)
        if len(pending) >= batch_rows:
            yield np.asarray(pending, dtype=np.int64)
            pending = []
    if pending:
        yield np.asarray(pending, dtype=np.int64)
