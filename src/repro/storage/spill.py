"""LRU spill-to-disk store for cached partition lists.

The plan executor caches partitions on :class:`~repro.distengine.plan.
PlanNode` objects (``node.cached``) — source data and every ``persist()``
tap.  With a :class:`~repro.storage.budget.MemoryBudget` configured, those
caches go through this store instead of living unconditionally in driver
RAM:

* ``admit(node)`` charges the cache's measured bytes to the budget,
  spilling least-recently-used entries to disk first so tracked resident
  bytes never exceed the limit;
* ``fetch(node)`` returns the partitions, transparently loading a spilled
  entry back (and re-admitting it, possibly spilling something else).

A spilled node's ``cached`` slot holds a :class:`SpilledPartitions` marker
rather than ``None`` — crucial, because the plan optimizer stops lineage
chains at ``cached is not None``; a marker therefore still terminates the
chain and the only extra cost of a spilled cache is the load I/O, not a
recomputation.  The marker answers ``len()`` so partition-count bookkeeping
(``n_partitions``, eviction counters, ``explain()``) works unchanged.

Determinism: admit/fetch calls happen on the driver in plan-execution
order, which is identical across the serial, thread, and process backends,
so the spill/load sequence — and with it the SPILL bytes charged to the
cost model — is backend-invariant.  Loads are pickle round-trips of the
exact partition lists, so task inputs are bit-identical either way.

This store is deliberately engine-agnostic: the runtime injects its byte
measurer and transfer recorder, so this package never imports distengine.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from collections import OrderedDict
from typing import Any, Callable

from .budget import MemoryBudget

__all__ = ["PartitionSpillStore", "SpilledPartitions"]

#: Span name shared by spill and load events (the ``op`` attr disambiguates).
STORAGE_SPAN = "storage"


class SpilledPartitions:
    """Marker left in ``node.cached`` while the partitions live on disk.

    Truthy and sized like the partition list it replaces, so cache-presence
    checks (``cached is not None``) and count bookkeeping
    (``len(node.cached)``) behave identically for resident and spilled
    entries.
    """

    __slots__ = ("path", "n_partitions", "nbytes")

    def __init__(self, path: str, n_partitions: int, nbytes: int):
        self.path = path
        self.n_partitions = n_partitions
        self.nbytes = nbytes

    def __len__(self) -> int:
        return self.n_partitions

    def __repr__(self) -> str:
        return (
            f"SpilledPartitions(n_partitions={self.n_partitions}, "
            f"nbytes={self.nbytes})"
        )


class _Entry:
    """One resident cache tracked by the store."""

    __slots__ = ("node", "nbytes", "path", "file_bytes")

    def __init__(self, node: Any, nbytes: int, path: str):
        self.node = node
        self.nbytes = nbytes
        self.path = path
        #: Size of the spill file once written; 0 until the first spill.
        self.file_bytes = 0


class PartitionSpillStore:
    """Budget-enforcing LRU store the runtime consults for plan caches.

    Parameters
    ----------
    budget:
        The :class:`MemoryBudget` charged for resident entries.
    spill_dir:
        Parent directory for spill files.  A unique subdirectory is always
        created inside it (or inside the system temp dir when ``None``),
        so ``close()`` can remove the whole tree without touching anything
        the user put next to it.
    measure:
        ``partitions -> int`` byte measurer; the runtime injects
        :func:`~repro.distengine.shuffle.estimate_bytes` so spill
        accounting uses the same size model as the network ledger.
    record_io:
        ``(stage, n_bytes) -> None`` callback charging spill/load file
        bytes to the cost model (``TransferKind.SPILL``).
    tracer:
        Optional tracer; spill/load record zero-duration ``storage`` spans.
    """

    def __init__(
        self,
        budget: MemoryBudget,
        spill_dir: "str | None" = None,
        measure: "Callable[[list], int] | None" = None,
        record_io: "Callable[[str, int], None] | None" = None,
        tracer: Any = None,
    ):
        self.budget = budget
        if spill_dir is not None:
            os.makedirs(spill_dir, exist_ok=True)
        self.directory = tempfile.mkdtemp(prefix="repro-spill-", dir=spill_dir)
        self._measure = measure if measure is not None else _default_measure
        self._record_io = record_io
        self._tracer = tracer
        #: node_id -> entry, LRU order (first = coldest).  Strong refs are
        #: fine: entries leave via ``discard`` (runtime eviction) or
        #: ``close`` (runtime shutdown), both guaranteed paths.
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()

    # ------------------------------------------------------------------
    # Admission and access
    # ------------------------------------------------------------------
    def admit(self, node: Any) -> None:
        """Start tracking ``node.cached`` (a fresh resident partition list).

        Spills colder entries first so the charge fits the budget.  An
        entry that alone exceeds the budget is spilled immediately — the
        caller still holds the transient list for the current stage, and
        later fetches stream it back from disk.
        """
        partitions = node.cached
        if isinstance(partitions, SpilledPartitions) or partitions is None:
            return
        node_id = node.node_id
        if node_id in self._entries:
            self._entries.move_to_end(node_id)
            return
        nbytes = int(self._measure(partitions))
        entry = _Entry(node, nbytes, self._path_for(node_id))
        if nbytes > self.budget.limit_bytes:
            self._spill(entry, partitions)
            return
        self._make_room(nbytes)
        self.budget.charge(nbytes)
        self._entries[node_id] = entry

    def fetch(self, node: Any) -> "list | None":
        """The partitions of ``node``, loading from disk if spilled.

        Returns ``None`` when the node has no cache at all (caller falls
        back to dispatching the stage).
        """
        cached = node.cached
        if cached is None:
            return None
        if not isinstance(cached, SpilledPartitions):
            entry = self._entries.get(node.node_id)
            if entry is not None:
                self._entries.move_to_end(node.node_id)
            return cached
        return self._load(node, cached)

    def discard(self, node: Any) -> None:
        """Stop tracking ``node`` (runtime eviction); frees budget and file."""
        entry = self._entries.pop(node.node_id, None)
        if entry is not None:
            self.budget.release(entry.nbytes)
        path = self._path_for(node.node_id)
        if os.path.exists(path):
            os.remove(path)
        if isinstance(node.cached, SpilledPartitions):
            node.cached = None

    def close(self) -> None:
        """Release every tracked entry and delete the spill directory."""
        for entry in self._entries.values():
            self.budget.release(entry.nbytes)
        self._entries.clear()
        shutil.rmtree(self.directory, ignore_errors=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _path_for(self, node_id: int) -> str:
        return os.path.join(self.directory, f"node-{node_id:06d}.pkl")

    def _make_room(self, nbytes: int) -> None:
        """Spill coldest entries until ``nbytes`` more fits the budget."""
        while not self.budget.fits(nbytes) and self._entries:
            _, victim = next(iter(self._entries.items()))
            self._spill(victim, victim.node.cached, tracked=True)

    def _spill(self, entry: _Entry, partitions: list, tracked: bool = False) -> None:
        """Write ``partitions`` to disk and leave a marker on the node.

        A node re-admitted after a load already has its spill file on disk;
        the rewrite (and its I/O charge) is skipped — the file is immutable
        because plan caches are written once.
        """
        wrote = not os.path.exists(entry.path)
        if wrote:
            staging = entry.path + ".tmp"
            with open(staging, "wb") as stream:
                pickle.dump(partitions, stream, protocol=4)
            os.replace(staging, entry.path)
        entry.file_bytes = os.path.getsize(entry.path)
        entry.node.cached = SpilledPartitions(
            entry.path, len(partitions), entry.nbytes
        )
        if tracked:
            self._entries.pop(entry.node.node_id, None)
            self.budget.release(entry.nbytes)
        self.budget.count_spill(entry.file_bytes if wrote else 0)
        if wrote and self._record_io is not None:
            self._record_io("storage.spill", entry.file_bytes)
        if self._tracer is not None:
            self._tracer.event(
                STORAGE_SPAN, _storage_kind(), op="spill",
                node_id=entry.node.node_id, bytes=entry.file_bytes,
            )

    def _load(self, node: Any, marker: SpilledPartitions) -> list:
        """Page a spilled entry back in, re-admitting it under the budget."""
        with open(marker.path, "rb") as stream:
            partitions = pickle.load(stream)
        file_bytes = os.path.getsize(marker.path)
        self.budget.count_load()
        if self._record_io is not None:
            self._record_io("storage.load", file_bytes)
        if self._tracer is not None:
            self._tracer.event(
                STORAGE_SPAN, _storage_kind(), op="load",
                node_id=node.node_id, bytes=file_bytes,
            )
        if marker.nbytes > self.budget.limit_bytes:
            # Too big to ever hold resident: hand the transient list to the
            # caller and keep the marker, so the next fetch reloads it too.
            return partitions
        entry = _Entry(node, marker.nbytes, marker.path)
        entry.file_bytes = file_bytes
        self._make_room(marker.nbytes)
        self.budget.charge(marker.nbytes)
        node.cached = partitions
        self._entries[node.node_id] = entry
        return partitions

    def __repr__(self) -> str:
        return (
            f"PartitionSpillStore(entries={len(self._entries)}, "
            f"budget={self.budget!r})"
        )


def _default_measure(partitions: list) -> int:
    """Fallback measurer (tests); the runtime injects ``estimate_bytes``."""
    import numpy as np

    total = 0
    for partition in partitions:
        for item in partition:
            nbytes = getattr(item, "nbytes", None)
            if nbytes is not None:
                total += int(nbytes)
            elif isinstance(item, np.ndarray):
                total += int(item.nbytes)
            else:
                total += 64
    return total


def _storage_kind() -> str:
    from ..observability import SpanKind

    return SpanKind.STORAGE
