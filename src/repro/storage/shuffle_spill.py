"""Sorted-run spill files for worker-side shuffle combine state.

Under a memory budget, a ``combine_by_key`` map task whose per-bucket
combiner dicts outgrow its share of the budget writes the *entire* current
bucket set out as one **run** and starts over with empty dicts — the same
sorted-run discipline as Spark's sort-based shuffle, with the run sorted by
destination bucket index and insertion-ordered within each bucket.  The
reduce side later concatenates, per bucket, every run's segment (in run
order) followed by the in-memory remainder; because first-occurrence key
order across that concatenation equals the map task's global insertion
order, the merged result is bit-identical to the unspilled path for the
associative/commutative combiner algebras ``combine_by_key`` contracts.

Wire format of a run file: the per-bucket pair lists are pickled
independently and concatenated, with byte ``offsets``/``lengths`` carried
out-of-band on the :class:`SpillRun` metadata (returned to the driver
through the stage seam) rather than in a file header — the reduce side
seeks straight to its bucket's blob and unpickles only that.  Files are
written atomically (``.tmp`` + ``os.replace``) so a killed task never
leaves a readable half-run.

Like the rest of this package, the module is engine-agnostic: byte
accounting against the transfer ledger happens in distengine from the
metadata recorded here (``pair_bytes`` per bucket, ``file_bytes`` per run),
never by importing it.
"""

from __future__ import annotations

import os
import pickle

__all__ = ["ShuffleSpillWriter", "SpillRun", "read_bucket"]


class SpillRun:
    """Metadata of one spilled run: where each bucket's blob lives.

    ``pair_bytes`` holds the estimated wire size of each bucket's pairs
    (the quantity the shuffle ledger charges), while ``lengths`` are the
    pickled blob sizes actually read back from disk (the quantity charged
    as spill I/O) — the two deliberately stay separate so network and disk
    accounting never contaminate each other.
    """

    __slots__ = ("path", "offsets", "lengths", "pair_bytes", "file_bytes")

    def __init__(
        self,
        path: str,
        offsets: "tuple[int, ...]",
        lengths: "tuple[int, ...]",
        pair_bytes: "tuple[int, ...]",
        file_bytes: int,
    ):
        self.path = path
        self.offsets = offsets
        self.lengths = lengths
        self.pair_bytes = pair_bytes
        self.file_bytes = file_bytes

    @property
    def n_buckets(self) -> int:
        return len(self.offsets)

    def __repr__(self) -> str:
        return (
            f"SpillRun(path={self.path!r}, n_buckets={self.n_buckets}, "
            f"file_bytes={self.file_bytes})"
        )


class ShuffleSpillWriter:
    """Writes a map task's bucket sets as numbered run files.

    File names encode ``(shuffle id, map partition, run index)``, so every
    run of every task of every shuffle in one runtime lands at a distinct
    path and concurrent map tasks of a process pool never collide.
    """

    __slots__ = ("directory", "shuffle_id", "map_index", "_run_counter")

    def __init__(self, directory: str, shuffle_id: int, map_index: int):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.shuffle_id = shuffle_id
        self.map_index = map_index
        self._run_counter = 0

    def write_run(
        self, buckets: "list[list]", pair_bytes: "list[int]"
    ) -> SpillRun:
        """Atomically persist one bucket set (bucket-index order) as a run."""
        run_index = self._run_counter
        self._run_counter += 1
        path = os.path.join(
            self.directory,
            f"shuffle{self.shuffle_id:04d}-map{self.map_index:04d}"
            f"-run{run_index:04d}.pkl",
        )
        offsets: list[int] = []
        lengths: list[int] = []
        cursor = 0
        staging = path + ".tmp"
        with open(staging, "wb") as stream:
            for pairs in buckets:
                blob = pickle.dumps(pairs, protocol=4)
                stream.write(blob)
                offsets.append(cursor)
                lengths.append(len(blob))
                cursor += len(blob)
        os.replace(staging, path)
        return SpillRun(
            path, tuple(offsets), tuple(lengths), tuple(pair_bytes), cursor
        )


def read_bucket(path: str, offset: int, length: int) -> list:
    """One bucket's ``(key, combiner)`` pairs from a run file."""
    with open(path, "rb") as stream:
        stream.seek(offset)
        blob = stream.read(length)
    return pickle.loads(blob)
