"""Memory-mapped, content-addressed storage for packed unfoldings.

A :class:`~repro.tensor.PackedUnfolding` is by far the largest object the
driver builds — ``n_rows × block_count × n_words`` uint64 words.  This
store writes those words to disk once (atomic temp+rename, like the
resilience checkpoints) and hands back an unfolding whose ``words`` array
is a read-only :func:`numpy.memmap` over the file, so the OS pages blocks
in on demand instead of the driver holding the whole thing resident.

Files are content-addressed by the sha256 of the header and words, so
flushing an identical unfolding twice writes one file, and a corrupted or
truncated file is detected at load time.  The layout is a fixed 128-byte
JSON header (magic, mode, n_rows, block_count, block_width) followed by
the raw little-endian uint64 words in C order.

Downstream consumers never notice the difference: packing reads
``packed.words[:, block, :]`` slices, which numpy serves identically from
a memmap — and copies into fresh arrays when partitions are built, so
worker tasks never touch the mapping itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile

import numpy as np

__all__ = ["MmapUnfoldingStore", "HEADER_BYTES"]

#: Fixed header size; JSON metadata padded with spaces to this length.
HEADER_BYTES = 128

_MAGIC = "repro-unfolding-v1"


class MmapUnfoldingStore:
    """Content-addressed on-disk store for packed-unfolding words.

    With ``directory=None`` the store owns a fresh temp directory and
    removes it on :meth:`close`; an explicit directory is left in place
    (only the files this store wrote belong to it).
    """

    def __init__(self, directory: "str | None" = None):
        self._owns_directory = directory is None
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-unfoldings-")
        else:
            os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self._open_maps: list[np.memmap] = []

    # ------------------------------------------------------------------
    def save(self, packed) -> str:
        """Write ``packed``'s words to a content-addressed file; return path.

        Idempotent: an unfolding with identical content maps to the same
        file, which is not rewritten.
        """
        header = self._header(packed)
        words = np.ascontiguousarray(packed.words, dtype="<u8")
        digest = hashlib.sha256()
        digest.update(header)
        digest.update(words.tobytes())
        path = os.path.join(self.directory, digest.hexdigest()[:32] + ".unf")
        if not os.path.exists(path):
            staging = path + ".tmp"
            with open(staging, "wb") as stream:
                stream.write(header)
                stream.write(words.tobytes())
            os.replace(staging, path)
        return path

    def load(self, path: str):
        """A :class:`PackedUnfolding` whose words are memory-mapped read-only."""
        from ..tensor.packed import PackedUnfolding

        meta = self._read_header(path)
        shape = (meta["n_rows"], meta["block_count"], meta["n_words"])
        expected = HEADER_BYTES + int(np.prod(shape)) * 8
        actual = os.path.getsize(path)
        if actual != expected:
            raise ValueError(
                f"unfolding file {path} is {actual} bytes, expected "
                f"{expected} — truncated or corrupt"
            )
        words = np.memmap(
            path, dtype="<u8", mode="r", offset=HEADER_BYTES, shape=shape
        )
        self._open_maps.append(words)
        return PackedUnfolding.from_words(
            meta["mode"], meta["n_rows"], meta["block_count"],
            meta["block_width"], words.view(np.uint64),
        )

    def flush(self, packed):
        """Save ``packed`` and return a memmap-backed replacement for it.

        The usual call site drops its reference to the in-memory original
        right after, letting the ~``nbytes`` of driver RAM go while the
        unfolding stays fully usable.
        """
        return self.load(self.save(packed))

    def close(self) -> None:
        """Release mappings; delete the directory if this store created it."""
        self._open_maps.clear()
        if self._owns_directory:
            shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "MmapUnfoldingStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _header(self, packed) -> bytes:
        meta = {
            "magic": _MAGIC,
            "mode": int(packed.mode),
            "n_rows": int(packed.n_rows),
            "block_count": int(packed.block_count),
            "block_width": int(packed.block_width),
            "n_words": int(packed.n_words),
        }
        encoded = json.dumps(meta, sort_keys=True).encode("ascii")
        if len(encoded) > HEADER_BYTES:
            raise ValueError("unfolding header metadata too large")
        return encoded.ljust(HEADER_BYTES)

    def _read_header(self, path: str) -> dict:
        with open(path, "rb") as stream:
            raw = stream.read(HEADER_BYTES)
        if len(raw) < HEADER_BYTES:
            raise ValueError(f"unfolding file {path} has no complete header")
        try:
            meta = json.loads(raw.decode("ascii").rstrip())
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise ValueError(f"unfolding file {path} has a malformed header") from None
        if meta.get("magic") != _MAGIC:
            raise ValueError(
                f"unfolding file {path} has magic {meta.get('magic')!r}, "
                f"expected {_MAGIC!r}"
            )
        return meta

    def __repr__(self) -> str:
        return f"MmapUnfoldingStore(directory={self.directory!r})"
