"""Observability layer: structured stage tracing, metrics, and exporters.

The engine's cost claims (per-stage durations, shuffle-byte bounds, retry
invariance) are only testable if every execution leaves a structured record
behind.  This package provides the three pieces the rest of the library
reports into:

* :mod:`~repro.observability.trace` — a span tree
  (``stage → task → kernel``, plus zero-duration ``transfer`` events)
  collected by the driver-side :class:`Tracer` and, inside workers, by a
  per-task buffer that travels back through the stage-executor seam so the
  trace *structure* is identical under the serial, thread, and process
  backends;
* :mod:`~repro.observability.metrics` — a registry of labelled counters,
  gauges, and histograms that the runtime, fault handling, scheduler
  replay, and cache tables report into;
* :mod:`~repro.observability.export` — JSONL and Chrome-trace
  (``chrome://tracing`` / Perfetto) dumps, the duration-free structural
  tree used by the golden-trace tests, and a plain-text report.

Tracing is opt-in (``ClusterConfig(tracing=True)`` or
``DbtfConfig(tracing=True)``); when off, the kernel instrumentation is a
single thread-local read per call.
"""

from .export import (
    metrics_to_jsonl,
    read_jsonl,
    render_report,
    structural_tree,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_jsonl,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    SpanKind,
    SpanRecord,
    TaskTraceContext,
    Tracer,
    activate_task_context,
    current_task_context,
    deactivate_task_context,
    kernel_span,
    record_metric,
)

__all__ = [
    "SpanKind",
    "SpanRecord",
    "Tracer",
    "TaskTraceContext",
    "activate_task_context",
    "deactivate_task_context",
    "current_task_context",
    "kernel_span",
    "record_metric",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "structural_tree",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "metrics_to_jsonl",
    "write_metrics_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_report",
]
