"""Structured spans: the trace side of the observability layer.

Two collection paths feed one span tree:

* The **driver** owns a :class:`Tracer`.  ``SimulatedRuntime.run_stage``
  opens one ``stage`` span per stage and records zero-duration ``transfer``
  events for every ledger entry (shuffle, broadcast, collect), so byte
  attribution lives in the trace as well as in the ledger.

* **Workers** cannot share the driver's tracer (the process backend runs
  them in other interpreters), so :func:`~repro.distengine.backends.base.
  execute_task` activates a :class:`TaskTraceContext` — a plain, picklable
  buffer — for the duration of the task.  Kernel instrumentation
  (:func:`kernel_span`, :func:`record_metric`) writes into whatever context
  is active on the current thread and is a no-op otherwise.  The buffer
  rides back to the driver inside the task outcome, where
  :meth:`Tracer.graft` attaches it under the stage span in partition order
  — which is what makes the span *structure* identical across the serial,
  thread, and process backends (only wall-clock fields differ).

Span ids are assigned by the driver in graft order, so a fixed-seed run
produces bit-identical ids under every backend.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SpanKind",
    "SpanRecord",
    "Tracer",
    "TaskTraceContext",
    "activate_task_context",
    "deactivate_task_context",
    "current_task_context",
    "kernel_span",
    "record_metric",
    "metrics_enabled",
]


class SpanKind:
    """The levels of the span tree (plus instantaneous transfer events)."""

    STAGE = "stage"
    TASK = "task"
    KERNEL = "kernel"
    TRANSFER = "transfer"
    CHECKPOINT = "checkpoint"
    SPECULATION = "speculation"
    STORAGE = "storage"
    SHUFFLE = "shuffle"

    ALL = (
        STAGE, TASK, KERNEL, TRANSFER, CHECKPOINT, SPECULATION, STORAGE,
        SHUFFLE,
    )


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    ``start``/``duration`` are host wall-clock values and are deliberately
    excluded from :func:`~repro.observability.export.structural_tree`; all
    structural facts (name, kind, parentage, attrs such as partition index,
    retries, and byte counts) are backend-invariant.
    """

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    start: float
    duration: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class _OpenSpan:
    """Driver-side context manager for :meth:`Tracer.span`."""

    __slots__ = ("tracer", "name", "kind", "attrs", "span_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, kind: str, attrs: dict):
        self.tracer = tracer
        self.name = name
        self.kind = kind
        self.attrs = attrs

    def __enter__(self) -> "_OpenSpan":
        self.span_id = self.tracer._open(self)
        self._start = time.perf_counter()
        return self

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __exit__(self, *exc_info) -> None:
        self.tracer._close(self, time.perf_counter() - self._start)


class Tracer:
    """Collects the driver-side span tree; thread-safe.

    The driver executes stages one at a time, so open spans form a simple
    stack; worker-collected sub-trees are grafted under their stage span
    after the stage completes (deterministically, in partition order).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next_id = 0
        self._stack: list[int] = []
        self.spans: list[SpanRecord] = []

    # -- span creation -------------------------------------------------
    def span(self, name: str, kind: str = SpanKind.STAGE, **attrs: Any) -> _OpenSpan:
        """Open a timed span; use as a context manager."""
        return _OpenSpan(self, name, kind, dict(attrs))

    def event(self, name: str, kind: str = SpanKind.TRANSFER, **attrs: Any) -> None:
        """Record an instantaneous (zero-duration) span."""
        self.add_span(name, kind, start=time.perf_counter(), duration=0.0, **attrs)

    def add_span(
        self,
        name: str,
        kind: str,
        start: float = 0.0,
        duration: float = 0.0,
        **attrs: Any,
    ) -> int:
        """Record an already-measured span; returns its id.

        The parent is whatever span is currently open on the driver (none,
        for the usual flat stage sequence).
        """
        with self._lock:
            span_id = self._allocate()
            parent = self._stack[-1] if self._stack else None
            self.spans.append(
                SpanRecord(span_id, parent, name, kind, start, duration,
                           dict(attrs))
            )
            return span_id

    def graft(
        self,
        parent_id: int,
        task_trace: dict[str, Any],
    ) -> int:
        """Attach one task's worker-collected trace under ``parent_id``.

        ``task_trace`` is the picklable dict produced by ``execute_task``:
        the task span itself plus its kernel records with buffer-relative
        ids (the task is id 0).  Fresh driver ids are assigned in relative
        id order, so grafting is deterministic.  Returns the task span id.
        """
        with self._lock:
            task_id = self._allocate()
            self.spans.append(
                SpanRecord(
                    task_id,
                    parent_id,
                    task_trace["name"],
                    SpanKind.TASK,
                    float(task_trace.get("start", 0.0)),
                    float(task_trace.get("duration", 0.0)),
                    dict(task_trace.get("attrs", ())),
                )
            )
            relative_to_driver = {0: task_id}
            for record in sorted(task_trace.get("kernels", ()),
                                 key=lambda r: r["id"]):
                span_id = self._allocate()
                relative_to_driver[record["id"]] = span_id
                self.spans.append(
                    SpanRecord(
                        span_id,
                        relative_to_driver[record["parent"]],
                        record["name"],
                        record.get("kind", SpanKind.KERNEL),
                        float(record.get("start", 0.0)),
                        float(record.get("duration", 0.0)),
                        dict(record.get("attrs", ())),
                    )
                )
            return task_id

    # -- bookkeeping ---------------------------------------------------
    def _allocate(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _open(self, span: _OpenSpan) -> int:
        with self._lock:
            span_id = self._allocate()
            self._stack.append(span_id)
            return span_id

    def _close(self, span: _OpenSpan, duration: float) -> None:
        with self._lock:
            self._stack.remove(span.span_id)
            parent: int | None = None
            if self._stack:
                parent = self._stack[-1]
            self.spans.append(
                SpanRecord(span.span_id, parent, span.name, span.kind,
                           span._start, duration, span.attrs)
            )

    def reset(self) -> None:
        with self._lock:
            self._next_id = 0
            self._stack.clear()
            self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"Tracer(spans={len(self.spans)})"


# ----------------------------------------------------------------------
# Worker-side task context
# ----------------------------------------------------------------------
class TaskTraceContext:
    """Per-task buffer for kernel spans and metric deltas.

    Lives for one ``execute_task`` call (all attempts of one task) on the
    thread that runs it.  Everything it holds is plain picklable data so it
    can cross a process boundary inside the task outcome.  Kernel records
    use buffer-relative ids with the enclosing task as id 0.
    """

    __slots__ = ("kernels", "metrics", "_stack", "_next_id")

    def __init__(self) -> None:
        self.kernels: list[dict[str, Any]] = []
        #: ``(name, labels, metric_kind) -> value`` accumulated increments.
        self.metrics: dict[tuple, float] = {}
        self._stack: list[int] = []
        self._next_id = 1

    def metric_deltas(self) -> tuple:
        """The accumulated metric increments as a picklable tuple."""
        return tuple(
            (name, labels, metric_kind, value)
            for (name, labels, metric_kind), value in self.metrics.items()
        )


_ACTIVE = threading.local()


def current_task_context() -> TaskTraceContext | None:
    """The task context active on this thread, if any."""
    return getattr(_ACTIVE, "context", None)


def activate_task_context(context: TaskTraceContext) -> None:
    _ACTIVE.context = context


def deactivate_task_context() -> None:
    _ACTIVE.context = None


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def set(self, **attrs: Any) -> None:
        pass

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _KernelSpan:
    """Kernel-level span writing into the active :class:`TaskTraceContext`."""

    __slots__ = ("context", "name", "attrs", "_id", "_parent", "_start")

    def __init__(self, context: TaskTraceContext, name: str, attrs: dict):
        self.context = context
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_KernelSpan":
        context = self.context
        self._id = context._next_id
        context._next_id += 1
        self._parent = context._stack[-1] if context._stack else 0
        context._stack.append(self._id)
        self._start = time.perf_counter()
        return self

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self._start
        context = self.context
        context._stack.pop()
        context.kernels.append(
            {
                "id": self._id,
                "parent": self._parent,
                "name": self.name,
                "kind": SpanKind.KERNEL,
                "start": self._start,
                "duration": duration,
                "attrs": self.attrs,
            }
        )


def kernel_span(name: str, **attrs: Any):
    """Instrument a hot kernel; costs one thread-local read when disabled.

    Usage::

        with kernel_span("or_accumulate_table", n_columns=v):
            ...

    Inside a traced task the span lands in the task's buffer (nested under
    any enclosing kernel span); outside one this returns a shared no-op
    context manager.
    """
    context = getattr(_ACTIVE, "context", None)
    if context is None:
        return _NULL_SPAN
    return _KernelSpan(context, name, attrs)


def metrics_enabled() -> bool:
    """Whether a task context is collecting metric increments right now.

    One thread-local attribute read.  Hot loops (per-fetch counters) guard
    their :func:`record_metric` calls with this so the disabled path pays
    no call-argument setup at all.
    """
    return getattr(_ACTIVE, "context", None) is not None


def record_metric(
    name: str, value: float = 1.0, metric_kind: str = "counter", **labels: Any
) -> None:
    """Report a metric increment from inside a (possibly remote) task.

    No-op without an active task context.  Deltas are merged into the
    driver's :class:`~repro.observability.metrics.MetricsRegistry` after
    the stage completes; counters are order-independent, so the merged
    values are backend-invariant.
    """
    context = getattr(_ACTIVE, "context", None)
    if context is None:
        return
    key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())), metric_kind)
    context.metrics[key] = context.metrics.get(key, 0.0) + value
