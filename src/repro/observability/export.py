"""Trace and metrics exporters.

Three consumers, three formats:

* :func:`to_jsonl` / :func:`write_jsonl` — one JSON object per span, the
  archival format benchmarks and offline analysis read back;
* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome trace
  event format, loadable in ``chrome://tracing`` or https://ui.perfetto.dev
  (complete ``X`` events for spans, instant ``i`` events for transfers);
* :func:`render_report` — a plain-text summary for terminals, combining
  the per-stage span aggregates with the metrics registry.

:func:`structural_tree` strips every wall-clock field and returns the
nested structure the golden-trace and backend-invariance tests compare:
names, kinds, attrs (partition ids, retry counts, byte counts), children.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Iterable

from .trace import SpanKind, SpanRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .metrics import MetricsRegistry
    from .trace import Tracer

__all__ = [
    "structural_tree",
    "to_jsonl",
    "write_jsonl",
    "metrics_to_jsonl",
    "write_metrics_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_report",
]


def _spans_of(trace: "Tracer | Iterable[SpanRecord]") -> list[SpanRecord]:
    spans = getattr(trace, "spans", trace)
    return list(spans)


# ----------------------------------------------------------------------
# Structural (duration-free) view
# ----------------------------------------------------------------------
def structural_tree(trace: "Tracer | Iterable[SpanRecord]") -> list[dict[str, Any]]:
    """The span tree without any timing — the backend-invariant part.

    Children are ordered by span id, which the driver assigns
    deterministically (stages in execution order, tasks in partition
    order, kernels in call order), so two runs with identical structure
    serialize to identical JSON.
    """
    spans = sorted(_spans_of(trace), key=lambda s: s.span_id)
    nodes: dict[int, dict[str, Any]] = {}
    roots: list[dict[str, Any]] = []
    for span in spans:
        node = {
            "name": span.name,
            "kind": span.kind,
            "attrs": {k: span.attrs[k] for k in sorted(span.attrs)},
            "children": [],
        }
        nodes[span.span_id] = node
        if span.parent_id is None or span.parent_id not in nodes:
            roots.append(node)
        else:
            nodes[span.parent_id]["children"].append(node)
    return roots


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def to_jsonl(trace: "Tracer | Iterable[SpanRecord]") -> str:
    """One JSON object per span, sorted by span id."""
    spans = sorted(_spans_of(trace), key=lambda s: s.span_id)
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True) for span in spans)


def write_jsonl(trace: "Tracer | Iterable[SpanRecord]", path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(trace))
        handle.write("\n")


def read_jsonl(path: str) -> list[SpanRecord]:
    """Load spans written by :func:`write_jsonl`."""
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            spans.append(
                SpanRecord(
                    span_id=raw["span_id"],
                    parent_id=raw["parent_id"],
                    name=raw["name"],
                    kind=raw["kind"],
                    start=raw["start"],
                    duration=raw["duration"],
                    attrs=raw.get("attrs", {}),
                )
            )
    return spans


def metrics_to_jsonl(metrics: "MetricsRegistry") -> str:
    """One JSON object per metric instrument, sorted by (name, labels).

    Counters and gauges serialize their value; histograms serialize the
    full snapshot (count/sum/min/max/buckets plus the derived p50/p99), so
    a scraper gets per-tenant latency quantiles without re-bucketing.
    Bucket bounds become string keys (JSON objects cannot key on floats).
    """
    lines = []
    for name, label_key, kind, value in metrics.collect():
        row: dict[str, Any] = {
            "name": name,
            "labels": dict(label_key),
            "kind": kind,
        }
        if kind == "histogram":
            snapshot = dict(value)
            snapshot["buckets"] = {
                str(bound): count
                for bound, count in snapshot["buckets"].items()
            }
            row["snapshot"] = snapshot
        else:
            row["value"] = value
        lines.append(json.dumps(row, sort_keys=True))
    return "\n".join(lines)


def write_metrics_jsonl(metrics: "MetricsRegistry", path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(metrics_to_jsonl(metrics))
        handle.write("\n")


# ----------------------------------------------------------------------
# Chrome trace event format
# ----------------------------------------------------------------------
def to_chrome_trace(trace: "Tracer | Iterable[SpanRecord]") -> dict[str, Any]:
    """Convert spans to the Chrome ``traceEvents`` JSON structure.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps relative to the earliest span; transfers become instant
    (``"ph": "i"``) events.  The span kind maps to the thread id row so
    stages, tasks, and kernels land on separate tracks.
    """
    spans = sorted(_spans_of(trace), key=lambda s: s.span_id)
    base = min((span.start for span in spans), default=0.0)
    track = {SpanKind.STAGE: 0, SpanKind.TASK: 1,
             SpanKind.KERNEL: 2, SpanKind.TRANSFER: 3}
    events = []
    for span in spans:
        common = {
            "name": span.name,
            "cat": span.kind,
            "pid": 0,
            "tid": track.get(span.kind, 4),
            "ts": (span.start - base) * 1e6,
            "args": {**span.attrs, "span_id": span.span_id,
                     "parent_id": span.parent_id},
        }
        if span.kind == SpanKind.TRANSFER:
            events.append({**common, "ph": "i", "s": "t"})
        else:
            events.append({**common, "ph": "X", "dur": span.duration * 1e6})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: "Tracer | Iterable[SpanRecord]", path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(trace), handle, indent=1)


# ----------------------------------------------------------------------
# Plain text
# ----------------------------------------------------------------------
def render_report(
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> str:
    """Human-readable summary of a traced run.

    Aggregates stage spans by name (occurrences, tasks, kernel spans,
    total span time) and appends transfer-byte attribution and the full
    metrics exposition.  Either argument may be omitted.
    """
    lines: list[str] = []
    if tracer is not None:
        spans = _spans_of(tracer)
        by_parent: dict[int | None, list[SpanRecord]] = {}
        for span in spans:
            by_parent.setdefault(span.parent_id, []).append(span)

        stage_rows: dict[str, list[float]] = {}
        order: list[str] = []
        for span in spans:
            if span.kind != SpanKind.STAGE:
                continue
            if span.name not in stage_rows:
                stage_rows[span.name] = [0, 0, 0, 0.0]
                order.append(span.name)
            row = stage_rows[span.name]
            row[0] += 1
            tasks = [
                child for child in by_parent.get(span.span_id, ())
                if child.kind == SpanKind.TASK
            ]
            row[1] += len(tasks)
            row[2] += sum(
                _count_kernels(task.span_id, by_parent) for task in tasks
            )
            row[3] += span.duration
        lines.append("stage                            runs  tasks  kernels  seconds")
        lines.append("-" * 66)
        for name in order:
            runs, tasks, kernels, seconds = stage_rows[name]
            lines.append(
                f"{name:<32} {runs:>4}  {tasks:>5}  {kernels:>7}  {seconds:8.4f}"
            )
        transfers: dict[tuple[str, str], int] = {}
        for span in spans:
            if span.kind == SpanKind.TRANSFER:
                key = (str(span.attrs.get("transfer", "?")), span.name)
                transfers[key] = transfers.get(key, 0) + int(
                    span.attrs.get("bytes", 0)
                )
        if transfers:
            lines.append("")
            lines.append("transfer  stage                            bytes")
            lines.append("-" * 52)
            for (kind, name), n_bytes in sorted(transfers.items()):
                lines.append(f"{kind:<9} {name:<32} {n_bytes}")
    if metrics is not None:
        if lines:
            lines.append("")
        lines.append("metrics")
        lines.append("-" * 7)
        lines.append(metrics.to_text())
    return "\n".join(lines)


def _count_kernels(span_id: int, by_parent: dict) -> int:
    total = 0
    for child in by_parent.get(span_id, ()):
        if child.kind == SpanKind.KERNEL:
            total += 1 + _count_kernels(child.span_id, by_parent)
    return total
