"""A small labelled-metrics registry (counters, gauges, histograms).

The runtime and its collaborators report into one
:class:`MetricsRegistry` per :class:`~repro.distengine.runtime.
SimulatedRuntime`:

* the stage executor: ``stages_total``, ``tasks_total{stage}``,
  ``task_duration_seconds{stage}`` (histogram);
* fault handling: ``task_failures_total{stage}`` — the registry-backed
  replacement for the runtime's old ad-hoc failure dict (the
  ``count_task_failure`` / ``task_failures`` facade is preserved on top);
* the network ledger: ``transfer_bytes_total{kind, stage}``;
* the cost replay (scheduler): ``simulated_*_seconds{machines}`` gauges;
* cache tables (reported from inside workers via
  :func:`~repro.observability.trace.record_metric` and merged after the
  stage): ``cache_tables_built_total``, ``cache_entries_total``,
  ``cache_fetches_total``, ``bitmatrix_ops_total{op}``;
* the kernel-dispatch tier (:mod:`repro.bitops.dispatch`):
  ``kernel_dispatch_total{kernel, impl, tier}`` — one increment per
  dispatched kernel call inside a traced task, labelling which registered
  implementation won.

Counters and gauges are exact and order-independent, so their merged
values are identical under the serial, thread, and process backends.
Histograms bucket on fixed bounds; only their *time-valued* observations
differ between backends (the counts per stage do not).
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Exponential-ish default bounds, tuned for task durations in seconds.
DEFAULT_BUCKETS = (
    0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set (values stringified)."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)
    metric_kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)
    metric_kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Bucketed observations with sum/count/min/max.

    Stores cumulative bucket counts over fixed bounds, so two runs that
    observe the same multiset of values — in any order — produce identical
    snapshots.
    """

    __slots__ = ("buckets", "counts", "sum", "count", "min", "max")
    metric_kind = "histogram"

    def __init__(self, buckets: Iterable[float] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += value
        self.count += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q: float) -> "float | None":
        """Bucket-interpolated quantile estimate (``None`` when empty).

        Standard histogram-quantile estimation: find the bucket where the
        cumulative count crosses ``q * count`` and interpolate linearly
        inside it.  The estimate is exact at bucket bounds and clamped to
        the observed ``[min, max]``, so single-observation histograms and
        overflow-bucket quantiles stay honest instead of reporting a
        bucket bound nothing ever hit.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for bound, bucket_count in zip(self.buckets, self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if bucket_count == 0:
                    estimate = bound
                else:
                    within = target - (cumulative - bucket_count)
                    estimate = lower + (bound - lower) * within / bucket_count
                return max(self.min, min(self.max, estimate))
            lower = bound
        # Overflow bucket: no upper bound to interpolate against.
        return self.max

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": dict(zip(self.buckets, self.counts)),
            "overflow": self.counts[-1],
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Get-or-create registry of labelled metric instruments; thread-safe.

    A metric name must keep one instrument type across all label sets
    (``counter("x")`` then ``gauge("x")`` raises).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelKey], Any] = {}
        self._types: dict[str, str] = {}

    def _get(self, cls, name: str, labels: dict[str, Any], *args):
        key = (name, _label_key(labels))
        with self._lock:
            existing_type = self._types.get(name)
            if existing_type is not None and existing_type != cls.metric_kind:
                raise ValueError(
                    f"metric {name!r} is a {existing_type}, not a {cls.metric_kind}"
                )
            if key not in self._metrics:
                self._types[name] = cls.metric_kind
                self._metrics[key] = cls(*args)
            return self._metrics[key]

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets)

    # -- worker-delta merging ------------------------------------------
    def merge_deltas(self, deltas: Iterable[tuple]) -> None:
        """Fold worker-side increments (see ``TaskTraceContext``) in.

        Each delta is ``(name, label_key, metric_kind, value)``.  Counter
        deltas add; gauge deltas overwrite; histogram deltas observe once.
        """
        for name, label_key, metric_kind, value in deltas:
            labels = dict(label_key)
            if metric_kind == "counter":
                self.counter(name, **labels).inc(value)
            elif metric_kind == "gauge":
                self.gauge(name, **labels).set(value)
            elif metric_kind == "histogram":
                self.histogram(name, **labels).observe(value)
            else:
                raise ValueError(f"unknown metric kind {metric_kind!r}")

    # -- introspection -------------------------------------------------
    def collect(self) -> list[tuple[str, LabelKey, str, Any]]:
        """Sorted snapshots: ``(name, labels, kind, value)`` per instrument."""
        with self._lock:
            rows = [
                (name, label_key, metric.metric_kind, metric.snapshot())
                for (name, label_key), metric in self._metrics.items()
            ]
        return sorted(rows, key=lambda row: (row[0], row[1]))

    def counters(self) -> dict[str, dict[LabelKey, float]]:
        """All counter values, grouped by metric name."""
        grouped: dict[str, dict[LabelKey, float]] = {}
        for name, labels, metric_kind, value in self.collect():
            if metric_kind == "counter":
                grouped.setdefault(name, {})[labels] = value
        return grouped

    def value(self, name: str, **labels: Any) -> float:
        """One counter/gauge value (0.0 if never reported)."""
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
        if metric is None:
            return 0.0
        return metric.value

    def to_text(self) -> str:
        """Prometheus-style plain-text exposition of every instrument."""
        lines = []
        for name, label_key, metric_kind, snap in self.collect():
            labels = (
                "{" + ",".join(f'{k}="{v}"' for k, v in label_key) + "}"
                if label_key
                else ""
            )
            if metric_kind == "histogram":
                lines.append(
                    f"{name}{labels} count={snap['count']} sum={snap['sum']:.6f} "
                    f"min={snap['min']} max={snap['max']}"
                )
            else:
                value = snap
                rendered = (
                    f"{int(value)}" if float(value).is_integer() else f"{value:.6f}"
                )
                lines.append(f"{name}{labels} {rendered}")
        return "\n".join(lines)

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._types.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry(instruments={len(self._metrics)})"
