"""Tests for batch-streamed tensor ingestion."""

import numpy as np
import pytest

from repro.storage import (
    MmapUnfoldingStore,
    StreamingTensorBuilder,
    iter_coordinate_batches,
)
from repro.tensor import PackedUnfolding, SparseBoolTensor, random_tensor, unfold


class TestStreamingTensorBuilder:
    def test_matches_one_shot_construction(self):
        tensor = random_tensor((8, 9, 10), density=0.15,
                               rng=np.random.default_rng(11))
        builder = StreamingTensorBuilder((8, 9, 10))
        for batch in np.array_split(tensor.coords, 5):
            builder.add_batch(batch)
        built = builder.build()
        assert built.shape == tensor.shape
        assert np.array_equal(built.coords, tensor.coords)

    def test_duplicates_across_batches_collapse(self):
        builder = StreamingTensorBuilder((4, 4))
        builder.add_batch([(0, 0), (1, 2), (0, 0)])
        builder.add_batch([(1, 2), (3, 3)])
        assert builder.nnz == 3
        assert builder.rows_ingested == 5
        assert builder.batches_ingested == 2
        expected = SparseBoolTensor.from_nonzeros(
            (4, 4), [(0, 0), (1, 2), (3, 3)]
        )
        assert np.array_equal(builder.build().coords, expected.coords)

    def test_empty_batch_is_noop(self):
        builder = StreamingTensorBuilder((3, 3))
        builder.add_batch(np.zeros((0, 2), dtype=np.int64))
        assert builder.nnz == 0
        assert builder.batches_ingested == 1
        assert builder.build().coords.shape == (0, 2)

    def test_chaining(self):
        builder = StreamingTensorBuilder((2, 2)).add_batch([(0, 1)]).add_batch(
            [(1, 0)]
        )
        assert builder.nnz == 2

    @pytest.mark.parametrize("shape", [(), (0, 3), (-1, 3)])
    def test_bad_shape_rejected(self, shape):
        with pytest.raises(ValueError):
            StreamingTensorBuilder(shape)

    def test_wrong_arity_rejected(self):
        builder = StreamingTensorBuilder((3, 3, 3))
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            builder.add_batch([(0, 1)])

    def test_out_of_bounds_rejected(self):
        builder = StreamingTensorBuilder((3, 3))
        with pytest.raises(ValueError, match="out of bounds"):
            builder.add_batch([(0, 3)])
        with pytest.raises(ValueError, match="negative"):
            builder.add_batch([(-1, 0)])

    def test_packed_unfolding_matches_direct(self):
        tensor = random_tensor((6, 7, 8), density=0.2,
                               rng=np.random.default_rng(5))
        builder = StreamingTensorBuilder(tensor.shape)
        builder.add_batch(tensor.coords)
        for mode in range(3):
            direct = PackedUnfolding(unfold(tensor, mode))
            streamed = builder.packed_unfolding(mode)
            assert np.array_equal(streamed.words, direct.words)

    def test_packed_unfolding_through_store(self, tmp_path):
        tensor = random_tensor((6, 7, 8), density=0.2,
                               rng=np.random.default_rng(5))
        builder = StreamingTensorBuilder(tensor.shape)
        builder.add_batch(tensor.coords)
        direct = PackedUnfolding(unfold(tensor, 1))
        with MmapUnfoldingStore(str(tmp_path)) as store:
            streamed = builder.packed_unfolding(1, store=store)
            assert np.array_equal(np.asarray(streamed.words), direct.words)


class TestIterCoordinateBatches:
    def test_chunks_and_remainder(self):
        rows = [(i, i + 1) for i in range(10)]
        batches = list(iter_coordinate_batches(rows, batch_rows=4))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert all(b.dtype == np.int64 for b in batches)
        stacked = np.concatenate(batches)
        assert np.array_equal(stacked, np.asarray(rows, dtype=np.int64))

    def test_empty_source_yields_nothing(self):
        assert list(iter_coordinate_batches([], batch_rows=4)) == []

    def test_generator_source(self):
        rows = ((i, 0) for i in range(5))
        batches = list(iter_coordinate_batches(rows, batch_rows=2))
        assert [len(b) for b in batches] == [2, 2, 1]

    def test_non_positive_batch_rows_rejected(self):
        with pytest.raises(ValueError, match="batch_rows"):
            list(iter_coordinate_batches([(0, 0)], batch_rows=0))

    def test_feeds_builder_end_to_end(self):
        tensor = random_tensor((5, 6, 7), density=0.25,
                               rng=np.random.default_rng(2))
        builder = StreamingTensorBuilder(tensor.shape)
        rows = (tuple(coord) for coord in tensor.coords)
        for batch in iter_coordinate_batches(rows, batch_rows=16):
            builder.add_batch(batch)
        assert np.array_equal(builder.build().coords, tensor.coords)
