"""Shuffle observability: histogram, spill counter, per-bucket span events.

Every ``combine_by_key`` — on either routing path — must land one
``shuffle`` span event per reduce bucket (with bucket index, bytes,
segment and spill counts), observe each bucket's bytes into the
``shuffle_bucket_bytes`` histogram, and count spilled runs in
``shuffle_spill_total``.  The structure is pinned by a golden fixture
(``tests/goldens/shuffle_trace.json``, re-record with --update-goldens)
and must be bit-identical across the serial, thread, and process backends.
"""

import json
import os

import numpy as np
import pytest

from repro.distengine import ClusterConfig, SimulatedRuntime, TransferKind
from repro.observability import SpanKind, structural_tree

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")
GOLDEN_PATH = os.path.join(GOLDEN_DIR, "shuffle_trace.json")

BACKENDS = ["serial", "thread", "process"]


def _copy(value):
    return value.copy() if hasattr(value, "copy") else value


def _add(left, right):
    return left + right


def _traced_run(
    backend="serial", worker_shuffle=True, memory_budget=None
) -> SimulatedRuntime:
    """A fixed keyed workload through combine_by_key with tracing on."""
    runtime = SimulatedRuntime(
        ClusterConfig(
            n_machines=2, cores_per_machine=2, backend=backend, n_workers=2,
            tracing=True, worker_shuffle=worker_shuffle,
            memory_budget=memory_budget,
        )
    )
    try:
        data = [
            (i % 9, np.arange(6, dtype=np.int64) + i) for i in range(180)
        ]
        rdd = runtime.parallelize(data, n_partitions=6, name="kv")
        rdd.combine_by_key(_copy, _add, _add, n_partitions=4).glom()
    finally:
        runtime.close()
    return runtime


def _shuffle_events(runtime):
    return [
        span for span in runtime.tracer.spans
        if span.kind == SpanKind.SHUFFLE
    ]


def _structure_json(runtime) -> str:
    return json.dumps(
        structural_tree(runtime.tracer), indent=1, sort_keys=True
    )


def _histogram_snapshots(runtime, name):
    return {
        labels: snapshot
        for metric, labels, kind, snapshot in runtime.metrics.collect()
        if metric == name and kind == "histogram"
    }


class TestShuffleEvents:
    @pytest.mark.parametrize("worker_shuffle", [True, False])
    def test_one_event_per_bucket(self, worker_shuffle):
        runtime = _traced_run(worker_shuffle=worker_shuffle)
        events = _shuffle_events(runtime)
        assert [event.attrs["bucket"] for event in events] == [0, 1, 2, 3]
        assert all(event.attrs["bytes"] >= 0 for event in events)

    def test_event_bytes_sum_to_ledger_charge(self):
        runtime = _traced_run()
        events = _shuffle_events(runtime)
        assert sum(event.attrs["bytes"] for event in events) == (
            runtime.ledger.bytes_of_kind(TransferKind.SHUFFLE)
        )

    def test_events_identical_across_paths(self):
        worker = _traced_run(worker_shuffle=True)
        legacy = _traced_run(worker_shuffle=False)
        worker_view = [
            (e.name, e.attrs["bucket"], e.attrs["bytes"])
            for e in _shuffle_events(worker)
        ]
        legacy_view = [
            (e.name, e.attrs["bucket"], e.attrs["bytes"])
            for e in _shuffle_events(legacy)
        ]
        assert worker_view == legacy_view

    def test_spilled_buckets_flagged(self):
        runtime = _traced_run(memory_budget=2500)
        events = _shuffle_events(runtime)
        assert sum(event.attrs["spilled"] for event in events) > 0
        assert all(event.attrs["segments"] >= 1 for event in events)


class TestShuffleMetrics:
    def test_bucket_histogram_semantics(self):
        runtime = _traced_run()
        histograms = _histogram_snapshots(runtime, "shuffle_bucket_bytes")
        (labels, snapshot), = histograms.items()
        assert dict(labels)["stage"].endswith(".combineByKey")
        assert snapshot["count"] == 4
        assert snapshot["sum"] == (
            runtime.ledger.bytes_of_kind(TransferKind.SHUFFLE)
        )

    def test_histogram_identical_across_paths(self):
        worker = _traced_run(worker_shuffle=True)
        legacy = _traced_run(worker_shuffle=False)
        assert (
            _histogram_snapshots(worker, "shuffle_bucket_bytes")
            == _histogram_snapshots(legacy, "shuffle_bucket_bytes")
        )

    def test_spill_total_absent_without_budget(self):
        runtime = _traced_run()
        assert "shuffle_spill_total" not in runtime.metrics.counters()

    def test_spill_total_counts_runs(self):
        runtime = _traced_run(memory_budget=2500)
        spills = runtime.metrics.counters()["shuffle_spill_total"]
        assert sum(spills.values()) > 0


class TestGoldenShuffleTrace:
    def test_serial_trace_matches_golden(self, update_goldens):
        actual = _structure_json(_traced_run(memory_budget=2500)) + "\n"
        if update_goldens:
            os.makedirs(GOLDEN_DIR, exist_ok=True)
            with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
                handle.write(actual)
            pytest.skip("golden updated")
        assert os.path.exists(GOLDEN_PATH), (
            f"golden fixture missing; record it with "
            f"pytest {os.path.basename(__file__)} --update-goldens"
        )
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            expected = handle.read()
        if actual != expected:
            actual_path = GOLDEN_PATH.replace(".json", ".actual.json")
            with open(actual_path, "w", encoding="utf-8") as handle:
                handle.write(actual)
            raise AssertionError(
                f"shuffle trace structure drifted from the golden fixture; "
                f"actual written to {actual_path} — if the change is "
                f"intentional, re-record with --update-goldens"
            )

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_structure_backend_invariant(self, backend):
        serial = _structure_json(_traced_run(memory_budget=2500))
        other = _structure_json(
            _traced_run(backend=backend, memory_budget=2500)
        )
        assert other == serial
