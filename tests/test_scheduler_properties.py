"""Property-based tests for the LPT scheduler (hypothesis).

The cost replay rests on two functions: ``assign_tasks`` (which tasks run
where) and ``makespan`` (when the stage finishes).  These properties pin
down the contract the simulated-time numbers depend on:

* every task is assigned to exactly one slot;
* the makespan is never below the two classic lower bounds,
  ``max(durations)`` and ``sum(durations) / n_slots``;
* LPT stays within its Graham bound of ``4/3`` of the optimum
  (checked against brute force on small instances);
* ``makespan`` equals the realized completion time of ``assign_tasks``.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distengine.scheduler import assign_tasks, makespan

durations_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
              allow_infinity=False),
    min_size=0,
    max_size=40,
)
slots_strategy = st.integers(min_value=1, max_value=12)


@given(durations=durations_strategy, n_slots=slots_strategy)
def test_each_task_assigned_exactly_once(durations, n_slots):
    assignments = assign_tasks(durations, n_slots)
    assert len(assignments) == n_slots
    flat = [index for slot in assignments for index in slot]
    assert sorted(flat) == list(range(len(durations)))


@given(durations=durations_strategy, n_slots=slots_strategy)
def test_makespan_respects_lower_bounds(durations, n_slots):
    span = makespan(durations, n_slots)
    assert span >= 0.0
    if durations:
        assert span >= max(durations)
        # Allow float-summation slack on the average-load bound.
        assert span >= sum(durations) / n_slots - 1e-9 * max(1.0, sum(durations))


@given(durations=durations_strategy, n_slots=slots_strategy)
def test_makespan_matches_assignment_completion_time(durations, n_slots):
    assignments = assign_tasks(durations, n_slots)
    realized = max(
        (sum(durations[index] for index in slot) for slot in assignments),
        default=0.0,
    )
    assert abs(makespan(durations, n_slots) - realized) <= 1e-9 * max(
        1.0, realized
    )


@given(
    durations=durations_strategy,
    n_slots=slots_strategy,
    extra=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)
def test_makespan_monotone_in_work(durations, n_slots, extra):
    assert makespan(durations + [extra], n_slots) >= makespan(
        durations, n_slots
    ) - 1e-9


def _optimal_makespan(durations, n_slots):
    """Exact optimum by exhausting every task-to-slot assignment."""
    best = float("inf")
    for assignment in itertools.product(range(n_slots), repeat=len(durations)):
        loads = [0.0] * n_slots
        for index, slot in enumerate(assignment):
            loads[slot] += durations[index]
        best = min(best, max(loads))
    return best


@settings(max_examples=60, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False,
                  allow_infinity=False),
        min_size=1,
        max_size=8,
    ),
    n_slots=st.integers(min_value=1, max_value=3),
)
def test_lpt_within_graham_bound_of_optimum(durations, n_slots):
    """Graham (1969): LPT <= (4/3 - 1/(3m)) * OPT <= 4/3 * OPT."""
    lpt = makespan(durations, n_slots)
    opt = _optimal_makespan(durations, n_slots)
    assert lpt <= (4.0 / 3.0) * opt + 1e-9 * max(1.0, opt)
