"""Unit tests for MDL rank selection."""

import math

import numpy as np
import pytest

from repro.metrics import (
    description_length,
    factors_code_length,
    log2_binomial,
    select_rank,
    vector_code_length,
)
from repro.tensor import planted_tensor, random_factors


class TestLog2Binomial:
    def test_edge_cases(self):
        assert log2_binomial(5, 0) == 0.0
        assert log2_binomial(5, 5) == 0.0

    def test_small_values_exact(self):
        assert log2_binomial(4, 2) == pytest.approx(math.log2(6))
        assert log2_binomial(10, 3) == pytest.approx(math.log2(120))

    def test_symmetry(self):
        assert log2_binomial(20, 7) == pytest.approx(log2_binomial(20, 13))

    def test_invalid(self):
        with pytest.raises(ValueError):
            log2_binomial(3, 4)
        with pytest.raises(ValueError):
            log2_binomial(3, -1)

    def test_large_values_stable(self):
        bits = log2_binomial(10**6, 10**3)
        assert bits > 0
        assert math.isfinite(bits)


class TestVectorCodeLength:
    def test_empty_vector_costs_only_count(self):
        assert vector_code_length(7, 0) == pytest.approx(3.0)

    def test_monotone_toward_half(self):
        lengths = [vector_code_length(20, k) for k in range(11)]
        assert lengths == sorted(lengths)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            vector_code_length(-1, 0)


class TestDescriptionLength:
    def test_zero_factors_cost_error_only(self):
        rng = np.random.default_rng(0)
        tensor, _ = planted_tensor((8, 8, 8), rank=2, factor_density=0.4, rng=rng)
        factors = random_factors((8, 8, 8), 2, 0.0, rng)
        bits = description_length(tensor, factors)
        # All ones must be encoded as errors.
        assert bits >= log2_binomial(512, tensor.nnz)

    def test_perfect_factors_have_no_error_term_growth(self):
        rng = np.random.default_rng(1)
        tensor, factors = planted_tensor((8, 8, 8), rank=2, factor_density=0.4, rng=rng)
        perfect = description_length(tensor, factors)
        model_only = factors_code_length(factors) + vector_code_length(512, 0)
        assert perfect == pytest.approx(model_only)

    def test_factors_code_length_additive(self):
        rng = np.random.default_rng(2)
        factors = random_factors((6, 6, 6), 3, 0.5, rng)
        total = factors_code_length(factors)
        per_factor = sum(
            sum(
                vector_code_length(f.n_rows, int(f.column(c).sum()))
                for c in range(f.n_cols)
            )
            for f in factors
        )
        assert total == pytest.approx(per_factor)


class TestSelectRank:
    def test_identifies_planted_rank_region(self):
        rng = np.random.default_rng(3)
        tensor, _ = planted_tensor((24, 24, 24), rank=4, factor_density=0.25, rng=rng)
        selection = select_rank(tensor, ranks=(1, 4, 10))
        # Rank 1 underfits (huge error term); rank 10 overfits (model cost);
        # the planted rank should win.
        assert selection.best_rank == 4

    def test_custom_factorizer(self):
        rng = np.random.default_rng(4)
        tensor, planted = planted_tensor((8, 8, 8), rank=2, factor_density=0.4, rng=rng)

        def perfect_factorizer(data, rank):
            return planted

        selection = select_rank(tensor, ranks=(2,), factorize=perfect_factorizer)
        assert selection.best_rank == 2
        assert selection.candidates[0][1] == 0  # zero error

    def test_empty_ranks_rejected(self):
        rng = np.random.default_rng(5)
        tensor, _ = planted_tensor((4, 4, 4), rank=1, factor_density=0.5, rng=rng)
        with pytest.raises(ValueError):
            select_rank(tensor, ranks=())

    def test_table_output(self):
        rng = np.random.default_rng(6)
        tensor, planted = planted_tensor((8, 8, 8), rank=2, factor_density=0.4, rng=rng)
        selection = select_rank(tensor, ranks=(2,), factorize=lambda d, r: planted)
        text = selection.table()
        assert "<- best" in text
        assert "rank" in text
