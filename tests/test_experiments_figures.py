"""Integration tests for the figure/table experiment drivers (tiny grids)."""

import pytest

from repro.experiments import (
    run_additive_noise_sweep,
    run_density,
    run_destructive_noise_sweep,
    run_dimensionality,
    run_factor_density_sweep,
    run_machine_scalability,
    run_rank,
    run_rank_sweep,
    run_realworld,
    table1,
    table3,
)
from repro.datasets import ErrorTensorSpec


TINY_SPEC = ErrorTensorSpec(shape=(16, 16, 16), rank=3, factor_density=0.3)


class TestFigure1:
    def test_dimensionality_rows(self):
        table = run_dimensionality(exponents=(4, 5), timeout_sec=30)
        assert len(table.rows) == 2
        assert table.headers[0] == "I=J=K"
        # DBTF must complete at these sizes.
        assert all(not cell.startswith("O.O.") for cell in table.column("DBTF (s)"))

    def test_density_rows(self):
        table = run_density(densities=(0.05, 0.1), exponent=4, timeout_sec=30)
        assert len(table.rows) == 2

    def test_rank_rows_cross_v_threshold(self):
        table = run_rank(ranks=(10, 20), exponent=4, timeout_sec=30)
        assert len(table.rows) == 2
        assert all(not cell.startswith("O.O.") for cell in table.column("DBTF (s)"))


class TestFigure6:
    @pytest.mark.slow
    def test_facebook_standin(self):
        table = run_realworld(dataset_names=("facebook",), timeout_sec=30)
        assert len(table.rows) == 1
        assert not table.rows[0][2].startswith("O.O.")  # DBTF completes


class TestFigure7:
    def test_speedup_monotone(self):
        table = run_machine_scalability(
            machines=(4, 8, 16), exponent=5, max_iterations=2
        )
        speedups = [float(cell) for cell in table.column("speed-up T4/T_M")]
        assert speedups[0] == pytest.approx(1.0)
        assert speedups == sorted(speedups)
        assert speedups[-1] > 1.0


class TestErrorSweeps:
    def test_factor_density_sweep(self):
        table = run_factor_density_sweep(
            densities=(0.3,), base=TINY_SPEC, timeout_sec=60
        )
        assert len(table.rows) == 1
        dbtf_cell = table.rows[0][1]
        assert not dbtf_cell.startswith("O.O.")
        assert float(dbtf_cell) <= 1.0

    def test_rank_sweep(self):
        table = run_rank_sweep(ranks=(3,), base=TINY_SPEC, timeout_sec=60)
        assert len(table.rows) == 1

    def test_additive_noise_zero_level(self):
        table = run_additive_noise_sweep(
            levels=(0.0,), base=TINY_SPEC, timeout_sec=60
        )
        assert len(table.rows) == 1

    def test_destructive_noise_level(self):
        table = run_destructive_noise_sweep(
            levels=(0.05,), base=TINY_SPEC, timeout_sec=60
        )
        assert len(table.rows) == 1


class TestTables:
    def test_table1_from_precomputed_sweeps(self):
        dims = run_dimensionality(exponents=(4,), timeout_sec=30)
        dens = run_density(densities=(0.05,), exponent=4, timeout_sec=30)
        rank = run_rank(ranks=(10,), exponent=4, timeout_sec=30)
        table = table1(dimensionality=dims, density=dens, rank=rank)
        assert [row[0] for row in table.rows] == ["DBTF", "Walk'n'Merge", "BCP_ALS"]
        dbtf_row = table.rows[0]
        assert dbtf_row[1:] == ["High", "High", "High", "Yes"]

    def test_table3_lists_all_datasets(self):
        table = table3()
        assert len(table.rows) == 6
        assert table.rows[0][0] == "facebook"
