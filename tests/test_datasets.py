"""Unit tests for synthetic generators and the dataset registry."""

import numpy as np
import pytest

from repro.datasets import (
    REGISTRY,
    ErrorTensorSpec,
    blocky_tensor,
    error_tensor,
    list_datasets,
    load_dataset,
    scalability_tensor,
)
from repro.tensor import tensor_from_factors


class TestScalabilityTensor:
    def test_shape_and_density(self):
        tensor = scalability_tensor(5, density=0.01, seed=0)
        assert tensor.shape == (32, 32, 32)
        assert tensor.nnz == round(0.01 * 32**3)

    def test_deterministic(self):
        assert scalability_tensor(4, 0.05, seed=3) == scalability_tensor(4, 0.05, seed=3)

    def test_different_seeds_differ(self):
        assert scalability_tensor(4, 0.05, seed=1) != scalability_tensor(4, 0.05, seed=2)

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            scalability_tensor(0, 0.1)


class TestErrorTensor:
    def test_noise_free_matches_factors(self):
        spec = ErrorTensorSpec(
            shape=(16, 16, 16), rank=3, factor_density=0.3,
            additive_noise=0.0, destructive_noise=0.0,
        )
        tensor, factors = error_tensor(spec)
        assert tensor == tensor_from_factors(factors)

    def test_additive_and_destructive_noise_counts(self):
        spec = ErrorTensorSpec(
            shape=(16, 16, 16), rank=3, factor_density=0.3,
            additive_noise=0.1, destructive_noise=0.05,
        )
        tensor, factors = error_tensor(spec)
        clean = tensor_from_factors(factors)
        # additive applied to clean count, then destructive on clean count.
        expected = clean.nnz + round(0.1 * clean.nnz) - round(0.05 * clean.nnz)
        assert tensor.nnz == expected

    def test_defaults_match_paper(self):
        spec = ErrorTensorSpec()
        assert spec.rank == 10
        assert spec.factor_density == 0.1
        assert spec.additive_noise == 0.10
        assert spec.destructive_noise == 0.05


class TestBlockyTensor:
    def test_single_full_block(self):
        rng = np.random.default_rng(0)
        tensor = blocky_tensor(
            (10, 10, 10), n_blocks=1, block_dims=((4, 4), (4, 4), (4, 4)), rng=rng
        )
        assert tensor.nnz == 64

    def test_fill_reduces_density(self):
        rng = np.random.default_rng(1)
        tensor = blocky_tensor(
            (10, 10, 10), n_blocks=1, block_dims=((6, 6), (6, 6), (6, 6)),
            rng=rng, block_fill=0.5,
        )
        assert 0 < tensor.nnz < 216

    def test_noise_added(self):
        rng = np.random.default_rng(2)
        quiet = blocky_tensor(
            (10, 10, 10), n_blocks=0, block_dims=((1, 1),) * 3, rng=rng
        )
        assert quiet.nnz == 0
        rng = np.random.default_rng(2)
        noisy = blocky_tensor(
            (10, 10, 10), n_blocks=0, block_dims=((1, 1),) * 3,
            rng=rng, noise_density=0.05,
        )
        assert noisy.nnz == round(0.05 * 1000)

    def test_invalid_block_dims(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            blocky_tensor((4, 4, 4), 1, ((5, 6), (1, 1), (1, 1)), rng)

    def test_invalid_fill(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            blocky_tensor((4, 4, 4), 1, ((1, 1),) * 3, rng, block_fill=0.0)

    def test_negative_blocks(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            blocky_tensor((4, 4, 4), -1, ((1, 1),) * 3, rng)


class TestRegistry:
    def test_all_table3_datasets_present(self):
        assert list_datasets() == [
            "facebook", "dblp", "ddos-s", "ddos-l", "nell-s", "nell-l",
        ]

    @pytest.mark.parametrize("name", ["facebook", "dblp", "ddos-s", "nell-s"])
    def test_generation_matches_spec_shape(self, name):
        tensor = load_dataset(name, seed=0)
        assert tensor.shape == REGISTRY[name].shape
        assert tensor.nnz > 0

    def test_deterministic_generation(self):
        assert load_dataset("facebook", seed=1) == load_dataset("facebook", seed=1)

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("imaginary")

    def test_size_ordering_small_vs_large(self):
        # The -L variants must be larger than their -S counterparts.
        assert load_dataset("ddos-l").nnz > load_dataset("ddos-s").nnz
        assert load_dataset("nell-l").nnz > load_dataset("nell-s").nnz
