"""Tests for the Sec. IV-D error-experiment driver."""

import pytest

from repro.datasets import ErrorTensorSpec
from repro.experiments.errors import compare_on_spec

TINY = ErrorTensorSpec(shape=(12, 12, 12), rank=2, factor_density=0.35,
                       additive_noise=0.0, destructive_noise=0.0)


class TestCompareOnSpec:
    def test_returns_three_outcomes_in_order(self):
        dbtf_outcome, wnm_outcome, bcp_outcome = compare_on_spec(
            TINY, timeout_sec=60
        )
        assert dbtf_outcome.method == "DBTF"
        assert wnm_outcome.method == "WalkNMerge"
        assert bcp_outcome.method == "BCP_ALS"

    def test_all_methods_beat_or_match_empty_model(self):
        outcomes = compare_on_spec(TINY, timeout_sec=60)
        for outcome in outcomes:
            assert outcome.ok
            assert outcome.relative_error <= 1.0

    def test_noise_free_dbtf_is_accurate(self):
        dbtf_outcome, _, _ = compare_on_spec(TINY, timeout_sec=60,
                                             n_initial_sets=6)
        assert dbtf_outcome.relative_error < 0.3

    def test_walk_n_merge_threshold_follows_destructive_noise(self):
        # With n_d = 0.5, t = 1 - n_d = 0.5; the call must not error and
        # must produce a valid outcome.
        spec = ErrorTensorSpec(shape=(12, 12, 12), rank=2, factor_density=0.35,
                               additive_noise=0.0, destructive_noise=0.5)
        _, wnm_outcome, _ = compare_on_spec(spec, timeout_sec=60)
        assert wnm_outcome.ok
