"""Extra matricization tests: Unfolding metadata and columns()."""

import numpy as np
import pytest

from repro.tensor import SparseBoolTensor, unfold


class TestUnfoldingColumns:
    def test_columns_formula(self):
        tensor = SparseBoolTensor.from_nonzeros(
            (3, 4, 5), [(0, 1, 2), (2, 3, 4), (1, 0, 0)]
        )
        unfolding = unfold(tensor, 0)
        # column = j + k * J
        expected = {
            (0, 1 + 2 * 4),
            (2, 3 + 4 * 4),
            (1, 0),
        }
        actual = set(zip(unfolding.rows.tolist(), unfolding.columns().tolist()))
        assert actual == expected

    def test_nnz_property(self):
        tensor = SparseBoolTensor.from_nonzeros((2, 2, 2), [(0, 0, 0), (1, 1, 1)])
        assert unfold(tensor, 1).nnz == 2

    def test_columns_within_bounds(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((4, 5, 6)) < 0.4).astype(np.uint8)
        tensor = SparseBoolTensor.from_dense(dense)
        for mode in range(3):
            unfolding = unfold(tensor, mode)
            columns = unfolding.columns()
            assert (columns >= 0).all()
            assert (columns < unfolding.n_cols).all()

    def test_dense_roundtrip_via_columns(self):
        rng = np.random.default_rng(1)
        dense = (rng.random((3, 4, 2)) < 0.5).astype(np.uint8)
        tensor = SparseBoolTensor.from_dense(dense)
        unfolding = unfold(tensor, 2)
        rebuilt = np.zeros((unfolding.n_rows, unfolding.n_cols), dtype=np.uint8)
        rebuilt[unfolding.rows, unfolding.columns()] = 1
        np.testing.assert_array_equal(rebuilt, unfolding.to_dense())
