"""Unit tests for the storage tier's memory budget and size helpers."""

import pytest

from repro.observability import MetricsRegistry
from repro.storage import MemoryBudget, format_size, parse_memory_size


class TestParseMemorySize:
    @pytest.mark.parametrize("text,expected", [
        ("4096", 4096),
        ("64K", 64 * 1024),
        ("64KB", 64 * 1024),
        ("2M", 2 * 1024 ** 2),
        ("1.5G", int(1.5 * 1024 ** 3)),
        ("1T", 1024 ** 4),
        (" 8 k ", 8 * 1024),
        (12345, 12345),
    ])
    def test_valid(self, text, expected):
        assert parse_memory_size(text) == expected

    @pytest.mark.parametrize("text", ["", "64Q", "abc", "12.3.4M", "-5M", "0"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            parse_memory_size(text)

    def test_format_round_numbers(self):
        assert format_size(512) == "512 B"
        assert format_size(12 * 1024 ** 2) == "12.0 MiB"
        assert format_size(3 * 1024 ** 3) == "3.0 GiB"


class TestMemoryBudget:
    def test_charge_release_and_peak(self):
        budget = MemoryBudget(1000)
        budget.charge(400)
        budget.charge(300)
        assert budget.resident_bytes == 700
        assert budget.peak_resident == 700
        budget.release(600)
        assert budget.resident_bytes == 100
        assert budget.peak_resident == 700  # high-water mark stays
        assert budget.total_charged == 700

    def test_fits_and_available(self):
        budget = MemoryBudget(100)
        assert budget.fits(100)
        budget.charge(60)
        assert budget.available_bytes == 40
        assert budget.fits(40)
        assert not budget.fits(41)

    def test_over_release_raises(self):
        budget = MemoryBudget(100)
        budget.charge(10)
        with pytest.raises(ValueError, match="accounting bug"):
            budget.release(11)

    def test_negative_amounts_raise(self):
        budget = MemoryBudget(100)
        with pytest.raises(ValueError):
            budget.charge(-1)
        with pytest.raises(ValueError):
            budget.release(-1)

    def test_non_positive_limit_raises(self):
        with pytest.raises(ValueError):
            MemoryBudget(0)

    def test_spill_and_load_accounting(self):
        budget = MemoryBudget(100)
        budget.count_spill(64)
        budget.count_spill(32)
        budget.count_load()
        assert budget.spilled_bytes == 96
        assert budget.spill_events == 2
        assert budget.load_events == 1

    def test_metrics_wired(self):
        registry = MetricsRegistry()
        budget = MemoryBudget(1000, metrics=registry)
        budget.charge(250)
        budget.count_spill(64)
        budget.count_load()
        assert registry.value("storage_bytes_resident") == 250.0
        assert registry.value("storage_bytes_spilled_total") == 64.0
        assert registry.value("storage_spill_events_total") == 1.0
        assert registry.value("storage_load_events_total") == 1.0
        budget.release(250)
        assert registry.value("storage_bytes_resident") == 0.0
