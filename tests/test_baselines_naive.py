"""Unit tests for the exhaustive test oracles."""

import numpy as np
import pytest

from repro.baselines import error_of_rank1, exhaustive_best_rank1
from repro.tensor import SparseBoolTensor, outer_product


class TestExhaustiveRank1:
    def test_exact_on_rank1_tensor(self):
        tensor = outer_product([1, 0, 1], [0, 1, 1], [1, 1, 0])
        _, error = exhaustive_best_rank1(tensor)
        assert error == 0

    def test_empty_tensor_best_is_zero(self):
        vectors, error = exhaustive_best_rank1(SparseBoolTensor.empty((2, 2, 2)))
        assert error == 0
        assert outer_product(*vectors).nnz == 0

    def test_returns_global_optimum(self):
        rng = np.random.default_rng(0)
        dense = (rng.random((3, 3, 3)) < 0.4).astype(np.uint8)
        tensor = SparseBoolTensor.from_dense(dense)
        vectors, error = exhaustive_best_rank1(tensor)
        assert error == error_of_rank1(tensor, *vectors)
        # Verify optimality against a random sample of alternatives.
        for _ in range(30):
            a = (rng.random(3) < 0.5).astype(np.uint8)
            b = (rng.random(3) < 0.5).astype(np.uint8)
            c = (rng.random(3) < 0.5).astype(np.uint8)
            assert error_of_rank1(tensor, a, b, c) >= error

    def test_size_guard(self):
        with pytest.raises(ValueError):
            exhaustive_best_rank1(SparseBoolTensor.empty((8, 8, 8)))

    def test_error_of_rank1(self):
        tensor = SparseBoolTensor.from_nonzeros((2, 2, 2), [(0, 0, 0)])
        assert error_of_rank1(tensor, [1, 0], [1, 0], [1, 0]) == 0
        assert error_of_rank1(tensor, [0, 0], [0, 0], [0, 0]) == 1
        assert error_of_rank1(tensor, [1, 1], [1, 1], [1, 1]) == 7
