"""Unit tests for the experiment harness."""

import time

import numpy as np
import pytest

from repro.baselines import MemoryBudgetExceeded
from repro.experiments import (
    STATUS_OK,
    STATUS_OOM,
    STATUS_OOT,
    MethodOutcome,
    ResultTable,
    call_with_timeout,
    run_bcp_als,
    run_dbtf,
    run_walk_n_merge,
)
from repro.tensor import planted_tensor


class TestCallWithTimeout:
    def test_fast_call_ok(self):
        value, elapsed, status = call_with_timeout(lambda: 42, timeout_sec=5)
        assert value == 42
        assert status == STATUS_OK
        assert elapsed >= 0

    def test_no_timeout(self):
        value, _, status = call_with_timeout(lambda: "done", timeout_sec=None)
        assert value == "done"
        assert status == STATUS_OK

    def test_timeout_fires(self):
        def slow():
            time.sleep(5)
            return "never"

        value, elapsed, status = call_with_timeout(slow, timeout_sec=0.2)
        assert value is None
        assert status == STATUS_OOT
        assert elapsed < 2

    def test_memory_budget_maps_to_oom(self):
        def explode():
            raise MemoryBudgetExceeded("too big")

        value, _, status = call_with_timeout(explode, timeout_sec=5)
        assert value is None
        assert status == STATUS_OOM

    def test_other_exceptions_propagate(self):
        with pytest.raises(RuntimeError):
            call_with_timeout(lambda: (_ for _ in ()).throw(RuntimeError("x")), 5)


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable("My Table", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(2, "yy")
        text = table.to_text()
        assert "My Table" in text
        assert "yy" in text

    def test_wrong_arity_rejected(self):
        table = ResultTable("t", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_csv(self):
        table = ResultTable("t", ["a", "b"])
        table.add_row(1, 2)
        assert table.to_csv() == "a,b\n1,2"

    def test_column_access(self):
        table = ResultTable("t", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column("b") == ["x", "y"]

    def test_empty_table_renders(self):
        assert "t" in ResultTable("t", ["a"]).to_text()


class TestMethodOutcome:
    def test_labels_ok(self):
        outcome = MethodOutcome("m", STATUS_OK, 1.234, error=5, relative_error=0.25)
        assert outcome.time_label() == "1.23"
        assert outcome.error_label() == "0.250"
        assert outcome.ok

    def test_labels_failed(self):
        outcome = MethodOutcome("m", STATUS_OOT, 60.0)
        assert outcome.time_label() == STATUS_OOT
        assert outcome.error_label() == STATUS_OOT
        assert not outcome.ok


class TestMethodRunners:
    @pytest.fixture(scope="class")
    def tensor(self):
        rng = np.random.default_rng(0)
        tensor, _ = planted_tensor((12, 12, 12), rank=2, factor_density=0.3, rng=rng)
        return tensor

    def test_run_dbtf(self, tensor):
        outcome = run_dbtf(tensor, 2, seed=0, n_partitions=4)
        assert outcome.ok
        assert outcome.error is not None
        assert outcome.seconds > 0
        assert outcome.details["host_seconds"] > 0

    def test_run_bcp_als(self, tensor):
        outcome = run_bcp_als(tensor, 2)
        assert outcome.ok
        assert outcome.error is not None

    def test_run_bcp_als_oom(self, tensor):
        outcome = run_bcp_als(tensor, 2, memory_budget_bytes=16)
        assert outcome.status == STATUS_OOM

    def test_run_walk_n_merge(self, tensor):
        outcome = run_walk_n_merge(tensor, 2)
        assert outcome.ok
        assert "n_blocks" in outcome.details
