"""Equivalence tests for the batched Boolean kernels and packing helpers.

Every vectorized fast path added for the factor-update hot path is pinned
against its loop-form reference: the batched ``boolean_matmul`` table
gather vs the per-row loop, the fused ``xor_popcount`` kernels vs
XOR-then-popcount, the packed column accessors vs per-row ``get_bit``/
``set_bit``, and the vectorized integer-mask helpers vs their Python-loop
definitions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import BitMatrix, boolean_matmul, khatri_rao, packing
from repro.bitops.ops import (
    _BATCH_MIN_ROWS,
    _boolean_matmul_batched,
    _boolean_matmul_rowloop,
)


def random_bitmatrix(n_rows, n_cols, seed, density=0.4):
    rng = np.random.default_rng(seed)
    return BitMatrix.random(n_rows, n_cols, density, rng)


class TestBatchedMatmul:
    @given(
        st.integers(1, 80),
        st.integers(1, 70),
        st.integers(1, 70),
        st.integers(0, 999),
    )
    @settings(max_examples=60, deadline=None)
    def test_batched_matches_rowloop(self, m, k, n, seed):
        left = random_bitmatrix(m, k, seed)
        right = random_bitmatrix(k, n, seed + 1)
        assert _boolean_matmul_batched(left, right) == _boolean_matmul_rowloop(
            left, right
        )

    @pytest.mark.parametrize("k", [1, 7, 8, 9, 63, 64, 65, 129])
    def test_partial_byte_groups(self, k):
        # Inner dimensions not divisible by 8 leave a partial last table
        # group; padding bits being zero must keep the gather in range.
        left = random_bitmatrix(40, k, k)
        right = random_bitmatrix(k, 20, k + 1)
        assert _boolean_matmul_batched(left, right) == _boolean_matmul_rowloop(
            left, right
        )

    def test_dispatch_threshold(self):
        # Public entry point agrees with both implementations on either
        # side of the dispatch threshold.
        for m in (_BATCH_MIN_ROWS - 1, _BATCH_MIN_ROWS, _BATCH_MIN_ROWS + 1):
            left = random_bitmatrix(m, 12, m)
            right = random_bitmatrix(12, 9, m + 1)
            assert boolean_matmul(left, right) == _boolean_matmul_rowloop(
                left, right
            )

    def test_empty_rows_stay_zero(self):
        left = BitMatrix.from_dense(np.zeros((64, 16), dtype=np.uint8))
        right = random_bitmatrix(16, 10, 3)
        product = boolean_matmul(left, right)
        assert product.to_dense().sum() == 0


class TestPackedKhatriRao:
    @given(st.integers(1, 9), st.integers(1, 9), st.integers(1, 70),
           st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_matches_dense_definition(self, p, q, r, seed):
        left = random_bitmatrix(p, r, seed)
        right = random_bitmatrix(q, r, seed + 1)
        product = khatri_rao(left, right)
        left_dense = left.to_dense()
        right_dense = right.to_dense()
        expected = np.zeros((p * q, r), dtype=np.uint8)
        for i in range(p):
            for j in range(q):
                expected[i * q + j] = left_dense[i] & right_dense[j]
        np.testing.assert_array_equal(product.to_dense(), expected)


class TestXorPopcount:
    @given(st.integers(1, 6), st.integers(1, 5), st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_rows_match_reference(self, n_rows, n_words, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2**63, size=(n_rows, n_words)).astype(np.uint64)
        b = rng.integers(0, 2**63, size=(n_rows, n_words)).astype(np.uint64)
        np.testing.assert_array_equal(
            packing.xor_popcount_rows(a, b), packing.popcount_rows(a ^ b)
        )
        assert packing.xor_popcount(a, b) == packing.popcount(a ^ b)

    def test_inputs_not_mutated(self):
        a = np.array([[np.uint64(0b1010)]])
        b = np.array([[np.uint64(0b0110)]])
        packing.xor_popcount_rows(a, b)
        assert a[0, 0] == 0b1010 and b[0, 0] == 0b0110


class TestBitColumns:
    @given(st.integers(1, 8), st.integers(1, 130), st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_bit_column_matches_get_bit(self, n_rows, n_bits, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n_rows, n_bits)) < 0.5).astype(np.uint8)
        packed = packing.pack_bits(dense)
        for bit in {0, n_bits // 2, n_bits - 1}:
            expected = np.array(
                [packing.get_bit(packed, row, bit) for row in range(n_rows)],
                dtype=np.uint8,
            )
            np.testing.assert_array_equal(
                packing.bit_column(packed, bit), expected
            )

    @given(st.integers(1, 8), st.integers(1, 130), st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_set_bit_column_matches_set_bit(self, n_rows, n_bits, seed):
        rng = np.random.default_rng(seed)
        dense = (rng.random((n_rows, n_bits)) < 0.5).astype(np.uint8)
        values = (rng.random(n_rows) < 0.5).astype(np.uint8)
        bit = int(rng.integers(0, n_bits))
        vectorized = packing.pack_bits(dense)
        packing.set_bit_column(vectorized, bit, values)
        reference = packing.pack_bits(dense)
        for row in range(n_rows):
            packing.set_bit(reference, row, bit, int(values[row]))
        np.testing.assert_array_equal(vectorized, reference)


class TestMaskHelpers:
    """Satellite: vectorized mask_from_indices / indices_from_mask."""

    @given(st.lists(st.integers(0, 300), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_mask_from_indices_matches_loop(self, indices):
        expected = 0
        for index in indices:
            expected |= 1 << index
        assert packing.mask_from_indices(indices) == expected

    @given(st.integers(0, 2**200 - 1))
    @settings(max_examples=60, deadline=None)
    def test_indices_from_mask_matches_loop(self, mask):
        expected = [p for p in range(mask.bit_length()) if (mask >> p) & 1]
        assert packing.indices_from_mask(mask) == expected

    @given(st.lists(st.integers(0, 200), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, indices):
        mask = packing.mask_from_indices(indices)
        assert packing.indices_from_mask(mask) == sorted(set(indices))

    def test_numpy_input_and_duplicates(self):
        assert packing.mask_from_indices(np.array([5, 5, 2])) == 0b100100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            packing.mask_from_indices([3, -1])
        with pytest.raises(ValueError):
            packing.indices_from_mask(-1)


class TestSliceBitsEdges:
    """Satellite: word-boundary and zero-width slices."""

    @pytest.mark.parametrize(
        "start,stop",
        [(0, 0), (64, 64), (100, 100), (192, 192), (63, 64), (64, 65),
         (127, 129), (0, 192), (64, 128), (128, 192)],
    )
    def test_word_boundaries_and_zero_width(self, start, stop):
        rng = np.random.default_rng(start * 1000 + stop)
        dense = (rng.random((3, 192)) < 0.5).astype(np.uint8)
        sliced = packing.slice_bits(packing.pack_bits(dense), start, stop)
        assert sliced.shape == (3, packing.words_for_bits(stop - start))
        np.testing.assert_array_equal(
            packing.unpack_bits(sliced, stop - start), dense[:, start:stop]
        )

    def test_zero_width_slice_has_empty_word_axis(self):
        packed = packing.pack_bits(np.ones((2, 64), dtype=np.uint8))
        sliced = packing.slice_bits(packed, 30, 30)
        assert sliced.shape == (2, 0)
        assert sliced.dtype == np.uint64
