"""Plan-layer tests: lazy lineage, stage fusion, persist caches, explain().

The fusion contract is that a chain of narrow transformations produces
bit-identical results whether it is dispatched as one composed task
(fused, the default) or one stage per transformation
(``ClusterConfig(eager=True)``) — under every backend — while the fused
run dispatches strictly fewer stages.  Property tests drive random chains
through both modes; the ``explain()`` snapshot lives under
``tests/goldens/`` like the trace golden.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.distengine import (
    ClusterConfig,
    FaultInjector,
    FusedChainTask,
    LogicalPlan,
    PhysicalStage,
    PlanNode,
    PlanOptimizer,
    SimulatedRuntime,
    TaskFailedError,
    TransferKind,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "goldens", "plan_explain.txt"
)


# ----------------------------------------------------------------------
# Module-level, type-preserving (int -> int) chain steps so every random
# chain composes and pickles to the process backend.
# ----------------------------------------------------------------------
def _inc(x):
    return x + 1


def _double(x):
    return x * 2


def _is_even(x):
    return x % 2 == 0


def _not_div3(x):
    return x % 3 != 0


def _dedup_sorted(items):
    return sorted(set(items))


def _tag_with_index(index, items):
    return [x * 31 + index for x in items]


_STEPS = {
    "map_inc": lambda rdd: rdd.map(_inc),
    "map_double": lambda rdd: rdd.map(_double),
    "filter_even": lambda rdd: rdd.filter(_is_even),
    "filter_not3": lambda rdd: rdd.filter(_not_div3),
    "parts_dedup": lambda rdd: rdd.map_partitions(_dedup_sorted),
    "parts_tag": lambda rdd: rdd.map_partitions_with_index(_tag_with_index),
}


def _apply_chain(runtime, data, n_partitions, steps, persist_at=()):
    rdd = runtime.parallelize(data, n_partitions=n_partitions, name="numbers")
    for position, step in enumerate(steps):
        rdd = _STEPS[step](rdd)
        if position in persist_at:
            rdd = rdd.persist()
    return rdd


def _run_chain(backend, eager, data, n_partitions, steps, persist_at=()):
    """(collected result, dispatched stage count) for one mode/backend."""
    runtime = SimulatedRuntime(
        ClusterConfig(n_machines=2, cores_per_machine=2, backend=backend,
                      n_workers=2, eager=eager)
    )
    try:
        rdd = _apply_chain(runtime, data, n_partitions, steps, persist_at)
        result = rdd.collect()
        return result, len(runtime.stages)
    finally:
        runtime.close()


class TestFusionEquivalence:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        data=st.lists(st.integers(min_value=-50, max_value=50),
                      min_size=1, max_size=24),
        n_partitions=st.integers(min_value=1, max_value=4),
        steps=st.lists(st.sampled_from(sorted(_STEPS)), min_size=1,
                       max_size=6),
    )
    def test_fused_matches_eager_serial(self, data, n_partitions, steps):
        fused, fused_stages = _run_chain("serial", False, data,
                                         n_partitions, steps)
        eager, eager_stages = _run_chain("serial", True, data,
                                         n_partitions, steps)
        assert fused == eager
        assert fused_stages == 1  # whole chain is one dispatch
        assert eager_stages == len(steps)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        data=st.lists(st.integers(min_value=-50, max_value=50),
                      min_size=1, max_size=24),
        steps=st.lists(st.sampled_from(sorted(_STEPS)), min_size=1,
                       max_size=5),
        persist_position=st.integers(min_value=0, max_value=4),
    )
    def test_fused_matches_eager_thread_with_persist(self, data, steps,
                                                     persist_position):
        persist_at = (persist_position,) if persist_position < len(steps) else ()
        fused, _ = _run_chain("thread", False, data, 3, steps, persist_at)
        eager, _ = _run_chain("thread", True, data, 3, steps, persist_at)
        assert fused == eager

    def test_fused_matches_eager_process(self):
        # One fixed chain through the process backend: the composed
        # FusedChainTask must pickle and execute out-of-process.
        data = list(range(40))
        steps = ["map_inc", "filter_even", "parts_dedup", "parts_tag",
                 "map_double"]
        fused, fused_stages = _run_chain("process", False, data, 4, steps)
        eager, eager_stages = _run_chain("process", True, data, 4, steps)
        serial, _ = _run_chain("serial", False, data, 4, steps)
        assert fused == eager == serial
        assert (fused_stages, eager_stages) == (1, len(steps))


class TestPersistCache:
    def _runtime(self, **overrides):
        return SimulatedRuntime(
            ClusterConfig(n_machines=2, cores_per_machine=2, **overrides)
        )

    def test_persist_materializes_once(self):
        runtime = self._runtime()
        calls = []

        def spy(items):
            calls.append(len(items))
            return items

        rdd = runtime.parallelize(list(range(9)), n_partitions=3)
        cached = rdd.map_partitions(spy, name="spied").persist()
        assert cached.collect() == list(range(9))
        assert cached.collect() == list(range(9))
        assert calls == [3, 3, 3]  # 3 partitions, exactly one pass
        assert runtime.metrics.value("partitions_cached_total") == 3.0
        assert runtime.metrics.value("cache_hits_total") == 3.0
        runtime.close()

    def test_fusion_taps_fill_persist_without_extra_stage(self):
        runtime = self._runtime()
        rdd = runtime.parallelize(list(range(12)), n_partitions=3)
        middle = rdd.map(_inc, name="scale").persist()
        final = middle.map(_double, name="shift")
        expected = [(x + 1) * 2 for x in range(12)]
        assert final.collect() == expected
        # One fused dispatch ("scale+shift") populated the persist cache.
        assert [s.name for s in runtime.stages] == ["scale+shift"]
        assert runtime.metrics.value("partitions_cached_total") == 3.0
        # Reusing the persisted node dispatches only the downstream tail.
        assert middle.map(_double).collect() == expected
        assert [s.name for s in runtime.stages][1:] == ["map"]
        assert runtime.metrics.value("cache_hits_total") >= 3.0
        runtime.close()

    def test_unpersist_and_close_evict(self):
        runtime = self._runtime()
        first = runtime.parallelize([1, 2], n_partitions=2).map(_inc).persist()
        second = runtime.parallelize([3, 4], n_partitions=2).map(_inc).persist()
        first.collect()
        second.collect()
        first.unpersist()
        assert runtime.metrics.value("partitions_evicted_total") == 2.0
        assert first.node.cached is None
        runtime.close()  # evicts every still-registered persist
        assert runtime.metrics.value("partitions_evicted_total") == 4.0
        assert second.node.cached is None

    def test_persist_source_is_noop(self):
        runtime = self._runtime()
        rdd = runtime.parallelize([1, 2, 3], n_partitions=3)
        assert rdd.persist() is rdd
        runtime.close()
        assert runtime.metrics.counters().get("partitions_evicted_total") is None


class TestStageNames:
    def test_composite_name_includes_cache_build(self):
        runtime = SimulatedRuntime()
        rdd = runtime.parallelize(list(range(8)), n_partitions=2)
        rdd.map(_inc).filter(_is_even).map(_double).persist().count()
        assert [s.name for s in runtime.stages] == ["map+filter+cache-build"]
        runtime.close()

    def test_named_segments_win_over_op_labels(self):
        runtime = SimulatedRuntime()
        rdd = runtime.parallelize(list(range(8)), n_partitions=2)
        rdd.map(_inc, name="scale").filter(_is_even, name="keep").collect()
        assert [s.name for s in runtime.stages] == ["scale+keep"]
        runtime.close()

    def test_count_and_reduce_charge_named_ledger_entries(self):
        runtime = SimulatedRuntime()
        rdd = runtime.parallelize(list(range(6)), n_partitions=2, name="nums")
        assert rdd.count() == 6
        assert rdd.reduce(lambda a, b: a + b) == 15
        assert rdd.reduce(lambda a, b: a + b, name="customSum") == 15
        by_stage = dict(runtime.ledger.by_stage)
        assert by_stage["nums.count"] == 8  # one scalar crosses the wire
        assert "nums.reduce" in by_stage
        assert "customSum" in by_stage
        assert runtime.ledger.bytes_of_kind(TransferKind.COLLECT) > 0
        runtime.close()

    def test_error_carries_composite_stage_name(self):
        runtime = SimulatedRuntime(
            ClusterConfig(n_machines=1, cores_per_machine=1),
            fault_injector=FaultInjector(failure_rate=0.95, max_retries=0,
                                         seed=0),
        )
        rdd = runtime.parallelize(list(range(8)), n_partitions=4)
        with pytest.raises(TaskFailedError) as excinfo:
            rdd.map(_inc, name="a").map(_double, name="b").collect()
        assert excinfo.value.stage == "a+b"
        runtime.close()


class TestBroadcastDedup:
    def test_repeated_payload_charged_once_when_enabled(self):
        import numpy as np

        payload = np.arange(256, dtype=np.int64)
        runtime = SimulatedRuntime(
            ClusterConfig(n_machines=2, dedup_broadcasts=True)
        )
        first = runtime.broadcast(payload, name="factors")
        again = runtime.broadcast(payload.copy(), name="factors")
        assert (again.value == first.value).all()
        assert runtime.ledger.bytes_of_kind(TransferKind.BROADCAST) == 2048
        hits = runtime.metrics.counters()["broadcast_dedup_hits_total"]
        assert sum(hits.values()) == 1
        runtime.close()

    def test_default_meters_every_broadcast(self):
        import numpy as np

        payload = np.arange(256, dtype=np.int64)
        runtime = SimulatedRuntime(ClusterConfig(n_machines=2))
        runtime.broadcast(payload, name="factors")
        runtime.broadcast(payload, name="factors")
        assert runtime.ledger.bytes_of_kind(TransferKind.BROADCAST) == 4096
        assert "broadcast_dedup_hits_total" not in runtime.metrics.counters()
        runtime.close()


class TestOptimizerUnits:
    def _chain(self, n, persist_at=()):
        counter = iter(range(100))
        node = PlanNode("source", label="src", node_id=next(counter))
        node.cached = [[1], [2]]
        for position in range(n):
            node = PlanNode("map", fn=lambda _i, items: items, parent=node,
                            node_id=next(counter))
            if position in persist_at:
                node.persisted = True
        return node

    def test_plan_fuses_whole_chain(self):
        stages = PlanOptimizer().plan(self._chain(4))
        assert [s.name for s in stages] == ["map+map+map+map"]

    def test_plan_taps_interior_persist(self):
        stages = PlanOptimizer().plan(self._chain(4, persist_at=(1,)))
        assert len(stages) == 1
        assert stages[0].tap_positions == (1,)
        assert stages[0].name == "map+cache-build+map+map"

    def test_eager_plan_one_stage_per_node(self):
        stages = PlanOptimizer(fuse=False).plan(self._chain(3))
        assert [s.name for s in stages] == ["map", "map", "map"]

    def test_cached_interior_node_is_a_barrier(self):
        node = self._chain(4, persist_at=(1,))
        interior = node.parent.parent  # position 1
        interior.cached = [[10], [20]]
        stages = PlanOptimizer().plan(node)
        assert [s.name for s in stages] == ["map+map"]

    def test_fused_chain_task_captures_taps(self):
        task = FusedChainTask(
            [lambda _i, items: [x + 1 for x in items],
             lambda _i, items: [x * 2 for x in items]],
            taps=(0,),
        )
        ((final, captured),) = task(0, [1, 2])
        assert final == [4, 6]
        assert captured == [(0, [2, 3])]

    def test_physical_stage_excludes_terminal_from_taps(self):
        nodes = [PlanNode("map", node_id=i) for i in range(2)]
        nodes[1].persisted = True
        assert PhysicalStage(nodes).tap_positions == ()


class TestExplainGolden:
    def _render(self):
        runtime = SimulatedRuntime(ClusterConfig(n_machines=2,
                                                 cores_per_machine=2))
        rdd = runtime.parallelize(list(range(8)), n_partitions=2,
                                  name="numbers")
        chain = (rdd.map(_inc, name="scale").filter(_is_even)
                 .persist().map(_double, name="shift"))
        before = chain.explain()
        chain.collect()
        after = chain.explain()
        runtime.close()
        return (
            "-- before any action --\n" + before
            + "\n\n-- after collect() --\n" + after + "\n"
        )

    def test_explain_matches_golden(self, update_goldens):
        rendered = self._render()
        if update_goldens or not os.path.exists(GOLDEN_PATH):
            with open(GOLDEN_PATH, "w") as handle:
                handle.write(rendered)
            pytest.skip("golden rewritten")
        with open(GOLDEN_PATH) as handle:
            assert rendered == handle.read()

    def test_explain_is_deterministic(self):
        assert self._render() == self._render()

    def test_logical_plan_explain_reports_materialized(self):
        runtime = SimulatedRuntime()
        rdd = runtime.parallelize([1, 2], n_partitions=2, name="src")
        text = LogicalPlan(rdd.node, runtime.plan_optimizer).explain()
        assert "fully materialized" in text
        runtime.close()
