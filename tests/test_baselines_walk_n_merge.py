"""Unit and integration tests for the Walk'n'Merge baseline."""

import numpy as np
import pytest

from repro.baselines import WalkNMergeConfig, blocks_to_factors, walk_n_merge
from repro.baselines.walk_n_merge import DenseBlock, _FiberGraph, _try_merge
from repro.tensor import SparseBoolTensor, outer_product, planted_tensor


def block_tensor(index_sets, shape):
    """A tensor that is exactly one dense block."""
    a = np.zeros(shape[0], dtype=np.uint8)
    b = np.zeros(shape[1], dtype=np.uint8)
    c = np.zeros(shape[2], dtype=np.uint8)
    a[list(index_sets[0])] = 1
    b[list(index_sets[1])] = 1
    c[list(index_sets[2])] = 1
    return outer_product(a, b, c)


class TestDenseBlock:
    def test_density_and_dims(self):
        block = DenseBlock(mode_indices=((0, 1), (2, 3, 4), (5,)), nnz_inside=3)
        assert block.n_cells == 6
        assert block.density == pytest.approx(0.5)
        assert block.dims == (2, 3, 1)


class TestFiberGraph:
    def test_neighbors_share_two_coordinates(self):
        tensor = SparseBoolTensor.from_nonzeros(
            (4, 4, 4), [(0, 1, 1), (2, 1, 1), (0, 3, 1), (0, 1, 2)]
        )
        graph = _FiberGraph(tensor.coords)
        rng = np.random.default_rng(0)
        # Node for (0, 1, 1) is index 0 after sorting.
        start = 0
        for _ in range(50):
            neighbor = graph.random_step(start, rng)
            start_coord = tensor.coords[0]
            neighbor_coord = tensor.coords[neighbor]
            shared = int((start_coord == neighbor_coord).sum())
            assert shared >= 2  # same fiber (or the node itself)

    def test_isolated_nonzero_walks_to_itself(self):
        tensor = SparseBoolTensor.from_nonzeros((3, 3, 3), [(1, 1, 1)])
        graph = _FiberGraph(tensor.coords)
        rng = np.random.default_rng(1)
        assert graph.random_step(0, rng) == 0


class TestTryMerge:
    def test_merge_of_adjacent_slabs(self):
        tensor = block_tensor([range(4), range(4), range(8)], (8, 8, 8))
        left = DenseBlock(
            mode_indices=(tuple(range(4)), tuple(range(4)), tuple(range(4))),
            nnz_inside=64,
        )
        right = DenseBlock(
            mode_indices=(tuple(range(4)), tuple(range(4)), tuple(range(4, 8))),
            nnz_inside=64,
        )
        merged = _try_merge(tensor.coords, left, right, threshold=0.99)
        assert merged is not None
        assert merged.nnz_inside == 128
        assert merged.dims == (4, 4, 8)

    def test_merge_rejected_when_union_sparse(self):
        tensor = SparseBoolTensor.from_nonzeros(
            (10, 10, 10),
            [(i, j, k) for i in range(4) for j in range(4) for k in range(2)]
            + [(i, j, k) for i in range(6, 10) for j in range(6, 10) for k in range(8, 10)],
        )
        left = DenseBlock(
            mode_indices=(tuple(range(4)), tuple(range(4)), (0, 1)), nnz_inside=32
        )
        right = DenseBlock(
            mode_indices=(tuple(range(6, 10)), tuple(range(6, 10)), (8, 9)),
            nnz_inside=32,
        )
        assert _try_merge(tensor.coords, left, right, threshold=0.9) is None


class TestWalkNMerge:
    def test_finds_single_planted_block(self):
        tensor = block_tensor([range(2, 8), range(1, 7), range(0, 6)], (12, 12, 12))
        result = walk_n_merge(
            tensor, rank=3, config=WalkNMergeConfig(density_threshold=0.99, seed=0)
        )
        assert result.error == 0
        assert result.details["n_blocks"] >= 1

    def test_recovers_disjoint_blocks(self):
        first = block_tensor([range(0, 5), range(0, 5), range(0, 5)], (16, 16, 16))
        second = block_tensor([range(8, 14), range(8, 14), range(8, 14)], (16, 16, 16))
        tensor = first.boolean_or(second)
        result = walk_n_merge(
            tensor, rank=4, config=WalkNMergeConfig(density_threshold=0.99, seed=1)
        )
        assert result.error == 0

    def test_reasonable_on_planted_tensor(self):
        rng = np.random.default_rng(2)
        tensor, _ = planted_tensor((20, 20, 20), rank=3, factor_density=0.3, rng=rng)
        result = walk_n_merge(
            tensor, rank=3, config=WalkNMergeConfig(density_threshold=0.9, seed=3)
        )
        assert result.error <= tensor.nnz  # no worse than the empty model

    def test_rank_limits_exported_components(self):
        first = block_tensor([range(0, 5), range(0, 5), range(0, 5)], (16, 16, 16))
        second = block_tensor([range(8, 14), range(8, 14), range(8, 14)], (16, 16, 16))
        tensor = first.boolean_or(second)
        result = walk_n_merge(
            tensor, rank=1, config=WalkNMergeConfig(density_threshold=0.99, seed=4)
        )
        # Only the biggest block is exported; the other one is left uncovered.
        assert result.error == min(first.nnz, second.nnz)

    def test_empty_tensor(self):
        result = walk_n_merge(SparseBoolTensor.empty((5, 5, 5)), rank=2)
        assert result.error == 0
        assert result.details["n_blocks"] == 0

    def test_min_block_size_respected(self):
        # A 2x2x2 block is below the 4x4x4 minimum and must be ignored.
        tensor = block_tensor([range(2), range(2), range(2)], (8, 8, 8))
        result = walk_n_merge(
            tensor, rank=2,
            config=WalkNMergeConfig(density_threshold=0.99, min_block_dim=4, seed=5),
        )
        assert result.details["n_blocks"] == 0
        assert result.error == tensor.nnz

    def test_small_min_block_allows_small_blocks(self):
        tensor = block_tensor([range(2), range(2), range(2)], (8, 8, 8))
        result = walk_n_merge(
            tensor, rank=2,
            config=WalkNMergeConfig(density_threshold=0.99, min_block_dim=2, seed=6),
        )
        assert result.error == 0

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(7)
        tensor, _ = planted_tensor((14, 14, 14), rank=2, factor_density=0.3, rng=rng)
        config = WalkNMergeConfig(density_threshold=0.9, seed=8)
        first = walk_n_merge(tensor, rank=2, config=config)
        second = walk_n_merge(tensor, rank=2, config=config)
        assert first.error == second.error
        assert first.factors == second.factors

    def test_non_three_way_rejected(self):
        with pytest.raises(ValueError):
            walk_n_merge(SparseBoolTensor.empty((2, 2)), rank=1)


class TestBlocksToFactors:
    def test_largest_blocks_chosen(self):
        big = DenseBlock(mode_indices=((0, 1, 2), (0, 1, 2), (0, 1, 2)), nnz_inside=27)
        small = DenseBlock(mode_indices=((5,), (5,), (5,)), nnz_inside=1)
        factors = blocks_to_factors([small, big], (6, 6, 6), rank=1)
        assert factors[0].column(0).sum() == 3  # big block's indices

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            blocks_to_factors([], (2, 2, 2), rank=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WalkNMergeConfig(density_threshold=0.0)
        with pytest.raises(ValueError):
            WalkNMergeConfig(min_block_dim=0)
        with pytest.raises(ValueError):
            WalkNMergeConfig(walk_length=0)
        with pytest.raises(ValueError):
            WalkNMergeConfig(visit_threshold=0)
        with pytest.raises(ValueError):
            WalkNMergeConfig(max_seeds=0)
