"""Unit tests for the bit-packed unfolding storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import PackedUnfolding, SparseBoolTensor, unfold


def random_tensor(shape, seed, density=0.3):
    rng = np.random.default_rng(seed)
    dense = (rng.random(shape) < density).astype(np.uint8)
    return SparseBoolTensor.from_dense(dense), dense


class TestPackedUnfolding:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("shape", [(3, 4, 5), (8, 8, 8), (2, 70, 3), (70, 2, 3)])
    def test_matches_sparse_unfolding(self, mode, shape):
        tensor, _ = random_tensor(shape, seed=hash((mode, shape)) % 1000)
        unfolding = unfold(tensor, mode)
        packed = PackedUnfolding(unfolding)
        np.testing.assert_array_equal(packed.to_dense(), unfolding.to_dense())

    def test_nnz_preserved(self):
        tensor, dense = random_tensor((6, 7, 8), seed=1)
        packed = PackedUnfolding(unfold(tensor, 0))
        assert packed.nnz() == int(dense.sum())

    def test_row_block_extracts_inner_fiber(self):
        # Block k of row i in mode-0 is the tube x_{i,:,k}.
        tensor, dense = random_tensor((4, 5, 6), seed=2)
        packed = PackedUnfolding(unfold(tensor, 0))
        from repro.bitops import packing

        for i in range(4):
            for k in range(6):
                block = packing.unpack_bits(packed.row_block(i, k), 5)
                np.testing.assert_array_equal(block, dense[i, :, k])

    def test_block_slice_view(self):
        tensor, _ = random_tensor((3, 4, 5), seed=3)
        packed = PackedUnfolding(unfold(tensor, 0))
        view = packed.block_slice(slice(1, 3))
        assert view.shape == (3, 2, packed.n_words)
        np.testing.assert_array_equal(view, packed.words[:, 1:3])

    def test_empty_tensor(self):
        packed = PackedUnfolding(unfold(SparseBoolTensor.empty((2, 3, 4)), 1))
        assert packed.nnz() == 0
        assert packed.words.shape == (3, 4, 1)

    def test_duplicate_bit_or_semantics(self):
        # Setting the same bit twice must still yield a single 1.
        tensor = SparseBoolTensor.from_nonzeros((2, 2, 2), [(0, 1, 1), (0, 1, 1)])
        packed = PackedUnfolding(unfold(tensor, 0))
        assert packed.nnz() == 1

    def test_nbytes_positive(self):
        tensor, _ = random_tensor((3, 3, 3), seed=4)
        assert PackedUnfolding(unfold(tensor, 0)).nbytes > 0

    @given(
        st.tuples(st.integers(1, 6), st.integers(1, 80), st.integers(1, 6)),
        st.integers(0, 2),
        st.integers(0, 500),
    )
    @settings(max_examples=30, deadline=None)
    def test_pack_property(self, shape, mode, seed):
        tensor, _ = random_tensor(shape, seed)
        unfolding = unfold(tensor, mode)
        packed = PackedUnfolding(unfolding)
        np.testing.assert_array_equal(packed.to_dense(), unfolding.to_dense())
