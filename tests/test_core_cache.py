"""Unit tests for the row-summation cache (Lemma 2 and Sec. III-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import BitMatrix, packing
from repro.core import RowSummationCache, split_groups


class TestSplitGroups:
    def test_single_group_when_rank_small(self):
        assert split_groups(10, 15) == [(0, 10)]

    def test_paper_example_rank18_v10(self):
        # Lemma 2 example: rank 18, V = 10 -> two tables of 2^9.
        groups = split_groups(18, 10)
        assert groups == [(0, 9), (9, 9)]

    def test_uneven_split(self):
        groups = split_groups(20, 8)
        assert len(groups) == 3
        assert sum(size for _, size in groups) == 20
        sizes = [size for _, size in groups]
        assert max(sizes) - min(sizes) <= 1

    def test_groups_are_contiguous(self):
        groups = split_groups(23, 7)
        cursor = 0
        for start, size in groups:
            assert start == cursor
            cursor += size
        assert cursor == 23

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            split_groups(0, 5)
        with pytest.raises(ValueError):
            split_groups(5, 0)

    @given(st.integers(1, 64), st.integers(1, 62))
    @settings(max_examples=60, deadline=None)
    def test_lemma2_table_count_property(self, rank, group_size):
        groups = split_groups(rank, group_size)
        assert len(groups) == -(-rank // group_size)  # ceil(R / V)
        assert all(size <= group_size for _, size in groups)
        assert sum(size for _, size in groups) == rank


def reference_row_summation(inner_dense, mask):
    """OR of the columns of `inner_dense` selected by `mask`."""
    width = inner_dense.shape[0]
    selected = [r for r in range(inner_dense.shape[1]) if mask & (1 << r)]
    if not selected:
        return np.zeros(width, dtype=np.uint8)
    return (inner_dense[:, selected].sum(axis=1) > 0).astype(np.uint8)


class TestRowSummationCache:
    def _inner(self, width, rank, seed, density=0.4):
        rng = np.random.default_rng(seed)
        return BitMatrix.random(width, rank, density, rng)

    def test_all_masks_single_group(self):
        inner = self._inner(width=20, rank=4, seed=1)
        cache = RowSummationCache(inner, group_size=15)
        assert cache.n_tables == 1
        tables = cache.tables_for(0, 20)
        dense = inner.to_dense()
        for mask in range(16):
            anded = packing.pack_bits(
                np.array([[int(bool(mask & (1 << r))) for r in range(4)]], dtype=np.uint8)
            )
            keys = cache.group_keys(anded)
            fetched = cache.fetch(tables, keys)[0]
            np.testing.assert_array_equal(
                packing.unpack_bits(fetched, 20), reference_row_summation(dense, mask)
            )

    def test_split_groups_give_same_result_as_single(self):
        inner = self._inner(width=30, rank=9, seed=2)
        single = RowSummationCache(inner, group_size=15)
        split = RowSummationCache(inner, group_size=4)
        assert split.n_tables == 3
        rng = np.random.default_rng(3)
        masks = rng.integers(0, 1 << 9, size=50)
        dense_masks = np.array(
            [[int(bool(m & (1 << r))) for r in range(9)] for m in masks], dtype=np.uint8
        )
        anded = packing.pack_bits(dense_masks)
        single_result = single.fetch(single.tables_for(0, 30), single.group_keys(anded))
        split_result = split.fetch(split.tables_for(0, 30), split.group_keys(anded))
        np.testing.assert_array_equal(single_result, split_result)

    def test_sliced_tables_match_full(self):
        inner = self._inner(width=50, rank=5, seed=4)
        cache = RowSummationCache(inner, group_size=15)
        dense = inner.to_dense()
        sliced = cache.tables_for(10, 37)
        for mask in (0, 1, 7, 31):
            anded = packing.pack_bits(
                np.array([[int(bool(mask & (1 << r))) for r in range(5)]], dtype=np.uint8)
            )
            fetched = cache.fetch(sliced, cache.group_keys(anded))[0]
            np.testing.assert_array_equal(
                packing.unpack_bits(fetched, 27),
                reference_row_summation(dense, mask)[10:37],
            )

    def test_sliced_tables_memoized(self):
        inner = self._inner(width=16, rank=3, seed=5)
        cache = RowSummationCache(inner, group_size=15)
        first = cache.tables_for(2, 9)
        second = cache.tables_for(2, 9)
        assert first[0] is second[0]

    def test_full_width_returns_master_tables(self):
        inner = self._inner(width=16, rank=3, seed=6)
        cache = RowSummationCache(inner, group_size=15)
        assert cache.tables_for(0, 16)[0] is cache.full_tables[0]

    def test_invalid_range(self):
        inner = self._inner(width=16, rank=3, seed=7)
        cache = RowSummationCache(inner, group_size=15)
        with pytest.raises(ValueError):
            cache.tables_for(5, 5)
        with pytest.raises(ValueError):
            cache.tables_for(0, 17)

    def test_fetch_table_key_mismatch(self):
        inner = self._inner(width=16, rank=3, seed=8)
        cache = RowSummationCache(inner, group_size=15)
        with pytest.raises(ValueError):
            cache.fetch(cache.full_tables, [])

    def test_n_entries_lemma2_bound(self):
        inner = self._inner(width=8, rank=18, seed=9)
        cache = RowSummationCache(inner, group_size=10)
        # Two tables of 2^9 entries each.
        assert cache.n_entries == 2 * 2**9

    def test_vectorized_keys_shape(self):
        inner = self._inner(width=12, rank=6, seed=10)
        cache = RowSummationCache(inner, group_size=3)
        rng = np.random.default_rng(11)
        dense_masks = (rng.random((7, 6)) < 0.5).astype(np.uint8)
        anded = packing.pack_bits(dense_masks)
        keys = cache.group_keys(anded)
        assert len(keys) == 2
        assert all(key.shape == (7,) for key in keys)

    @given(st.integers(1, 12), st.integers(1, 12), st.integers(1, 62), st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_cache_matches_reference_property(self, width, rank, group_size, seed):
        rng = np.random.default_rng(seed)
        inner = BitMatrix.random(width, rank, 0.5, rng)
        cache = RowSummationCache(inner, group_size=group_size)
        mask = int(rng.integers(0, 1 << rank))
        dense_mask = np.array(
            [[int(bool(mask & (1 << r))) for r in range(rank)]], dtype=np.uint8
        )
        anded = packing.pack_bits(dense_mask)
        fetched = cache.fetch(cache.tables_for(0, width), cache.group_keys(anded))[0]
        np.testing.assert_array_equal(
            packing.unpack_bits(fetched, width),
            reference_row_summation(inner.to_dense(), mask),
        )
