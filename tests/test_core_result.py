"""Unit tests for DecompositionResult."""

import numpy as np
import pytest

from repro import dbtf, planted_tensor
from repro.core import DbtfConfig, DecompositionResult
from repro.tensor import random_factors


class TestDecompositionResult:
    @pytest.fixture(scope="class")
    def result(self):
        rng = np.random.default_rng(0)
        tensor, _ = planted_tensor((10, 10, 10), rank=2, factor_density=0.3, rng=rng)
        return dbtf(tensor, rank=2, seed=0, n_partitions=2), tensor

    def test_repr_mentions_key_fields(self, result):
        decomposition, _ = result
        text = repr(decomposition)
        assert "rank=2" in text
        assert "error=" in text
        assert "converged=" in text

    def test_n_iterations_matches_trace(self, result):
        decomposition, _ = result
        assert decomposition.n_iterations == len(
            decomposition.errors_per_iteration
        )

    def test_reconstruct_shape(self, result):
        decomposition, tensor = result
        assert decomposition.reconstruct().shape == tensor.shape

    def test_relative_error_zero_nnz(self):
        rng = np.random.default_rng(1)
        factors = random_factors((2, 2, 2), 1, 0.0, rng)
        synthetic = DecompositionResult(
            factors=factors,
            error=5,
            input_nnz=0,
            errors_per_iteration=(5,),
            converged=True,
            report=None,
            config=DbtfConfig(rank=1),
        )
        assert synthetic.relative_error == 5.0

    def test_report_present_after_dbtf(self, result):
        decomposition, _ = result
        assert decomposition.report is not None
        assert decomposition.report.n_stages > 0
