"""Tests for the broadcast-handle comms plane.

The contract: ``runtime.broadcast`` returns a first-class, content-addressed
:class:`BroadcastHandle`; pickling a handle drops the value (workers resolve
it from the backend-local store or a spill file); task payloads that embed a
handle cost ~32 wire bytes instead of the value's full size; and the
delta-only factor-update path produces bit-identical factors and error
traces while shipping a fraction of the legacy closure path's bytes.
"""

import pickle

import numpy as np
import pytest

from repro.core import DbtfConfig, dbtf
from repro.distengine import (
    BroadcastHandle,
    ClusterConfig,
    SimulatedRuntime,
)
from repro.distengine.broadcast import _STORE, clear_store
from repro.distengine.shuffle import HANDLE_WIRE_BYTES, TransferKind, estimate_bytes
from repro.tensor import SparseBoolTensor, planted_tensor


@pytest.fixture
def clean_store():
    clear_store()
    yield
    clear_store()


class TestBroadcastHandle:
    def test_broadcast_returns_handle(self):
        with SimulatedRuntime(ClusterConfig()) as runtime:
            handle = runtime.broadcast(np.arange(10), name="xs")
            assert isinstance(handle, BroadcastHandle)
            assert handle.name == "xs"
            assert handle.n_bytes == estimate_bytes(np.arange(10))
            assert len(handle.content_id) == 16
            np.testing.assert_array_equal(handle.value, np.arange(10))

    def test_pickle_drops_value_and_resolves_from_store(self, clean_store):
        value = np.arange(32)
        handle = BroadcastHandle(value, "aa" * 8, "xs", value.nbytes)
        wire = pickle.dumps(handle)
        # The value never rides inside a pickled handle.
        assert len(wire) < 200
        revived = pickle.loads(wire)
        _STORE[handle.content_id] = value
        np.testing.assert_array_equal(revived.value, value)

    def test_resolution_from_spill_file(self, clean_store, tmp_path):
        value = list(range(100))
        spill = tmp_path / "cafe.pkl"
        spill.write_bytes(pickle.dumps(value))
        handle = pickle.loads(
            pickle.dumps(
                BroadcastHandle(value, "cafe" * 4, "xs", 800, str(spill))
            )
        )
        assert handle.value == value
        # Loaded once into the store; later handles hit it without the file.
        assert _STORE[handle.content_id] == value

    def test_unresolvable_handle_raises(self, clean_store):
        handle = pickle.loads(
            pickle.dumps(BroadcastHandle([1], "beef" * 4, "xs", 8))
        )
        with pytest.raises(RuntimeError, match="no value"):
            handle.value

    def test_handle_costs_constant_wire_bytes(self):
        big = np.zeros(1 << 16, dtype=np.uint64)
        handle = BroadcastHandle(big, "ab" * 8, "big", big.nbytes)
        assert estimate_bytes(handle) == HANDLE_WIRE_BYTES
        # ... and the same inside a task-payload container.
        assert estimate_bytes([handle, handle]) == 2 * HANDLE_WIRE_BYTES + 8

    def test_equal_values_share_content_id(self):
        with SimulatedRuntime(ClusterConfig(dedup_broadcasts=False)) as runtime:
            first = runtime.broadcast(np.arange(8), name="a")
            second = runtime.broadcast(np.arange(8), name="b")
            assert first.content_id == second.content_id


def _dbtf_outcome(tensor, handles, backend="serial", **overrides):
    config = DbtfConfig(rank=8, max_iterations=2, seed=7, n_partitions=4,
                        **overrides)
    cluster = ClusterConfig(
        n_machines=2, cores_per_machine=2, backend=backend, n_workers=2,
        handle_broadcasts=handles,
    )
    runtime = SimulatedRuntime(cluster)
    try:
        result = dbtf(tensor, config=config, runtime=runtime)
        by_stage = dict(runtime.ledger.by_stage)
        task_bytes = runtime.ledger.bytes_of_kind(TransferKind.TASK)
    finally:
        runtime.close()
    return result, by_stage, task_bytes


def _per_column_bytes(by_stage):
    """Driver->worker bytes attributable to the per-column sweep."""
    column_task = sum(
        value
        for name, value in by_stage.items()
        if "columnErrors" in name and "collect" not in name
    )
    return column_task + by_stage.get("columnUpdate", 0)


class TestHandlePathEquivalence:
    @pytest.fixture(scope="class")
    def tensor(self):
        return planted_tensor(
            (40, 32, 24), rank=4, factor_density=0.4,
            rng=np.random.default_rng(11), additive_noise=0.02,
        )[0]

    def test_bit_identical_to_legacy_closures(self, tensor):
        on, _, _ = _dbtf_outcome(tensor, handles=True)
        off, _, _ = _dbtf_outcome(tensor, handles=False)
        assert on.error == off.error
        assert on.errors_per_iteration == off.errors_per_iteration
        for handle_factor, legacy_factor in zip(on.factors, off.factors):
            assert np.array_equal(handle_factor.words, legacy_factor.words)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_bit_identical_across_backends(self, tensor, backend):
        serial, serial_stages, _ = _dbtf_outcome(tensor, handles=True)
        other, other_stages, _ = _dbtf_outcome(
            tensor, handles=True, backend=backend
        )
        assert serial.error == other.error
        assert serial.errors_per_iteration == other.errors_per_iteration
        for serial_factor, other_factor in zip(serial.factors, other.factors):
            assert np.array_equal(serial_factor.words, other_factor.words)
        # Ledger byte totals are part of the backend-invariance contract.
        assert serial_stages == other_stages

    def test_handles_cut_task_bytes(self, tensor):
        _, _, task_on = _dbtf_outcome(tensor, handles=True)
        _, _, task_off = _dbtf_outcome(tensor, handles=False)
        assert task_on < task_off


class TestPerColumnByteDrop:
    def test_at_least_5x_drop_at_rank8_dim128(self):
        """The headline regression: rank 8, dim 128, >=5x per-column drop."""
        rng = np.random.default_rng(0)
        dense = (rng.random((128, 128, 128)) < 0.01).astype(np.uint8)
        tensor = SparseBoolTensor.from_dense(dense)
        config = DbtfConfig(rank=8, max_iterations=1, seed=3, n_partitions=4)
        per_column = {}
        for handles in (True, False):
            cluster = ClusterConfig(handle_broadcasts=handles)
            runtime = SimulatedRuntime(cluster)
            try:
                result = dbtf(tensor, config=config, runtime=runtime)
                per_column[handles] = _per_column_bytes(
                    dict(runtime.ledger.by_stage)
                )
                error = result.error
            finally:
                runtime.close()
        ratio = per_column[False] / per_column[True]
        assert ratio >= 5.0, (
            f"per-column broadcast bytes dropped only {ratio:.2f}x "
            f"({per_column[False]} -> {per_column[True]})"
        )
