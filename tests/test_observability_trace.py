"""Unit tests for the span tracer and the worker-side task context."""

import pickle
import threading

import pytest

from repro.observability import (
    SpanKind,
    SpanRecord,
    TaskTraceContext,
    Tracer,
    kernel_span,
    record_metric,
)
from repro.observability.trace import (
    activate_task_context,
    current_task_context,
    deactivate_task_context,
)


class TestTracer:
    def test_span_records_on_exit(self):
        tracer = Tracer()
        with tracer.span("stage-a", SpanKind.STAGE, n_tasks=3):
            pass
        assert len(tracer) == 1
        span = tracer.spans[0]
        assert span.name == "stage-a"
        assert span.kind == SpanKind.STAGE
        assert span.attrs == {"n_tasks": 3}
        assert span.parent_id is None
        assert span.duration >= 0.0

    def test_nested_spans_link_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner, outer_record = tracer.spans
        assert inner.name == "inner"
        assert inner.parent_id == outer.span_id
        assert outer_record.parent_id is None

    def test_set_attaches_attrs_while_open(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set(found=7)
        assert tracer.spans[0].attrs == {"found": 7}

    def test_event_is_zero_duration(self):
        tracer = Tracer()
        tracer.event("shuffle-x", SpanKind.TRANSFER, transfer="shuffle", bytes=10)
        span = tracer.spans[0]
        assert span.duration == 0.0
        assert span.kind == SpanKind.TRANSFER
        assert span.attrs == {"transfer": "shuffle", "bytes": 10}

    def test_add_span_parents_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            child_id = tracer.add_span("child", SpanKind.STAGE, duration=1.5)
        child = next(s for s in tracer.spans if s.span_id == child_id)
        assert child.parent_id == outer.span_id
        assert child.duration == 1.5

    def test_ids_are_sequential_from_zero(self):
        tracer = Tracer()
        ids = [tracer.add_span(f"s{i}", SpanKind.STAGE) for i in range(4)]
        assert ids == [0, 1, 2, 3]

    def test_reset_restarts_ids(self):
        tracer = Tracer()
        tracer.add_span("a", SpanKind.STAGE)
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.add_span("b", SpanKind.STAGE) == 0


class TestGraft:
    def _task_trace(self):
        return {
            "name": "stage-a",
            "start": 0.0,
            "duration": 0.5,
            "attrs": {"partition": 2, "retries": 0},
            "kernels": [
                {"id": 2, "parent": 1, "name": "inner-kernel",
                 "kind": SpanKind.KERNEL, "start": 0.0, "duration": 0.1,
                 "attrs": {}},
                {"id": 1, "parent": 0, "name": "outer-kernel",
                 "kind": SpanKind.KERNEL, "start": 0.0, "duration": 0.2,
                 "attrs": {"rows": 8}},
            ],
        }

    def test_graft_builds_task_subtree(self):
        tracer = Tracer()
        stage_id = tracer.add_span("stage-a", SpanKind.STAGE)
        task_id = tracer.graft(stage_id, self._task_trace())
        by_name = {s.name: s for s in tracer.spans if s.kind == SpanKind.KERNEL}
        task = next(s for s in tracer.spans if s.span_id == task_id)
        assert task.kind == SpanKind.TASK
        assert task.parent_id == stage_id
        assert task.attrs == {"partition": 2, "retries": 0}
        # Kernel records are re-parented via their buffer-relative ids,
        # in id order regardless of the buffer's (completion) order.
        outer = by_name["outer-kernel"]
        inner = by_name["inner-kernel"]
        assert outer.parent_id == task_id
        assert inner.parent_id == outer.span_id
        assert outer.span_id < inner.span_id

    def test_graft_ids_deterministic(self):
        ids = []
        for _ in range(2):
            tracer = Tracer()
            stage_id = tracer.add_span("stage-a", SpanKind.STAGE)
            tracer.graft(stage_id, self._task_trace())
            ids.append([s.span_id for s in sorted(tracer.spans,
                                                  key=lambda s: s.name)])
        assert ids[0] == ids[1]


class TestTaskContext:
    def teardown_method(self):
        deactivate_task_context()

    def test_no_context_returns_shared_null_span(self):
        assert current_task_context() is None
        span_a = kernel_span("k", rows=1)
        span_b = kernel_span("k2")
        assert span_a is span_b  # shared no-op instance
        with span_a as opened:
            opened.set(ignored=True)  # must not raise

    def test_kernel_span_records_into_context(self):
        context = TaskTraceContext()
        activate_task_context(context)
        with kernel_span("matmul", m=4, n=8) as span:
            span.set(k=2)
        assert len(context.kernels) == 1
        record = context.kernels[0]
        assert record["name"] == "matmul"
        assert record["parent"] == 0  # the task itself
        assert record["attrs"] == {"m": 4, "n": 8, "k": 2}

    def test_nested_kernel_spans_use_relative_parents(self):
        context = TaskTraceContext()
        activate_task_context(context)
        with kernel_span("outer"):
            with kernel_span("inner"):
                pass
        inner, outer = context.kernels  # completion order: inner closes first
        assert outer["name"] == "outer" and outer["parent"] == 0
        assert inner["parent"] == outer["id"]

    def test_record_metric_accumulates(self):
        context = TaskTraceContext()
        activate_task_context(context)
        record_metric("ops_total", op="or")
        record_metric("ops_total", op="or")
        record_metric("ops_total", 3, op="xor")
        deltas = dict()
        for name, labels, kind, value in context.metric_deltas():
            deltas[(name, labels, kind)] = value
        assert deltas[("ops_total", (("op", "or"),), "counter")] == 2.0
        assert deltas[("ops_total", (("op", "xor"),), "counter")] == 3.0

    def test_record_metric_noop_without_context(self):
        record_metric("ops_total", op="or")  # must not raise

    def test_context_is_thread_local(self):
        activate_task_context(TaskTraceContext())
        seen = []

        def probe():
            seen.append(current_task_context())

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert seen == [None]
        assert current_task_context() is not None

    def test_task_trace_payload_is_picklable(self):
        context = TaskTraceContext()
        activate_task_context(context)
        with kernel_span("k", rows=2):
            record_metric("ops_total")
        payload = {"kernels": context.kernels,
                   "deltas": context.metric_deltas()}
        assert pickle.loads(pickle.dumps(payload)) == payload


class TestSpanRecord:
    def test_to_dict_round_trip(self):
        span = SpanRecord(3, 1, "s", SpanKind.KERNEL, 1.0, 0.5, {"rows": 2})
        assert span.to_dict() == {
            "span_id": 3, "parent_id": 1, "name": "s",
            "kind": SpanKind.KERNEL, "start": 1.0, "duration": 0.5,
            "attrs": {"rows": 2},
        }

    def test_kinds(self):
        assert SpanKind.ALL == (
            "stage", "task", "kernel", "transfer", "checkpoint",
            "speculation", "storage", "shuffle",
        )
