"""Tests for the trace/metrics exporters."""

import json

from repro.observability import (
    MetricsRegistry,
    SpanKind,
    Tracer,
    read_jsonl,
    render_report,
    structural_tree,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.event("shuffleData", SpanKind.TRANSFER, transfer="shuffle", bytes=64)
    stage_id = tracer.add_span(
        "mapStage", SpanKind.STAGE, start=1.0, duration=0.5, n_tasks=2,
        task_failures=0,
    )
    for partition in range(2):
        tracer.graft(stage_id, {
            "name": "mapStage",
            "start": 0.0,
            "duration": 0.1,
            "attrs": {"partition": partition, "retries": 0},
            "kernels": [
                {"id": 1, "parent": 0, "name": "matmul",
                 "kind": SpanKind.KERNEL, "start": 0.0, "duration": 0.05,
                 "attrs": {"m": 4}},
            ],
        })
    return tracer


class TestStructuralTree:
    def test_tree_shape(self):
        roots = structural_tree(_sample_tracer())
        assert [r["name"] for r in roots] == ["shuffleData", "mapStage"]
        stage = roots[1]
        assert [c["attrs"]["partition"] for c in stage["children"]] == [0, 1]
        assert stage["children"][0]["children"][0]["name"] == "matmul"

    def test_no_timing_fields(self):
        def walk(node):
            assert set(node) == {"name", "kind", "attrs", "children"}
            for child in node["children"]:
                walk(child)

        for root in structural_tree(_sample_tracer()):
            walk(root)

    def test_attrs_sorted_for_stable_json(self):
        tracer = Tracer()
        tracer.add_span("s", SpanKind.STAGE, z=1, a=2)
        tree = structural_tree(tracer)
        assert list(tree[0]["attrs"]) == ["a", "z"]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tracer = _sample_tracer()
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(tracer, path)
        assert read_jsonl(path) == sorted(
            tracer.spans, key=lambda span: span.span_id
        )

    def test_one_object_per_line(self):
        lines = to_jsonl(_sample_tracer()).splitlines()
        assert len(lines) == 6  # 1 transfer + 1 stage + 2 * (task + kernel)
        ids = [json.loads(line)["span_id"] for line in lines]
        assert ids == sorted(ids)


class TestChromeTrace:
    def test_event_shapes(self):
        payload = to_chrome_trace(_sample_tracer())
        events = payload["traceEvents"]
        assert len(events) == 6
        by_phase = {}
        for event in events:
            by_phase.setdefault(event["ph"], []).append(event)
        assert len(by_phase["i"]) == 1  # the transfer
        assert len(by_phase["X"]) == 5
        stage = next(e for e in events if e["cat"] == SpanKind.STAGE)
        assert stage["dur"] == 0.5 * 1e6  # microseconds
        # Kind-to-track mapping keeps the levels on separate rows.
        tracks = {e["cat"]: e["tid"] for e in events}
        assert tracks == {"transfer": 3, "stage": 0, "task": 1, "kernel": 2}

    def test_timestamps_relative_to_earliest(self):
        payload = to_chrome_trace(_sample_tracer())
        assert min(e["ts"] for e in payload["traceEvents"]) == 0.0

    def test_write(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(_sample_tracer(), path)
        with open(path) as handle:
            assert "traceEvents" in json.load(handle)


class TestRenderReport:
    def test_stage_and_transfer_tables(self):
        report = render_report(_sample_tracer())
        assert "mapStage" in report
        assert "shuffle" in report
        # One stage run, two tasks, two kernel spans.
        row = next(line for line in report.splitlines()
                   if line.startswith("mapStage"))
        assert row.split()[1:4] == ["1", "2", "2"]

    def test_metrics_section(self):
        registry = MetricsRegistry()
        registry.counter("stages_total").inc(3)
        report = render_report(None, registry)
        assert "metrics" in report
        assert "stages_total 3" in report

    def test_empty_arguments(self):
        assert render_report() == ""
