"""Unit and integration tests for N-way Boolean CP."""

import numpy as np
import pytest

from repro.bitops import BitMatrix
from repro.nway import NwayCpConfig, cp_nway, nway_reconstruct
from repro.tensor import SparseBoolTensor


def planted_nway(shape, rank, density, seed):
    rng = np.random.default_rng(seed)
    factors = tuple(
        BitMatrix.from_dense((rng.random((dim, rank)) < density).astype(np.uint8))
        for dim in shape
    )
    return nway_reconstruct(factors), factors


class TestNwayReconstruct:
    def test_matches_three_way_reference(self):
        from repro.tensor import random_factors, tensor_from_factors

        rng = np.random.default_rng(0)
        factors = random_factors((4, 5, 6), rank=3, density=0.4, rng=rng)
        assert nway_reconstruct(factors) == tensor_from_factors(factors)

    def test_two_way_is_boolean_matrix_product(self):
        from repro.bitops import boolean_matmul

        rng = np.random.default_rng(1)
        left = BitMatrix.random(5, 3, 0.4, rng)
        right = BitMatrix.random(6, 3, 0.4, rng)
        product = boolean_matmul(left, right.transpose())
        reconstructed = nway_reconstruct((left, right))
        np.testing.assert_array_equal(reconstructed.to_dense(), product.to_dense())

    def test_four_way_single_component(self):
        ones = BitMatrix.from_dense(np.ones((2, 1), dtype=np.uint8))
        tensor = nway_reconstruct((ones, ones, ones, ones))
        assert tensor.shape == (2, 2, 2, 2)
        assert tensor.nnz == 16

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            nway_reconstruct((BitMatrix.zeros(2, 1), BitMatrix.zeros(2, 2)))

    def test_empty_factors_rejected(self):
        with pytest.raises(ValueError):
            nway_reconstruct(())


class TestCpNway:
    def test_three_way_recovery(self):
        tensor, _ = planted_nway((12, 12, 12), rank=3, density=0.35, seed=0)
        result = cp_nway(tensor, config=NwayCpConfig(rank=3, n_initial_sets=4))
        assert result.relative_error < 0.3

    def test_four_way_recovery(self):
        tensor, _ = planted_nway((8, 8, 8, 8), rank=2, density=0.35, seed=1)
        result = cp_nway(tensor, config=NwayCpConfig(rank=2, n_initial_sets=4))
        assert result.relative_error < 0.3

    def test_two_way_matrix_factorization(self):
        tensor, _ = planted_nway((16, 16), rank=2, density=0.4, seed=2)
        result = cp_nway(tensor, config=NwayCpConfig(rank=2, n_initial_sets=4))
        assert result.relative_error < 0.3

    def test_error_matches_reconstruction(self):
        tensor, _ = planted_nway((8, 7, 6), rank=2, density=0.4, seed=3)
        result = cp_nway(tensor, rank=2)
        assert result.error == tensor.hamming_distance(result.reconstruct())

    def test_errors_monotone(self):
        rng = np.random.default_rng(4)
        dense = (rng.random((8, 8, 8)) < 0.2).astype(np.uint8)
        tensor = SparseBoolTensor.from_dense(dense)
        result = cp_nway(tensor, rank=3)
        errors = result.errors_per_iteration
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_agrees_with_dbtf_error_scale(self):
        # Not identical algorithms (different partition-free code path) but
        # both are greedy CP; on the same planted tensor both should land
        # near zero.
        from repro import dbtf

        tensor, _ = planted_nway((14, 14, 14), rank=2, density=0.35, seed=5)
        nway_result = cp_nway(tensor, config=NwayCpConfig(rank=2, n_initial_sets=4))
        dbtf_result = dbtf(tensor, rank=2, seed=0, n_partitions=4, n_initial_sets=4)
        assert abs(nway_result.error - dbtf_result.error) <= 0.2 * max(tensor.nnz, 1)

    def test_empty_tensor(self):
        result = cp_nway(SparseBoolTensor.empty((4, 4, 4, 4)), rank=2)
        assert result.error == 0

    def test_one_way_rejected(self):
        with pytest.raises(ValueError):
            cp_nway(SparseBoolTensor.empty((5,)), rank=1)

    def test_rank_or_config_required(self):
        with pytest.raises(ValueError):
            cp_nway(SparseBoolTensor.empty((2, 2)))

    def test_deterministic(self):
        tensor, _ = planted_nway((8, 8, 8), rank=2, density=0.4, seed=6)
        first = cp_nway(tensor, rank=2)
        second = cp_nway(tensor, rank=2)
        assert first.error == second.error
        assert first.factors == second.factors

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 0},
            {"rank": 1, "max_iterations": 0},
            {"rank": 1, "tolerance": -1},
            {"rank": 1, "n_initial_sets": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            NwayCpConfig(**kwargs)

    def test_result_rank_property(self):
        tensor, _ = planted_nway((6, 6), rank=3, density=0.4, seed=7)
        result = cp_nway(tensor, rank=3)
        assert result.rank == 3
