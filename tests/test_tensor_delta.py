"""Unit tests for TensorDelta and SparseBoolTensor.apply_delta."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import (
    SparseBoolTensor,
    TensorDelta,
    load_delta,
    save_delta,
)

SHAPE = (4, 5, 6)


def _tensor_pair(seed, density=0.2):
    """Two random tensors of SHAPE drawn from the same distribution."""
    rng = np.random.default_rng(seed)
    old = SparseBoolTensor.from_dense(
        (rng.random(SHAPE) < density).astype(np.uint8)
    )
    new = SparseBoolTensor.from_dense(
        (rng.random(SHAPE) < density).astype(np.uint8)
    )
    return old, new


class TestConstruction:
    def test_empty(self):
        delta = TensorDelta.empty(SHAPE)
        assert delta.is_empty
        assert delta.n_added == delta.n_removed == delta.n_changes == 0
        assert delta.shape == SHAPE

    def test_from_coords(self):
        delta = TensorDelta.from_coords(
            SHAPE, added=[(0, 0, 0), (1, 2, 3)], removed=[(3, 4, 5)]
        )
        assert delta.n_added == 2
        assert delta.n_removed == 1
        np.testing.assert_array_equal(
            delta.added_coords(), [[0, 0, 0], [1, 2, 3]]
        )
        np.testing.assert_array_equal(delta.removed_coords(), [[3, 4, 5]])

    def test_duplicates_collapse(self):
        delta = TensorDelta.from_coords(
            SHAPE, added=[(0, 0, 0), (0, 0, 0)], removed=[]
        )
        assert delta.n_added == 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TensorDelta.from_coords(SHAPE, added=[(4, 0, 0)], removed=[])

    def test_overlapping_add_remove_rejected(self):
        with pytest.raises(ValueError, match="both added and removed"):
            TensorDelta.from_coords(
                SHAPE, added=[(1, 1, 1)], removed=[(1, 1, 1)]
            )

    def test_immutable(self):
        delta = TensorDelta.empty(SHAPE)
        with pytest.raises(AttributeError):
            delta.shape = (1, 1, 1)

    def test_equality_and_hash(self):
        a = TensorDelta.from_coords(SHAPE, added=[(0, 1, 2)], removed=[])
        b = TensorDelta.from_coords(SHAPE, added=[(0, 1, 2)], removed=[])
        c = TensorDelta.from_coords(SHAPE, added=[(0, 1, 3)], removed=[])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestBetween:
    def test_between_recovers_difference(self):
        old, new = _tensor_pair(seed=0)
        delta = TensorDelta.between(old, new)
        assert old.apply_delta(delta) == new

    def test_between_identical_is_empty(self):
        old, _ = _tensor_pair(seed=1)
        assert TensorDelta.between(old, old).is_empty

    def test_between_shape_mismatch(self):
        old, _ = _tensor_pair(seed=2)
        other = SparseBoolTensor.empty((2, 2, 2))
        with pytest.raises(ValueError):
            TensorDelta.between(old, other)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_between_then_apply_round_trips(self, seed):
        old, new = _tensor_pair(seed)
        delta = TensorDelta.between(old, new)
        assert old.apply_delta(delta) == new
        assert delta.n_changes == old.hamming_distance(new)


class TestApplyDelta:
    def test_apply_empty_is_identity(self):
        old, _ = _tensor_pair(seed=3)
        assert old.apply_delta(TensorDelta.empty(SHAPE)) == old

    def test_add_present_cell_rejected(self):
        old, _ = _tensor_pair(seed=4)
        cell = tuple(int(x) for x in old.coords[0])
        delta = TensorDelta.from_coords(SHAPE, added=[cell], removed=[])
        with pytest.raises(ValueError, match="different base"):
            old.apply_delta(delta)

    def test_remove_absent_cell_rejected(self):
        old, _ = _tensor_pair(seed=5)
        present = {tuple(int(x) for x in c) for c in old.coords}
        absent = next(
            (i, j, k)
            for i in range(SHAPE[0])
            for j in range(SHAPE[1])
            for k in range(SHAPE[2])
            if (i, j, k) not in present
        )
        delta = TensorDelta.from_coords(SHAPE, added=[], removed=[absent])
        with pytest.raises(ValueError, match="different base"):
            old.apply_delta(delta)

    def test_shape_mismatch_rejected(self):
        old, _ = _tensor_pair(seed=6)
        delta = TensorDelta.empty((2, 2, 2))
        with pytest.raises(ValueError):
            old.apply_delta(delta)


class TestDeltaIO:
    def test_save_load_round_trip(self, tmp_path):
        old, new = _tensor_pair(seed=7)
        delta = TensorDelta.between(old, new)
        path = tmp_path / "changes.delta"
        save_delta(delta, path)
        assert load_delta(path) == delta

    def test_empty_round_trip(self, tmp_path):
        path = tmp_path / "empty.delta"
        save_delta(TensorDelta.empty(SHAPE), path)
        assert load_delta(path) == TensorDelta.empty(SHAPE)

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.delta"
        path.write_text("# delta 4 5 6\n? 0 0 0\n")
        with pytest.raises(ValueError):
            load_delta(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.delta"
        path.write_text("+ 0 0 0\n")
        with pytest.raises(ValueError):
            load_delta(path)
