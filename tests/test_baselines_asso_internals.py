"""Unit tests for ASSO's scoring helper."""

import numpy as np
import pytest

from repro.baselines.asso import cover_score


class TestCoverScore:
    def test_rewards_newly_covered_ones(self):
        target = np.array([[1, 1, 0, 0]], dtype=bool)
        covered = np.zeros_like(target)
        candidate = np.array([[1, 1, 0, 0]], dtype=bool)
        gains = cover_score(covered, candidate, target, 1.0, 1.0)
        assert gains[0] == pytest.approx(2.0)

    def test_penalizes_covered_zeros(self):
        target = np.array([[1, 0, 0, 0]], dtype=bool)
        covered = np.zeros_like(target)
        candidate = np.array([[1, 1, 1, 0]], dtype=bool)
        gains = cover_score(covered, candidate, target, 1.0, 1.0)
        assert gains[0] == pytest.approx(1.0 - 2.0)

    def test_already_covered_cells_are_neutral(self):
        target = np.array([[1, 1, 0, 0]], dtype=bool)
        covered = np.array([[1, 0, 0, 0]], dtype=bool)
        candidate = np.array([[1, 1, 0, 0]], dtype=bool)
        gains = cover_score(covered, candidate, target, 1.0, 1.0)
        assert gains[0] == pytest.approx(1.0)  # only the second 1 is new

    def test_weights_scale_contributions(self):
        target = np.array([[1, 0]], dtype=bool)
        covered = np.zeros_like(target)
        candidate = np.array([[1, 1]], dtype=bool)
        gains = cover_score(covered, candidate, target, 2.0, 0.5)
        assert gains[0] == pytest.approx(2.0 - 0.5)

    def test_per_row_independence(self):
        target = np.array([[1, 0], [0, 1]], dtype=bool)
        covered = np.zeros_like(target)
        candidate = np.array([[1, 0]], dtype=bool)  # broadcasts over rows
        gains = cover_score(covered, candidate, target, 1.0, 1.0)
        np.testing.assert_allclose(gains, [1.0, -1.0])
