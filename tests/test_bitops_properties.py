"""Algebraic property tests for the Boolean matrix operations.

Boolean matrices under OR/AND form a semiring; these laws must hold for the
bit-packed implementations exactly, because the CP machinery silently
relies on them (e.g. the matricized identities in Eq. 12).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import BitMatrix, boolean_matmul, khatri_rao


def random_bitmatrix(n_rows, n_cols, seed, density=0.4):
    rng = np.random.default_rng(seed)
    return BitMatrix.random(n_rows, n_cols, density, rng)


class TestSemiringLaws:
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5),
           st.integers(1, 5), st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_matmul_associative(self, m, k, l, n, seed):
        a = random_bitmatrix(m, k, seed)
        b = random_bitmatrix(k, l, seed + 1)
        c = random_bitmatrix(l, n, seed + 2)
        left = boolean_matmul(boolean_matmul(a, b), c)
        right = boolean_matmul(a, boolean_matmul(b, c))
        assert left == right

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(1, 5),
           st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_matmul_distributes_over_or(self, m, k, n, seed):
        a = random_bitmatrix(m, k, seed)
        b = random_bitmatrix(k, n, seed + 1)
        c = random_bitmatrix(k, n, seed + 2)
        left = boolean_matmul(a, b.boolean_or(c))
        right = boolean_matmul(a, b).boolean_or(boolean_matmul(a, c))
        assert left == right

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_matmul_monotone(self, m, n, seed):
        # Adding 1s to an operand can only add 1s to the product.
        a = random_bitmatrix(m, 4, seed)
        b = random_bitmatrix(4, n, seed + 1)
        extra = random_bitmatrix(4, n, seed + 2)
        small = boolean_matmul(a, b)
        large = boolean_matmul(a, b.boolean_or(extra))
        # small <= large elementwise: small AND large == small.
        assert small.boolean_and(large) == small

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
           st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_transpose_reverses_product(self, m, k, n, seed):
        a = random_bitmatrix(m, k, seed)
        b = random_bitmatrix(k, n, seed + 1)
        left = boolean_matmul(a, b).transpose()
        right = boolean_matmul(b.transpose(), a.transpose())
        assert left == right


class TestDeMorgan:
    @given(st.integers(1, 6), st.integers(1, 100), st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_union_intersection_counts(self, n_rows, n_cols, seed):
        a = random_bitmatrix(n_rows, n_cols, seed)
        b = random_bitmatrix(n_rows, n_cols, seed + 1)
        union = a.boolean_or(b).count_nonzeros()
        intersection = a.boolean_and(b).count_nonzeros()
        assert union + intersection == a.count_nonzeros() + b.count_nonzeros()

    @given(st.integers(1, 6), st.integers(1, 100), st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_xor_is_symmetric_difference(self, n_rows, n_cols, seed):
        a = random_bitmatrix(n_rows, n_cols, seed)
        b = random_bitmatrix(n_rows, n_cols, seed + 1)
        xor_count = a.xor(b).count_nonzeros()
        union = a.boolean_or(b).count_nonzeros()
        intersection = a.boolean_and(b).count_nonzeros()
        assert xor_count == union - intersection
        assert xor_count == a.hamming_distance(b)


class TestKhatriRaoStructure:
    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 3),
           st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_column_nnz_is_product(self, p, q, rank, seed):
        a = random_bitmatrix(p, rank, seed)
        b = random_bitmatrix(q, rank, seed + 1)
        product = khatri_rao(a, b)
        for r in range(rank):
            expected = int(a.column(r).sum()) * int(b.column(r).sum())
            assert int(product.column(r).sum()) == expected

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 3),
           st.integers(0, 999))
    @settings(max_examples=20, deadline=None)
    def test_matricized_cp_identity(self, i, j, rank, seed):
        # X(1) = A ∘ (C ⊙ B)^T for a factor tensor — Eq. (12) as a law.
        from repro.tensor import random_factors, tensor_from_factors, unfold

        rng = np.random.default_rng(seed)
        factors = random_factors((i, j, 3), rank, 0.5, rng)
        tensor = tensor_from_factors(factors)
        a_matrix, b_matrix, c_matrix = factors
        reconstructed = boolean_matmul(
            a_matrix, khatri_rao(c_matrix, b_matrix).transpose()
        )
        np.testing.assert_array_equal(
            unfold(tensor, 0).to_dense(), reconstructed.to_dense()
        )
