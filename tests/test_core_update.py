"""Unit tests for the distributed factor update (Algorithm 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import BitMatrix
from repro.core import DbtfConfig, prepare_partitioned_unfoldings, update_factor
from repro.distengine import SimulatedRuntime
from repro.tensor import (
    MODE_FACTOR_ROLES,
    random_factors,
    reconstruct_dense,
    tensor_from_factors,
)


def brute_force_error(factors, dense):
    return int((reconstruct_dense(factors) != dense).sum())


def setup_problem(shape, rank, seed, density=0.4, n_partitions=3):
    rng = np.random.default_rng(seed)
    factors = random_factors(shape, rank, density, rng)
    tensor = tensor_from_factors(factors)
    runtime = SimulatedRuntime()
    rdds = prepare_partitioned_unfoldings(tensor, n_partitions, runtime)
    config = DbtfConfig(rank=rank, n_partitions=n_partitions)
    return tensor, factors, rdds, config, runtime


class TestUpdateFactorExactness:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_true_factors_reach_zero_error(self, mode):
        tensor, factors, rdds, config, runtime = setup_problem((5, 6, 7), 3, seed=mode)
        target_index, outer_index, inner_index = MODE_FACTOR_ROLES[mode]
        updated, error = update_factor(
            rdds[mode],
            factors[target_index],
            factors[outer_index],
            factors[inner_index],
            config,
            runtime,
        )
        assert error == 0
        current = list(factors)
        current[target_index] = updated
        assert brute_force_error(tuple(current), tensor.to_dense()) == 0

    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reported_error_matches_brute_force(self, mode, seed):
        tensor, factors, rdds, config, runtime = setup_problem((4, 5, 6), 3, seed=seed)
        rng = np.random.default_rng(100 + seed)
        start = list(random_factors((4, 5, 6), 3, 0.5, rng))
        target_index, outer_index, inner_index = MODE_FACTOR_ROLES[mode]
        updated, error = update_factor(
            rdds[mode],
            start[target_index],
            start[outer_index],
            start[inner_index],
            config,
            runtime,
        )
        start[target_index] = updated
        assert error == brute_force_error(tuple(start), tensor.to_dense())

    def test_update_never_increases_error(self):
        tensor, _, rdds, config, runtime = setup_problem((6, 6, 6), 4, seed=9)
        rng = np.random.default_rng(10)
        start = random_factors((6, 6, 6), 4, 0.5, rng)
        before = brute_force_error(start, tensor.to_dense())
        updated, after = update_factor(
            rdds[0], start[0], start[2], start[1], config, runtime
        )
        assert after <= before

    def test_update_is_greedy_optimal_per_row(self):
        # With rank 1 there is a single column; each row's choice must be
        # the true argmin over {0, 1}.
        tensor, _, rdds, config, runtime = setup_problem((4, 4, 4), 1, seed=5)
        rng = np.random.default_rng(6)
        start = list(random_factors((4, 4, 4), 1, 0.5, rng))
        updated, _ = update_factor(
            rdds[0], start[0], start[2], start[1], config, runtime
        )
        dense = tensor.to_dense()
        for i in range(4):
            errors = {}
            for value in (0, 1):
                candidate = updated.copy()
                candidate.set(i, 0, value)
                errors[value] = brute_force_error(
                    (candidate, start[1], start[2]), dense
                )
            assert errors[updated.get(i, 0)] == min(errors.values())

    def test_ties_prefer_zero(self):
        # An all-zero tensor: covering anything strictly hurts unless the
        # component covers nothing; either way zero must be chosen.
        from repro.tensor import SparseBoolTensor

        tensor = SparseBoolTensor.empty((3, 3, 3))
        runtime = SimulatedRuntime()
        rdds = prepare_partitioned_unfoldings(tensor, 2, runtime)
        config = DbtfConfig(rank=2, n_partitions=2)
        rng = np.random.default_rng(0)
        start = random_factors((3, 3, 3), 2, 0.8, rng)
        updated, error = update_factor(
            rdds[0], start[0], start[2], start[1], config, runtime
        )
        assert error == 0
        assert updated.count_nonzeros() == 0

    def test_rank_mismatch_rejected(self):
        tensor, factors, rdds, config, runtime = setup_problem((4, 4, 4), 2, seed=1)
        wrong = BitMatrix.zeros(4, 5)
        with pytest.raises(ValueError):
            update_factor(rdds[0], wrong, factors[2], factors[1], config, runtime)


class TestUpdateFactorWithGroupedCache:
    def test_small_v_matches_large_v(self):
        # The V split is an implementation detail: results must be identical.
        tensor, factors, rdds, _, runtime = setup_problem((5, 5, 5), 6, seed=3)
        rng = np.random.default_rng(4)
        start = random_factors((5, 5, 5), 6, 0.5, rng)
        results = []
        for group_size in (2, 3, 15):
            config = DbtfConfig(rank=6, n_partitions=3, cache_group_size=group_size)
            updated, error = update_factor(
                rdds[0], start[0], start[2], start[1], config, runtime
            )
            results.append((updated, error))
        for updated, error in results[1:]:
            assert updated == results[0][0]
            assert error == results[0][1]


class TestUpdateFactorPartitionInvariance:
    @given(st.integers(1, 10), st.integers(0, 99))
    @settings(max_examples=15, deadline=None)
    def test_partition_count_does_not_change_result(self, n_partitions, seed):
        rng = np.random.default_rng(seed)
        factors = random_factors((5, 6, 4), 3, 0.4, rng)
        tensor = tensor_from_factors(factors)
        start = random_factors((5, 6, 4), 3, 0.5, np.random.default_rng(seed + 1))

        def run(parts):
            runtime = SimulatedRuntime()
            rdds = prepare_partitioned_unfoldings(tensor, parts, runtime)
            config = DbtfConfig(rank=3, n_partitions=parts)
            return update_factor(
                rdds[0], start[0], start[2], start[1], config, runtime
            )

        baseline_factor, baseline_error = run(1)
        updated, error = run(n_partitions)
        assert updated == baseline_factor
        assert error == baseline_error
