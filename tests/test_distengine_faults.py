"""Failure-injection tests for the simulated engine and DBTF on top of it."""

import numpy as np
import pytest

from repro.distengine import (
    ClusterConfig,
    FaultInjector,
    SimulatedRuntime,
    TaskFailedError,
)
from repro.tensor import planted_tensor


class TestFaultInjector:
    def test_deterministic_decisions(self):
        injector = FaultInjector(failure_rate=0.5, seed=1)
        decisions = [injector.should_fail("s", p, a) for p in range(10) for a in range(3)]
        again = [injector.should_fail("s", p, a) for p in range(10) for a in range(3)]
        assert decisions == again

    def test_zero_rate_never_fails(self):
        injector = FaultInjector(failure_rate=0.0)
        assert not any(
            injector.should_fail("s", p, a) for p in range(50) for a in range(3)
        )

    def test_rate_roughly_respected(self):
        injector = FaultInjector(failure_rate=0.3, seed=2)
        failures = sum(injector.should_fail("s", p, 0) for p in range(1000))
        assert 200 < failures < 400

    def test_seed_changes_decisions(self):
        a = FaultInjector(failure_rate=0.5, seed=1)
        b = FaultInjector(failure_rate=0.5, seed=2)
        decisions_a = [a.should_fail("s", p, 0) for p in range(100)]
        decisions_b = [b.should_fail("s", p, 0) for p in range(100)]
        assert decisions_a != decisions_b

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(failure_rate=1.0)
        with pytest.raises(ValueError):
            FaultInjector(failure_rate=-0.1)
        with pytest.raises(ValueError):
            FaultInjector(max_retries=-1)


class TestEngineRetries:
    def _runtime(self, rate, retries=5, seed=0):
        return SimulatedRuntime(
            ClusterConfig(n_machines=2, cores_per_machine=2),
            fault_injector=FaultInjector(failure_rate=rate, max_retries=retries,
                                         seed=seed),
        )

    def test_results_unchanged_by_retries(self):
        runtime = self._runtime(rate=0.4)
        rdd = runtime.parallelize(list(range(20)), n_partitions=5)
        assert rdd.map(lambda x: x * 2).collect() == [x * 2 for x in range(20)]
        assert runtime.total_task_failures > 0

    def test_failures_counted_per_stage(self):
        runtime = self._runtime(rate=0.4, seed=3)
        rdd = runtime.parallelize(list(range(20)), n_partitions=8)
        rdd.map(lambda x: x, name="stage-a").collect()
        assert runtime.task_failures.get("stage-a", 0) >= 1

    def test_retry_budget_exhaustion_raises(self):
        runtime = self._runtime(rate=0.9, retries=0, seed=0)
        rdd = runtime.parallelize(list(range(20)), n_partitions=10)
        with pytest.raises(TaskFailedError):
            rdd.map(lambda x: x).collect()

    def test_lost_attempts_charge_stage_time(self):
        def run(rate, seed=7):
            runtime = self._runtime(rate=rate, seed=seed)
            rdd = runtime.parallelize(list(range(400)), n_partitions=4)
            rdd.map(lambda x: sum(range(500)), name="work").count()
            stage = next(s for s in runtime.stages if s.name == "work")
            return stage.total_cpu_time, runtime.total_task_failures

        clean_time, clean_failures = run(0.0)
        faulty_time, faulty_failures = run(0.6)
        assert clean_failures == 0
        assert faulty_failures > 0
        assert faulty_time > clean_time

    def test_reset_clears_failures(self):
        runtime = self._runtime(rate=0.4)
        rdd = runtime.parallelize([1, 2, 3], n_partitions=3)
        rdd.map(lambda x: x).collect()
        runtime.reset()
        assert runtime.total_task_failures == 0


class TestDbtfUnderFaults:
    def test_same_factors_with_and_without_faults(self):
        from repro.core import dbtf

        rng = np.random.default_rng(0)
        tensor, _ = planted_tensor((12, 12, 12), rank=2, factor_density=0.3, rng=rng)
        clean_runtime = SimulatedRuntime()
        clean = dbtf(tensor, rank=2, seed=1, n_partitions=4, runtime=clean_runtime)
        faulty_runtime = SimulatedRuntime(
            fault_injector=FaultInjector(failure_rate=0.15, max_retries=10, seed=5)
        )
        faulty = dbtf(tensor, rank=2, seed=1, n_partitions=4, runtime=faulty_runtime)
        assert clean.factors == faulty.factors
        assert clean.error == faulty.error
        assert faulty_runtime.total_task_failures > 0


def _double(x):
    """Module-level map function so the process backend can pickle it."""
    return x * 2


def _increment(x):
    return x + 1


class TestFaultDeterminismAcrossBackends:
    """The injector's decisions — and therefore the retry counters the
    metrics registry ends up with — must not depend on the stage executor.
    """

    def _retry_counters(self, backend):
        runtime = SimulatedRuntime(
            ClusterConfig(n_machines=2, cores_per_machine=2, backend=backend,
                          n_workers=2),
            fault_injector=FaultInjector(failure_rate=0.4, max_retries=5,
                                         seed=11),
        )
        try:
            rdd = runtime.parallelize(list(range(24)), n_partitions=6)
            rdd.map(_double, name="double").collect()
            rdd.map(_increment, name="increment").collect()
        finally:
            runtime.close()
        return (
            runtime.metrics.counters().get("task_failures_total", {}),
            runtime.task_failures,
        )

    def test_registry_retry_counters_backend_invariant(self):
        serial_counters, serial_facade = self._retry_counters("serial")
        assert serial_facade  # the fixed spec does inject failures
        for backend in ("thread", "process"):
            counters, facade = self._retry_counters(backend)
            assert counters == serial_counters
            assert facade == serial_facade

    def test_facade_reads_registry(self):
        counters, facade = self._retry_counters("serial")
        assert facade == {
            dict(labels)["stage"]: int(value)
            for labels, value in counters.items()
        }


class TestTaskFailedErrorPayload:
    def _raise_exhausted(self, backend):
        runtime = SimulatedRuntime(
            ClusterConfig(n_machines=1, cores_per_machine=1, backend=backend,
                          n_workers=2),
            fault_injector=FaultInjector(failure_rate=0.95, max_retries=0,
                                         seed=0),
        )
        try:
            rdd = runtime.parallelize(list(range(8)), n_partitions=4)
            with pytest.raises(TaskFailedError) as excinfo:
                rdd.map(_increment, name="doomed").collect()
        finally:
            runtime.close()
        return excinfo.value

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_error_carries_stage_and_partition(self, backend):
        error = self._raise_exhausted(backend)
        assert error.stage == "doomed"
        assert isinstance(error.partition, int)
        # Message is self-contained too, for logs that only keep the text.
        assert "doomed" in str(error)
        assert f"task {error.partition} " in str(error)

    def test_attributes_survive_pickling(self):
        import pickle

        original = TaskFailedError("task 3 of stage 's' failed 2 times",
                                   stage="s", partition=3)
        clone = pickle.loads(pickle.dumps(original))
        assert clone.stage == "s"
        assert clone.partition == 3
        assert str(clone) == str(original)
