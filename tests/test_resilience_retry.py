"""RetryPolicy: backoff schedule, determinism, engine integration."""

import pickle

import pytest

from repro.distengine import (
    ClusterConfig,
    FaultInjector,
    RetryPolicy,
    SimulatedRuntime,
    TaskFailedError,
)
from repro.distengine.backends import make_backend
from repro.distengine.backends.base import execute_task


def _identity(index, items):
    return items


class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay_sec": -0.1},
            {"backoff_factor": 0.5},
            {"base_delay_sec": 2.0, "max_delay_sec": 1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
            {"deadline_sec": 0.0},
            {"deadline_sec": -1.0},
            {"blacklist_after": 0},
        ],
    )
    def test_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_defaults_valid(self):
        RetryPolicy()


class TestBackoffSchedule:
    def test_deterministic(self):
        policy = RetryPolicy(seed=7)
        assert policy.backoff_delay("s", 3, 2) == policy.backoff_delay("s", 3, 2)

    def test_varies_with_inputs(self):
        policy = RetryPolicy(seed=7)
        delays = {
            policy.backoff_delay("s", 0, 1),
            policy.backoff_delay("s", 1, 1),
            policy.backoff_delay("t", 0, 1),
            RetryPolicy(seed=8).backoff_delay("s", 0, 1),
        }
        assert len(delays) == 4

    def test_exponential_growth_and_cap(self):
        policy = RetryPolicy(
            base_delay_sec=1.0, backoff_factor=2.0, max_delay_sec=5.0, jitter=0.0
        )
        assert policy.backoff_delay("s", 0, 1) == 1.0
        assert policy.backoff_delay("s", 0, 2) == 2.0
        assert policy.backoff_delay("s", 0, 3) == 4.0
        assert policy.backoff_delay("s", 0, 4) == 5.0  # capped
        assert policy.backoff_delay("s", 0, 10) == 5.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_sec=1.0, backoff_factor=1.0, jitter=0.25)
        for partition in range(50):
            delay = policy.backoff_delay("s", partition, 1)
            assert 0.75 <= delay <= 1.25

    def test_total_backoff_sums_intervals(self):
        policy = RetryPolicy(seed=3)
        total = policy.total_backoff("s", 2, 3)
        assert total == pytest.approx(
            sum(policy.backoff_delay("s", 2, a) for a in (1, 2, 3))
        )
        assert policy.total_backoff("s", 2, 0) == 0.0

    def test_attempt_must_be_positive(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_delay("s", 0, 0)

    def test_should_blacklist(self):
        assert not RetryPolicy().should_blacklist(100)
        policy = RetryPolicy(blacklist_after=3)
        assert not policy.should_blacklist(2)
        assert policy.should_blacklist(3)


def _failing_injector():
    """An injector whose rate guarantees some retries on 8 partitions."""
    return FaultInjector(failure_rate=0.5, max_retries=2, seed=11)


class TestExecuteTaskWithPolicy:
    def test_retry_wait_matches_schedule(self):
        injector = _failing_injector()
        policy = RetryPolicy(max_retries=10, seed=0)
        for partition in range(8):
            outcome = execute_task(
                _identity, "stage", partition, [1], injector,
                retry_policy=policy,
            )
            expected = policy.total_backoff("stage", partition, outcome.failures)
            assert outcome.retry_wait == pytest.approx(expected)

    def test_no_policy_means_zero_wait(self):
        outcome = execute_task(_identity, "stage", 0, [1], _failing_injector())
        assert outcome.retry_wait == 0.0

    def test_policy_budget_replaces_injector_budget(self):
        # Seed 1 fails the first attempt but recovers by attempt 5: the
        # injector alone (max_retries=0) gives up, a generous policy does not.
        with pytest.raises(TaskFailedError):
            execute_task(
                _identity, "stage", 0, [1],
                FaultInjector(failure_rate=0.6, max_retries=0, seed=1),
            )
        outcome = execute_task(
            _identity, "stage", 0, [1],
            FaultInjector(failure_rate=0.6, max_retries=0, seed=1),
            retry_policy=RetryPolicy(max_retries=10),
        )
        assert outcome.result == [1]
        assert outcome.failures == 4

    def test_exhaustion_error_payload(self):
        injector = FaultInjector(failure_rate=0.999, max_retries=0, seed=0)
        policy = RetryPolicy(max_retries=2, seed=0)
        with pytest.raises(TaskFailedError) as excinfo:
            execute_task(_identity, "doomed", 4, [1], injector,
                         retry_policy=policy)
        error = excinfo.value
        assert error.stage == "doomed"
        assert error.partition == 4
        assert error.attempts == 3
        assert error.retry_wait == pytest.approx(
            policy.total_backoff("doomed", 4, 2)
        )
        message = str(error)
        assert "task 4 of stage 'doomed' failed 3 times" in message
        assert "simulated retry backoff" in message

    def test_deadline_fails_fast(self):
        injector = FaultInjector(failure_rate=0.999, max_retries=0, seed=0)
        policy = RetryPolicy(
            max_retries=100, base_delay_sec=1.0, backoff_factor=2.0,
            max_delay_sec=100.0, jitter=0.0, deadline_sec=5.0,
        )
        with pytest.raises(TaskFailedError, match="deadline of 5.0s") as excinfo:
            execute_task(_identity, "slow", 0, [1], injector,
                         retry_policy=policy)
        # 1 + 2 + 4 = 7s of backoff blows the 5s deadline on attempt 3.
        assert excinfo.value.attempts == 3

    def test_error_pickle_round_trip(self):
        error = TaskFailedError(
            "task 4 of stage 'doomed' failed 3 times (waited 0.150s of "
            "simulated retry backoff)",
            stage="doomed", partition=4, attempts=3, retry_wait=0.15,
        )
        restored = pickle.loads(pickle.dumps(error))
        assert str(restored) == str(error)
        assert restored.stage == "doomed"
        assert restored.partition == 4
        assert restored.attempts == 3
        assert restored.retry_wait == 0.15

    def test_error_pickle_round_trip_through_process_pool(self):
        injector = FaultInjector(failure_rate=0.999, max_retries=0, seed=0)
        policy = RetryPolicy(max_retries=1, seed=0)
        with make_backend("process", 2) as backend:
            with pytest.raises(TaskFailedError) as excinfo:
                backend.run_stage(
                    "doomed", _identity, [(0, [1])], injector,
                    retry_policy=policy,
                )
        error = excinfo.value
        assert (error.stage, error.partition) == ("doomed", 0)
        assert error.attempts == 2
        assert error.retry_wait > 0.0
        assert "failed 2 times" in str(error)


def _run_faulty(backend: str) -> SimulatedRuntime:
    runtime = SimulatedRuntime(
        ClusterConfig(n_machines=2, cores_per_machine=2, backend=backend),
        fault_injector=FaultInjector(failure_rate=0.4, max_retries=10, seed=3),
        retry_policy=RetryPolicy(max_retries=10, seed=0),
    )
    try:
        data = runtime.parallelize(list(range(64)), n_partitions=8)
        data.map_partitions_with_index(_identity, name="work").collect()
    finally:
        runtime.close()
    return runtime


class TestRuntimeIntegration:
    def test_waits_charged_to_simulated_time(self):
        runtime = _run_faulty("serial")
        report = runtime.report()
        assert report.total_retry_wait > 0.0
        # Replaying the same stages without their waits must be cheaper.
        bare = SimulatedRuntime(runtime.config)
        for stage in runtime.stages:
            bare.record_stage(stage.name, stage.durations)
        assert runtime.simulated_time() > bare.simulated_time()

    def test_wait_metrics_recorded(self):
        runtime = _run_faulty("serial")
        counters = runtime.metrics.counters()
        total = sum(counters["retry_wait_seconds_total"].values())
        assert total == pytest.approx(runtime.report().total_retry_wait)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_waits_backend_invariant(self, backend):
        serial = _run_faulty("serial")
        other = _run_faulty(backend)
        assert [stage.retry_waits for stage in other.stages] == [
            stage.retry_waits for stage in serial.stages
        ]
        assert [stage.failure_counts for stage in other.stages] == [
            stage.failure_counts for stage in serial.stages
        ]

    def test_blacklist_threshold(self):
        runtime = SimulatedRuntime(
            ClusterConfig(backend="serial"),
            fault_injector=FaultInjector(
                failure_rate=0.6, max_retries=20, seed=9
            ),
            retry_policy=RetryPolicy(max_retries=20, blacklist_after=2),
        )
        try:
            data = runtime.parallelize(list(range(64)), n_partitions=8)
            data.map_partitions_with_index(_identity, name="work").collect()
        finally:
            runtime.close()
        expected = {
            (stage.name, index)
            for stage in runtime.stages
            for index, count in enumerate(stage.failure_counts)
            if count >= 2
        }
        assert runtime.blacklisted_partitions == expected
        assert expected  # the seed/rate above must actually trip it
        counters = runtime.metrics.counters()
        assert sum(
            counters["partitions_blacklisted_total"].values()
        ) == len(expected)

    def test_reset_clears_blacklist(self):
        runtime = SimulatedRuntime(ClusterConfig())
        runtime.blacklisted_partitions.add(("s", 0))
        runtime.reset()
        assert runtime.blacklisted_partitions == set()
