"""Integration tests for the DBTF driver (Algorithm 2)."""

import numpy as np
import pytest

from repro import dbtf, planted_tensor, random_tensor
from repro.core import DbtfConfig
from repro.distengine import SimulatedRuntime, TransferKind
from repro.tensor import SparseBoolTensor


class TestDbtfBasics:
    def test_error_matches_reconstruction(self):
        rng = np.random.default_rng(0)
        tensor, _ = planted_tensor((16, 16, 16), rank=3, factor_density=0.3, rng=rng)
        result = dbtf(tensor, rank=3, seed=1, n_partitions=4)
        assert result.error == tensor.hamming_distance(result.reconstruct())

    def test_errors_monotone_non_increasing(self):
        rng = np.random.default_rng(1)
        tensor, _ = planted_tensor((16, 16, 16), rank=4, factor_density=0.3, rng=rng)
        result = dbtf(tensor, rank=4, seed=2, n_partitions=4)
        errors = result.errors_per_iteration
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_factor_shapes(self):
        rng = np.random.default_rng(2)
        tensor = random_tensor((8, 10, 12), density=0.05, rng=rng)
        result = dbtf(tensor, rank=3, seed=0, n_partitions=2, max_iterations=2)
        a, b, c = result.factors
        assert a.shape == (8, 3)
        assert b.shape == (10, 3)
        assert c.shape == (12, 3)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        tensor = random_tensor((10, 10, 10), density=0.1, rng=rng)
        first = dbtf(tensor, rank=3, seed=7, n_partitions=3)
        second = dbtf(tensor, rank=3, seed=7, n_partitions=3)
        assert first.factors == second.factors
        assert first.error == second.error

    def test_empty_tensor_zero_error(self):
        result = dbtf(SparseBoolTensor.empty((6, 6, 6)), rank=2, n_partitions=2)
        assert result.error == 0
        assert all(f.count_nonzeros() == 0 for f in result.factors)

    def test_relative_error(self):
        rng = np.random.default_rng(4)
        tensor = random_tensor((8, 8, 8), density=0.2, rng=rng)
        result = dbtf(tensor, rank=2, seed=0, n_partitions=2, max_iterations=2)
        assert result.relative_error == pytest.approx(result.error / tensor.nnz)

    def test_non_three_way_rejected(self):
        with pytest.raises(ValueError):
            dbtf(SparseBoolTensor.empty((2, 2)), rank=1)

    def test_rank_or_config_required(self):
        with pytest.raises(ValueError):
            dbtf(SparseBoolTensor.empty((2, 2, 2)))

    def test_config_and_overrides_conflict(self):
        config = DbtfConfig(rank=2)
        with pytest.raises(ValueError):
            dbtf(SparseBoolTensor.empty((2, 2, 2)), config=config, seed=3)

    def test_rank_beyond_64_multi_word_masks(self):
        # Ranks above 64 pack row masks into two words; the whole pipeline
        # (cache keys, candidate masks, column updates) must still work.
        rng = np.random.default_rng(99)
        tensor = random_tensor((8, 8, 8), density=0.3, rng=rng)
        result = dbtf(tensor, rank=70, seed=0, n_partitions=2, max_iterations=1)
        assert result.error == tensor.hamming_distance(result.reconstruct())

    def test_explicit_config(self):
        rng = np.random.default_rng(5)
        tensor = random_tensor((6, 6, 6), density=0.1, rng=rng)
        config = DbtfConfig(rank=2, max_iterations=2, n_partitions=2)
        result = dbtf(tensor, config=config)
        assert result.config is config


class TestRecovery:
    def test_exact_recovery_possible_from_planted_structure(self):
        # With enough restarts DBTF should essentially recover a clean
        # low-rank tensor (small relative error).
        rng = np.random.default_rng(6)
        tensor, _ = planted_tensor((24, 24, 24), rank=4, factor_density=0.25, rng=rng)
        result = dbtf(tensor, rank=4, seed=3, n_partitions=4, n_initial_sets=6)
        assert result.relative_error < 0.25

    def test_more_initial_sets_never_hurts_much(self):
        rng = np.random.default_rng(7)
        tensor, _ = planted_tensor((16, 16, 16), rank=3, factor_density=0.3, rng=rng)
        single = dbtf(tensor, rank=3, seed=4, n_partitions=4, n_initial_sets=1)
        multi = dbtf(tensor, rank=3, seed=4, n_partitions=4, n_initial_sets=5)
        assert multi.error <= single.error

    def test_random_initialization_runs(self):
        rng = np.random.default_rng(8)
        tensor, _ = planted_tensor((12, 12, 12), rank=2, factor_density=0.4, rng=rng)
        result = dbtf(
            tensor, rank=2, seed=5, n_partitions=2, initialization="random"
        )
        # Still a valid decomposition even if quality is poor.
        assert result.error == tensor.hamming_distance(result.reconstruct())


class TestConvergence:
    def test_converges_before_max_iterations(self):
        rng = np.random.default_rng(9)
        tensor, _ = planted_tensor((12, 12, 12), rank=2, factor_density=0.4, rng=rng)
        result = dbtf(tensor, rank=2, seed=0, n_partitions=2, max_iterations=50)
        assert result.converged
        assert result.n_iterations < 50

    def test_max_iterations_respected(self):
        rng = np.random.default_rng(10)
        tensor = random_tensor((8, 8, 8), density=0.2, rng=rng)
        result = dbtf(tensor, rank=2, seed=0, n_partitions=2, max_iterations=1)
        assert result.n_iterations == 1

    def test_loose_tolerance_stops_earlier_or_equal(self):
        rng = np.random.default_rng(11)
        tensor, _ = planted_tensor((16, 16, 16), rank=3, factor_density=0.3, rng=rng)
        strict = dbtf(tensor, rank=3, seed=1, n_partitions=2, tolerance=0.0)
        loose = dbtf(tensor, rank=3, seed=1, n_partitions=2, tolerance=0.5)
        assert loose.n_iterations <= strict.n_iterations


class TestEngineAccounting:
    def test_unfoldings_shuffled_once(self):
        rng = np.random.default_rng(12)
        tensor = random_tensor((10, 10, 10), density=0.1, rng=rng)
        runtime = SimulatedRuntime()
        dbtf(tensor, rank=2, seed=0, n_partitions=2, max_iterations=2, runtime=runtime)
        shuffle_stages = [
            stage
            for stage in runtime.ledger.by_stage
            if stage.startswith("partitionUnfolding")
        ]
        assert len(shuffle_stages) == 3  # one per mode, never repeated

    def test_shuffle_volume_is_lemma6_bound(self):
        # Exactly the sparse coordinate triples move: 3 int64 per nonzero
        # per mode (Lemma 6's O(|X|)).
        rng = np.random.default_rng(15)
        tensor = random_tensor((10, 12, 8), density=0.1, rng=rng)
        runtime = SimulatedRuntime()
        dbtf(tensor, rank=2, seed=0, n_partitions=3, max_iterations=1,
             runtime=runtime)
        shuffled = runtime.ledger.bytes_of_kind(TransferKind.SHUFFLE)
        assert shuffled == 3 * tensor.nnz * 3 * 8

    def test_report_attached(self):
        rng = np.random.default_rng(13)
        tensor = random_tensor((8, 8, 8), density=0.1, rng=rng)
        result = dbtf(tensor, rank=2, seed=0, n_partitions=2, max_iterations=1)
        assert result.report is not None
        assert result.report.simulated_time > 0
        assert result.report.shuffle_bytes > 0
        assert result.report.broadcast_bytes > 0

    def test_simulated_time_decreases_with_machines(self):
        rng = np.random.default_rng(14)
        tensor = random_tensor((16, 16, 16), density=0.1, rng=rng)
        runtime = SimulatedRuntime()
        dbtf(tensor, rank=3, seed=0, n_partitions=16, max_iterations=2, runtime=runtime)
        assert runtime.simulated_time(16) <= runtime.simulated_time(1) + 1e-9


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"rank": 0},
            {"rank": 2, "max_iterations": 0},
            {"rank": 2, "n_initial_sets": 0},
            {"rank": 2, "n_partitions": 0},
            {"rank": 2, "cache_group_size": 0},
            {"rank": 2, "cache_group_size": 63},
            {"rank": 2, "tolerance": -0.1},
            {"rank": 2, "init_density": 0.0},
            {"rank": 2, "init_density": 1.5},
            {"rank": 2, "initialization": "magic"},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ValueError):
            DbtfConfig(**kwargs)

    def test_resolved_partitions_default(self):
        config = DbtfConfig(rank=2)
        assert config.resolved_partitions() == config.cluster.total_slots

    def test_resolved_partitions_explicit(self):
        assert DbtfConfig(rank=2, n_partitions=5).resolved_partitions() == 5
