"""Unit tests for N-way CP internals (coverage rows, mode updates)."""

import numpy as np
import pytest

from repro.bitops import packing
from repro.nway.cp import _coverage_rows, _update_mode


class TestCoverageRows:
    def test_three_way_matches_outer_products(self):
        rng = np.random.default_rng(0)
        factors = [
            (rng.random((4, 2)) < 0.5).astype(np.uint8) for _ in range(3)
        ]
        packed = _coverage_rows(factors, mode=0, rank=2)
        for r in range(2):
            expected = np.multiply.outer(
                factors[1][:, r].astype(bool), factors[2][:, r].astype(bool)
            ).ravel().astype(np.uint8)
            actual = packing.unpack_bits(packed[r], expected.shape[0])
            np.testing.assert_array_equal(actual, expected)

    def test_flattening_matches_moveaxis_order(self):
        # The coverage layout must agree with moveaxis(dense, mode, 0)
        # followed by a C-order reshape — otherwise errors are garbage.
        rng = np.random.default_rng(1)
        factors = [
            (rng.random((3, 1)) < 0.7).astype(np.uint8) for _ in range(3)
        ]
        from repro.nway import nway_reconstruct
        from repro.bitops import BitMatrix

        tensor = nway_reconstruct(tuple(BitMatrix.from_dense(f) for f in factors))
        dense = tensor.to_dense()
        for mode in range(3):
            unfolded = np.moveaxis(dense, mode, 0).reshape(dense.shape[mode], -1)
            packed = _coverage_rows(factors, mode=mode, rank=1)
            coverage = packing.unpack_bits(packed[0], unfolded.shape[1])
            users = factors[mode][:, 0].astype(bool)
            # Rows using the component must be covered exactly by it.
            for row in np.flatnonzero(users):
                np.testing.assert_array_equal(unfolded[row], coverage)

    def test_two_way_coverage_is_other_factor_column(self):
        rng = np.random.default_rng(2)
        factors = [
            (rng.random((5, 2)) < 0.5).astype(np.uint8) for _ in range(2)
        ]
        packed = _coverage_rows(factors, mode=0, rank=2)
        for r in range(2):
            actual = packing.unpack_bits(packed[r], 5)
            np.testing.assert_array_equal(actual, factors[1][:, r])


class TestUpdateMode:
    def test_greedy_matches_brute_force(self):
        rng = np.random.default_rng(3)
        factors = [
            (rng.random((4, 2)) < 0.5).astype(np.uint8) for _ in range(3)
        ]
        from repro.bitops import BitMatrix
        from repro.nway import nway_reconstruct

        tensor = nway_reconstruct(tuple(BitMatrix.from_dense(f) for f in factors))
        dense = tensor.to_dense()
        unfolded = packing.pack_bits(dense.reshape(4, -1))
        coverage = _coverage_rows(factors, mode=0, rank=2)
        start = (rng.random((4, 2)) < 0.5).astype(np.uint8)
        updated, error = _update_mode(unfolded, start, coverage)

        def brute(a_dense):
            reconstructed = np.zeros_like(dense, dtype=bool)
            for r in range(2):
                block = np.multiply.outer(
                    np.multiply.outer(
                        a_dense[:, r].astype(bool), factors[1][:, r].astype(bool)
                    ),
                    factors[2][:, r].astype(bool),
                )
                reconstructed |= block
            return int((reconstructed ^ dense.astype(bool)).sum())

        assert error == brute(updated)
        assert error <= brute(start)
