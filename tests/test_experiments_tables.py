"""Unit tests for Table I derivation logic."""

import pytest

from repro.experiments import ResultTable, table1
from repro.experiments.tables import _axis_rating


def sweep_table(dbtf_cells, wnm_cells, bcp_cells):
    table = ResultTable(
        "fake sweep", ["x", "DBTF (s)", "Walk'n'Merge (s)", "BCP_ALS (s)"]
    )
    for row in zip(dbtf_cells, wnm_cells, bcp_cells):
        table.add_row("p", *row)
    return table


class TestAxisRating:
    def test_all_complete_is_high(self):
        table = sweep_table(["1.0", "2.0"], ["3.0", "4.0"], ["5.0", "6.0"])
        assert _axis_rating(table, "DBTF (s)") == "High"

    def test_any_oot_is_low(self):
        table = sweep_table(["1.0", "2.0"], ["3.0", "O.O.T."], ["5.0", "6.0"])
        assert _axis_rating(table, "Walk'n'Merge (s)") == "Low"

    def test_any_oom_is_low(self):
        table = sweep_table(["1.0"], ["2.0"], ["O.O.M."])
        assert _axis_rating(table, "BCP_ALS (s)") == "Low"


class TestTable1:
    def test_matches_paper_given_paper_shaped_sweeps(self):
        # Feed in sweeps shaped like the paper's outcomes and check the
        # derived matrix reproduces Table I exactly.
        dims = sweep_table(
            ["0.5", "0.5", "0.6"], ["1", "O.O.T.", "O.O.T."],
            ["2", "O.O.M.", "O.O.M."],
        )
        density = sweep_table(
            ["0.5", "0.5"], ["5", "O.O.T."], ["3", "4"],
        )
        rank = sweep_table(["0.5", "1.0"], ["20", "21"], ["3", "9"])
        table = table1(dimensionality=dims, density=density, rank=rank)
        ratings = {row[0]: row[1:] for row in table.rows}
        assert ratings["DBTF"] == ["High", "High", "High", "Yes"]
        assert ratings["Walk'n'Merge"] == ["Low", "Low", "High", "No"]
        assert ratings["BCP_ALS"] == ["Low", "High", "High", "No"]
