"""The cooperative step generators under the one-shot entry points.

``dbtf_steps`` / ``cp_nway_steps`` / ``boolean_tucker_steps`` are the same
code paths as ``dbtf`` / ``cp_nway`` / ``boolean_tucker`` — the one-shot
functions just drain them — so these tests pin the *generator contract*
the service depends on: event shape, yield-at-checkpoint-boundary, clean
cancellation via ``close()``, and drained-equals-monolithic results.
"""

import numpy as np
import pytest

from repro.core import DbtfConfig, StepEvent, dbtf, dbtf_steps, drive
from repro.distengine import ClusterConfig, SimulatedRuntime
from repro.nway import NwayCpConfig, cp_nway, cp_nway_steps
from repro.resilience import CheckpointConfig
from repro.tensor import planted_tensor
from repro.tucker import (
    BooleanTuckerConfig,
    boolean_tucker,
    boolean_tucker_steps,
)


def make_tensor(seed=0, dim=10):
    tensor, _ = planted_tensor(
        (dim, dim, dim), rank=3, factor_density=0.3,
        rng=np.random.default_rng(seed),
    )
    return tensor


class TestStepEvent:
    def test_frozen(self):
        event = StepEvent(step=1, error=5, converged=False)
        with pytest.raises(AttributeError):
            event.step = 2

    def test_drive_returns_generator_value(self):
        def gen():
            yield StepEvent(0, 1, False)
            return "done"

        assert drive(gen()) == "done"


class TestDbtfSteps:
    def test_drained_equals_monolithic(self):
        tensor = make_tensor()
        config = DbtfConfig(rank=3, max_iterations=3)
        with SimulatedRuntime(ClusterConfig()) as runtime:
            stepped = drive(dbtf_steps(tensor, config, runtime))
        direct = dbtf(tensor, rank=3, max_iterations=3)
        assert stepped.error == direct.error
        assert stepped.errors_per_iteration == direct.errors_per_iteration
        for mine, theirs in zip(stepped.factors, direct.factors):
            assert np.array_equal(mine.words, theirs.words)

    def test_event_sequence(self):
        tensor = make_tensor()
        config = DbtfConfig(rank=3, max_iterations=3)
        with SimulatedRuntime(ClusterConfig()) as runtime:
            events = list(dbtf_steps(tensor, config, runtime))
        assert events[0].phase == "init"
        assert events[0].step == 0
        assert all(e.phase == "iteration" for e in events[1:])
        assert [e.step for e in events[1:]] == list(
            range(1, len(events))
        )
        # Errors are monotonically non-increasing across yields.
        errors = [e.error for e in events]
        assert errors == sorted(errors, reverse=True)
        assert events[-1].converged or len(events) - 1 == 3

    def test_close_unpersists(self):
        tensor = make_tensor()
        config = DbtfConfig(rank=3, max_iterations=5)
        with SimulatedRuntime(ClusterConfig()) as runtime:
            steps = dbtf_steps(tensor, config, runtime)
            next(steps)
            next(steps)
            assert len(runtime._persisted_nodes) > 0
            steps.close()
            assert len(runtime._persisted_nodes) == 0

    def test_yield_lands_after_checkpoint(self, tmp_path):
        from repro.resilience import CheckpointManager, config_fingerprint

        tensor = make_tensor()
        config = DbtfConfig(
            rank=3, max_iterations=4,
            checkpoint=CheckpointConfig(directory=tmp_path),
        )
        with SimulatedRuntime(ClusterConfig()) as runtime:
            steps = dbtf_steps(tensor, config, runtime)
            snapshots_seen = []
            for event in steps:
                snapshots = sorted(tmp_path.glob("checkpoint-*.ckpt"))
                # The event's own step is already on disk when it yields.
                assert any(
                    f"{event.step:08d}" in path.name for path in snapshots
                ), event
                snapshots_seen.append(len(snapshots))
        assert snapshots_seen  # the loop ran


class TestNwayCpSteps:
    def test_drained_equals_monolithic(self, tmp_path):
        tensor = make_tensor()
        checkpointed = NwayCpConfig(
            rank=3, max_iterations=3, n_initial_sets=3,
            checkpoint=CheckpointConfig(directory=tmp_path),
        )
        plain = NwayCpConfig(rank=3, max_iterations=3, n_initial_sets=3)
        stepped = drive(cp_nway_steps(tensor, checkpointed))
        direct = cp_nway(tensor, config=plain)
        assert stepped.error == direct.error
        for mine, theirs in zip(stepped.factors, direct.factors):
            assert np.array_equal(mine.words, theirs.words)

    def test_yields_one_event_per_restart(self):
        tensor = make_tensor()
        config = NwayCpConfig(rank=3, max_iterations=2, n_initial_sets=3)
        events = list(cp_nway_steps(tensor, config))
        assert len(events) == 3
        assert all(e.phase == "restart" for e in events)
        assert [e.step for e in events] == [0, 1, 2]
        assert events[-1].converged


class TestTuckerSteps:
    def test_drained_equals_monolithic(self):
        tensor = make_tensor()
        config = BooleanTuckerConfig(core_shape=(2, 2, 2), max_iterations=2)
        stepped = drive(boolean_tucker_steps(tensor, config))
        direct = boolean_tucker(tensor, config=config)
        assert stepped.error == direct.error
        assert np.array_equal(
            stepped.core.to_dense(), direct.core.to_dense()
        )
        for mine, theirs in zip(stepped.factors, direct.factors):
            assert np.array_equal(mine.words, theirs.words)

    def test_step_encodes_restart_and_iteration(self):
        tensor = make_tensor()
        config = BooleanTuckerConfig(
            core_shape=(2, 2, 2), max_iterations=3, n_initial_sets=2
        )
        events = list(boolean_tucker_steps(tensor, config))
        # Steps are restart * max_iterations + iteration: strictly
        # increasing across the whole sweep.
        steps = [e.step for e in events]
        assert steps == sorted(set(steps))
        assert steps[0] == 0
