"""Unit and integration tests for the Boolean Tucker extension."""

import numpy as np
import pytest

from repro.bitops import BitMatrix
from repro.tensor import SparseBoolTensor, planted_tensor
from repro.tucker import (
    BooleanTuckerConfig,
    BooleanTuckerResult,
    boolean_tucker,
    tucker_reconstruct,
)
from repro.tucker.decompose import _reconstruct_dense


def planted_tucker(shape, core_shape, factor_density, core_density, seed):
    rng = np.random.default_rng(seed)
    factors = tuple(
        (rng.random((dimension, rank)) < factor_density).astype(np.uint8)
        for dimension, rank in zip(shape, core_shape)
    )
    core = (rng.random(core_shape) < core_density).astype(np.uint8)
    dense = _reconstruct_dense(core, factors)
    return SparseBoolTensor.from_dense(dense), core, factors


class TestReconstruction:
    def test_reconstruct_matches_definition(self):
        rng = np.random.default_rng(0)
        core_dense = (rng.random((2, 3, 2)) < 0.5).astype(np.uint8)
        factors_dense = tuple(
            (rng.random((4, rank)) < 0.5).astype(np.uint8) for rank in (2, 3, 2)
        )
        expected = np.zeros((4, 4, 4), dtype=np.uint8)
        for i in range(4):
            for j in range(4):
                for k in range(4):
                    for p in range(2):
                        for q in range(3):
                            for r in range(2):
                                if (core_dense[p, q, r] and factors_dense[0][i, p]
                                        and factors_dense[1][j, q]
                                        and factors_dense[2][k, r]):
                                    expected[i, j, k] = 1
        np.testing.assert_array_equal(
            _reconstruct_dense(core_dense, factors_dense), expected
        )

    def test_tucker_reconstruct_public_api(self):
        core = SparseBoolTensor.from_nonzeros((1, 1, 1), [(0, 0, 0)])
        factors = tuple(
            BitMatrix.from_dense(np.ones((3, 1), dtype=np.uint8)) for _ in range(3)
        )
        reconstructed = tucker_reconstruct(core, factors)
        assert reconstructed.nnz == 27

    def test_empty_core_gives_empty_tensor(self):
        core = SparseBoolTensor.empty((2, 2, 2))
        factors = tuple(
            BitMatrix.from_dense(np.ones((3, 2), dtype=np.uint8)) for _ in range(3)
        )
        assert tucker_reconstruct(core, factors).nnz == 0

    def test_cp_special_case(self):
        # A hyper-diagonal core makes Tucker coincide with Boolean CP.
        from repro.tensor import random_factors, tensor_from_factors

        rng = np.random.default_rng(1)
        factors = random_factors((5, 6, 7), rank=3, density=0.4, rng=rng)
        cp_tensor = tensor_from_factors(factors)
        core = SparseBoolTensor.from_nonzeros(
            (3, 3, 3), [(r, r, r) for r in range(3)]
        )
        assert tucker_reconstruct(core, factors) == cp_tensor


class TestBooleanTucker:
    def test_error_matches_reconstruction(self):
        tensor, _, _ = planted_tucker((16, 16, 16), (2, 2, 2), 0.3, 0.5, seed=2)
        result = boolean_tucker(tensor, core_shape=(2, 2, 2))
        assert result.error == tensor.hamming_distance(result.reconstruct())

    def test_recovers_planted_structure(self):
        tensor, _, _ = planted_tucker((24, 24, 24), (3, 3, 3), 0.25, 0.4, seed=0)
        config = BooleanTuckerConfig(core_shape=(3, 3, 3), n_initial_sets=6)
        result = boolean_tucker(tensor, config=config)
        assert result.relative_error < 0.35

    def test_errors_monotone(self):
        tensor, _, _ = planted_tucker((16, 16, 16), (2, 3, 2), 0.3, 0.5, seed=3)
        result = boolean_tucker(tensor, core_shape=(2, 3, 2))
        errors = result.errors_per_iteration
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_non_cubic_core(self):
        tensor, _, _ = planted_tucker((12, 14, 10), (2, 3, 4), 0.3, 0.4, seed=4)
        result = boolean_tucker(tensor, core_shape=(2, 3, 4))
        assert result.core.shape == (2, 3, 4)
        assert result.factors[0].shape == (12, 2)
        assert result.factors[1].shape == (14, 3)
        assert result.factors[2].shape == (10, 4)

    def test_empty_tensor(self):
        result = boolean_tucker(SparseBoolTensor.empty((6, 6, 6)), core_shape=(2, 2, 2))
        assert result.error == 0
        assert result.core.nnz == 0

    def test_more_restarts_never_worse(self):
        tensor, _, _ = planted_tucker((16, 16, 16), (3, 3, 3), 0.3, 0.4, seed=5)
        single = boolean_tucker(
            tensor, config=BooleanTuckerConfig(core_shape=(3, 3, 3), n_initial_sets=1)
        )
        multi = boolean_tucker(
            tensor, config=BooleanTuckerConfig(core_shape=(3, 3, 3), n_initial_sets=4)
        )
        assert multi.error <= single.error

    def test_deterministic_given_seed(self):
        tensor, _, _ = planted_tucker((12, 12, 12), (2, 2, 2), 0.3, 0.5, seed=6)
        first = boolean_tucker(tensor, core_shape=(2, 2, 2))
        second = boolean_tucker(tensor, core_shape=(2, 2, 2))
        assert first.error == second.error
        assert first.factors == second.factors

    def test_tucker_beats_cp_on_dense_core_structure(self):
        # A full 2x2x2 core needs rank-8 CP but only 2 columns per Tucker
        # factor; at matched factor budget Tucker should fit better.
        from repro import dbtf

        tensor, _, _ = planted_tucker((20, 20, 20), (2, 2, 2), 0.3, 1.0, seed=7)
        tucker_result = boolean_tucker(
            tensor, config=BooleanTuckerConfig(core_shape=(2, 2, 2), n_initial_sets=4)
        )
        cp_result = dbtf(tensor, rank=2, seed=0, n_partitions=4, n_initial_sets=4)
        assert tucker_result.error <= cp_result.error

    def test_non_three_way_rejected(self):
        with pytest.raises(ValueError):
            boolean_tucker(SparseBoolTensor.empty((2, 2)), core_shape=(1, 1, 1))

    def test_core_shape_or_config_required(self):
        with pytest.raises(ValueError):
            boolean_tucker(SparseBoolTensor.empty((2, 2, 2)))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"core_shape": (0, 1, 1)},
            {"core_shape": (1, 1)},
            {"core_shape": (1, 1, 1), "max_iterations": 0},
            {"core_shape": (1, 1, 1), "tolerance": -1.0},
            {"core_shape": (1, 1, 1), "n_initial_sets": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            BooleanTuckerConfig(**kwargs)

    def test_result_relative_error_empty_input(self):
        result = BooleanTuckerResult(
            core=SparseBoolTensor.empty((1, 1, 1)),
            factors=tuple(BitMatrix.zeros(2, 1) for _ in range(3)),
            error=3,
            input_nnz=0,
            errors_per_iteration=(3,),
            converged=True,
        )
        assert result.relative_error == 3.0
