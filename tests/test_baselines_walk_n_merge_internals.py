"""Unit tests for Walk'n'Merge internals (shrink phase, merge loop)."""

import numpy as np
import pytest

from repro.baselines.walk_n_merge import (
    DenseBlock,
    WalkNMergeConfig,
    _count_inside,
    _merge_blocks,
    _shrink_to_density,
)
from repro.tensor import SparseBoolTensor, outer_product


def block_coords(i_range, j_range, k_range, shape):
    a = np.zeros(shape[0], dtype=np.uint8)
    b = np.zeros(shape[1], dtype=np.uint8)
    c = np.zeros(shape[2], dtype=np.uint8)
    a[list(i_range)] = 1
    b[list(j_range)] = 1
    c[list(k_range)] = 1
    return outer_product(a, b, c).coords


class TestCountInside:
    def test_counts_block_members(self):
        coords = block_coords(range(3), range(3), range(3), (6, 6, 6))
        sets = [np.arange(2), np.arange(3), np.arange(3)]
        inside = _count_inside(coords, sets)
        assert inside.sum() == 2 * 3 * 3

    def test_empty_sets(self):
        coords = block_coords(range(2), range(2), range(2), (4, 4, 4))
        inside = _count_inside(coords, [np.array([], dtype=int)] * 3)
        assert inside.sum() == 0


class TestShrinkToDensity:
    def test_already_dense_block_untouched(self):
        coords = block_coords(range(4), range(4), range(4), (8, 8, 8))
        sets = [np.arange(4), np.arange(4), np.arange(4)]
        config = WalkNMergeConfig(density_threshold=0.99, min_block_dim=4)
        block = _shrink_to_density(coords, sets, config)
        assert block is not None
        assert block.density == 1.0
        assert block.dims == (4, 4, 4)

    def test_peels_weak_indices(self):
        # A 4x4x4 solid block plus a stray index in mode 0 with no support.
        coords = block_coords(range(4), range(4), range(4), (8, 8, 8))
        sets = [np.arange(5), np.arange(4), np.arange(4)]  # index 4 is empty
        config = WalkNMergeConfig(density_threshold=0.99, min_block_dim=4)
        block = _shrink_to_density(coords, sets, config)
        assert block is not None
        assert block.dims == (4, 4, 4)
        assert 4 not in block.mode_indices[0]

    def test_rejects_when_below_min_size(self):
        coords = block_coords(range(2), range(2), range(2), (8, 8, 8))
        sets = [np.arange(2), np.arange(2), np.arange(2)]
        config = WalkNMergeConfig(density_threshold=0.99, min_block_dim=4)
        assert _shrink_to_density(coords, sets, config) is None


class TestMergeBlocks:
    def test_merges_overlapping_halves(self):
        tensor_coords = block_coords(range(6), range(6), range(6), (10, 10, 10))
        left = DenseBlock(
            mode_indices=(tuple(range(6)), tuple(range(6)), tuple(range(4))),
            nnz_inside=6 * 6 * 4,
        )
        right = DenseBlock(
            mode_indices=(tuple(range(6)), tuple(range(6)), tuple(range(2, 6))),
            nnz_inside=6 * 6 * 4,
        )
        merged = _merge_blocks(tensor_coords, [left, right], threshold=0.99)
        assert len(merged) == 1
        assert merged[0].dims == (6, 6, 6)

    def test_keeps_incompatible_blocks_apart(self):
        first = block_coords(range(3), range(3), range(3), (12, 12, 12))
        second = block_coords(range(8, 12), range(8, 12), range(8, 12), (12, 12, 12))
        coords = np.concatenate([first, second])
        blocks = [
            DenseBlock(mode_indices=(tuple(range(3)),) * 3, nnz_inside=27),
            DenseBlock(mode_indices=(tuple(range(8, 12)),) * 3, nnz_inside=64),
        ]
        merged = _merge_blocks(coords, blocks, threshold=0.9)
        assert len(merged) == 2

    def test_empty_input(self):
        assert _merge_blocks(np.zeros((0, 3), dtype=np.int64), [], 0.9) == []
