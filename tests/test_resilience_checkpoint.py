"""Checkpoint file I/O: atomicity, integrity, fingerprints, retention."""

import os

import numpy as np
import pytest

from repro.bitops import BitMatrix
from repro.observability import MetricsRegistry
from repro.resilience import (
    CheckpointConfig,
    CheckpointCorruptError,
    CheckpointManager,
    CheckpointMismatchError,
    config_fingerprint,
    factors_from_state,
    factors_state,
)
from repro.resilience.checkpoint import FORMAT_VERSION, MAGIC, _HEADER


def make_manager(tmp_path, fingerprint="fp", **config):
    return CheckpointManager(
        CheckpointConfig(directory=str(tmp_path), **config), fingerprint
    )


class TestCheckpointConfig:
    def test_defaults(self, tmp_path):
        config = CheckpointConfig(directory=str(tmp_path))
        assert config.every == 1
        assert config.keep_last == 2
        assert config.resume is False

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"directory": ""},
            {"directory": "d", "every": 0},
            {"directory": "d", "every": -1},
            {"directory": "d", "keep_last": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CheckpointConfig(**kwargs)


class TestFingerprint:
    def test_stable_and_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_sensitive_to_values(self):
        assert config_fingerprint({"rank": 4}) != config_fingerprint({"rank": 5})

    def test_non_json_values_stringified(self):
        assert config_fingerprint({"shape": (3, 4)})  # no TypeError


class TestFactorsState:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        factors = tuple(
            BitMatrix.random(rows, 5, 0.4, rng) for rows in (17, 9, 70)
        )
        rebuilt = factors_from_state(factors_state(factors))
        for original, restored in zip(factors, rebuilt):
            assert restored.n_rows == original.n_rows
            assert restored.n_cols == original.n_cols
            assert (restored.words == original.words).all()

    def test_rebuilt_factors_are_writable(self):
        factors = factors_from_state(factors_state((BitMatrix.zeros(4, 4),)))
        factors[0].set(0, 0, 1)  # frombuffer memory must have been copied
        assert factors[0].get(0, 0) == 1


class TestSaveLoad:
    def test_round_trip(self, tmp_path):
        manager = make_manager(tmp_path)
        state = {"errors": [5, 3], "note": "x"}
        path = manager.save(3, state)
        assert os.path.basename(path) == "checkpoint-00000003.ckpt"
        step, loaded = manager.load(path)
        assert step == 3
        assert loaded == state

    def test_no_temp_files_left(self, tmp_path):
        manager = make_manager(tmp_path)
        manager.save(0, {"a": 1})
        assert all(
            name.endswith(".ckpt") for name in os.listdir(str(tmp_path))
        )

    def test_load_latest_empty_directory(self, tmp_path):
        assert make_manager(tmp_path).load_latest() is None

    def test_load_latest_picks_newest(self, tmp_path):
        manager = make_manager(tmp_path, keep_last=10)
        for step in range(3):
            manager.save(step, {"step_payload": step})
        step, state = manager.load_latest()
        assert step == 2
        assert state == {"step_payload": 2}

    def test_should_save_cadence(self, tmp_path):
        manager = make_manager(tmp_path, every=3)
        assert [s for s in range(10) if manager.should_save(s)] == [0, 3, 6, 9]

    def test_negative_step_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            make_manager(tmp_path).path_for(-1)


class TestCorruption:
    def test_truncated_file_detected(self, tmp_path):
        manager = make_manager(tmp_path)
        path = manager.save(0, {"a": 1})
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) - 4])
        with pytest.raises(CheckpointCorruptError, match="integrity"):
            manager.load(path)

    def test_flipped_byte_detected(self, tmp_path):
        manager = make_manager(tmp_path)
        path = manager.save(0, {"a": 1})
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
        data[-1] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises(CheckpointCorruptError):
            manager.load(path)

    def test_bad_magic_detected(self, tmp_path):
        manager = make_manager(tmp_path)
        path = manager.path_for(0)
        with open(path, "wb") as handle:
            handle.write(b"NOTACKPT" + b"\0" * 64)
        with pytest.raises(CheckpointCorruptError, match="not a DBTF"):
            manager.load(path)

    def test_future_version_refused(self, tmp_path):
        manager = make_manager(tmp_path)
        path = manager.path_for(0)
        with open(path, "wb") as handle:
            handle.write(_HEADER.pack(MAGIC, FORMAT_VERSION + 1, b"\0" * 32))
        with pytest.raises(CheckpointCorruptError, match="version"):
            manager.load(path)

    def test_load_latest_falls_back_over_corruption(self, tmp_path):
        manager = make_manager(tmp_path, keep_last=10)
        manager.save(0, {"ok": 0})
        manager.save(1, {"ok": 1})
        newest = manager.save(2, {"ok": 2})
        with open(newest, "wb") as handle:
            handle.write(b"torn write")
        with pytest.warns(RuntimeWarning, match="skipping corrupt"):
            step, state = manager.load_latest()
        assert (step, state) == (1, {"ok": 1})

    def test_load_latest_all_corrupt_raises(self, tmp_path):
        manager = make_manager(tmp_path, keep_last=10)
        for step in range(2):
            path = manager.save(step, {"s": step})
            with open(path, "wb") as handle:
                handle.write(b"garbage")
        with pytest.warns(RuntimeWarning):
            with pytest.raises(CheckpointCorruptError, match="all 2"):
                manager.load_latest()


class TestFingerprintMismatch:
    def test_mismatch_refuses(self, tmp_path):
        make_manager(tmp_path, fingerprint="run-a").save(0, {"a": 1})
        other = make_manager(tmp_path, fingerprint="run-b")
        with pytest.raises(CheckpointMismatchError, match="different config"):
            other.load_latest()

    def test_mismatch_does_not_fall_back(self, tmp_path):
        # Older snapshots share the directory's fingerprint; falling back
        # would resume the wrong run, so the mismatch must propagate even
        # with intact older files present.
        writer = make_manager(tmp_path, fingerprint="run-a", keep_last=10)
        writer.save(0, {"a": 0})
        writer.save(1, {"a": 1})
        with pytest.raises(CheckpointMismatchError):
            make_manager(tmp_path, fingerprint="run-b").load_latest()


class TestRetention:
    def test_keep_last_prunes_oldest(self, tmp_path):
        manager = make_manager(tmp_path, keep_last=2)
        for step in range(5):
            manager.save(step, {"s": step})
        assert [step for step, _ in manager.checkpoints()] == [3, 4]

    def test_metrics_counters(self, tmp_path):
        metrics = MetricsRegistry()
        manager = CheckpointManager(
            CheckpointConfig(directory=str(tmp_path), keep_last=2),
            "fp",
            metrics=metrics,
        )
        for step in range(4):
            manager.save(step, {"s": step})
        manager.load_latest()
        counters = {
            name: sum(values.values())
            for name, values in metrics.counters().items()
        }
        assert counters["checkpoints_written_total"] == 4
        assert counters["checkpoints_pruned_total"] == 2
        assert counters["checkpoint_resumes_total"] == 1
        assert counters["checkpoint_bytes_total"] > 0


class TestSiblingJobIsolation:
    """Two jobs sharing one checkpoint root must never cross-contaminate.

    The service layer puts every job in ``<root>/<job_id>/``; these tests
    pin that sibling directories are fully independent — retention,
    fingerprint refusal, and corrupt-file fallback all stop at the
    directory boundary.
    """

    def managers(self, tmp_path, **config):
        job_a = make_manager(tmp_path / "job-a", fingerprint="fp-a", **config)
        job_b = make_manager(tmp_path / "job-b", fingerprint="fp-b", **config)
        return job_a, job_b

    def test_retention_prunes_per_job(self, tmp_path):
        job_a, job_b = self.managers(tmp_path, keep_last=2)
        for step in range(5):
            job_a.save(step, {"job": "a", "s": step})
        job_b.save(0, {"job": "b", "s": 0})
        # Pruning in a's directory left b's lone (older-numbered equal)
        # snapshot alone, and vice versa.
        assert [step for step, _ in job_a.checkpoints()] == [3, 4]
        assert [step for step, _ in job_b.checkpoints()] == [0]
        for step in range(5):
            job_b.save(step + 1, {"job": "b", "s": step + 1})
        assert [step for step, _ in job_a.checkpoints()] == [3, 4]

    def test_fingerprint_refusal_is_per_job(self, tmp_path):
        job_a, job_b = self.managers(tmp_path)
        job_a.save(1, {"job": "a"})
        job_b.save(1, {"job": "b"})
        # Job a's config changed: its resume refuses.  Job b's does not.
        stale_a = make_manager(tmp_path / "job-a", fingerprint="fp-a-v2")
        with pytest.raises(CheckpointMismatchError):
            stale_a.load_latest()
        step, state = job_b.load_latest()
        assert (step, state) == (1, {"job": "b"})

    def test_corrupt_fallback_stays_in_job_directory(self, tmp_path):
        job_a, job_b = self.managers(tmp_path, keep_last=3)
        job_a.save(1, {"job": "a", "s": 1})
        job_a.save(2, {"job": "a", "s": 2})
        job_b.save(3, {"job": "b", "s": 3})
        # Corrupt a's newest snapshot: fallback must land on a's step 1,
        # never on b's (newer) step 3.
        newest = job_a.path_for(2)
        with open(newest, "r+b") as handle:
            data = bytearray(handle.read())
            data[-1] ^= 0xFF
            handle.seek(0)
            handle.write(bytes(data))
        with pytest.warns(RuntimeWarning, match="integrity"):
            step, state = job_a.load_latest()
        assert (step, state) == (1, {"job": "a", "s": 1})
        step, state = job_b.load_latest()
        assert (step, state) == (3, {"job": "b", "s": 3})

    def test_service_layout_uses_sibling_dirs(self, tmp_path):
        import numpy as np

        from repro.service import FactorizationService, JobSpec, ServiceConfig
        from repro.tensor import planted_tensor

        tensor, _ = planted_tensor(
            (8, 8, 8), rank=2, factor_density=0.3,
            rng=np.random.default_rng(0),
        )
        root = tmp_path / "root"
        config = ServiceConfig(checkpoint_root=root, keep_last=1)
        with FactorizationService(config) as service:
            one = service.submit(
                JobSpec(tenant="a", tensor=tensor, rank=2, max_iterations=2)
            ).job_id
            two = service.submit(
                JobSpec(tenant="b", tensor=tensor, rank=2, max_iterations=2,
                        seed=5)
            ).job_id
            service.drain()
        for job_id in (one, two):
            snapshots = list((root / job_id).glob("checkpoint-*.ckpt"))
            assert len(snapshots) == 1  # keep_last honored per job
