"""Unit tests for the LPT scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distengine import assign_tasks, makespan


class TestMakespan:
    def test_empty(self):
        assert makespan([], 4) == 0.0

    def test_single_slot_is_sum(self):
        assert makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_enough_slots_is_max(self):
        assert makespan([1.0, 2.0, 3.0], 3) == pytest.approx(3.0)
        assert makespan([1.0, 2.0, 3.0], 10) == pytest.approx(3.0)

    def test_two_slots_balanced(self):
        # LPT: 3 -> slot A, 2 -> slot B, 1 -> slot B => loads 3 and 3.
        assert makespan([3.0, 2.0, 1.0], 2) == pytest.approx(3.0)

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            makespan([1.0], 0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            makespan([-1.0], 2)

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30),
        st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_property(self, durations, n_slots):
        result = makespan(durations, n_slots)
        total = sum(durations)
        longest = max(durations)
        # Lower bounds: no schedule beats max(longest task, perfect split).
        assert result >= longest - 1e-9
        assert result >= total / n_slots - 1e-9
        # Upper bound: never worse than serial execution.
        assert result <= total + 1e-9

    @given(st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_slots(self, durations):
        # More slots can never make the stage slower.
        previous = makespan(durations, 1)
        for n_slots in (2, 4, 8):
            current = makespan(durations, n_slots)
            assert current <= previous + 1e-9
            previous = current


class TestAssignTasks:
    def test_all_tasks_assigned_once(self):
        durations = [5.0, 3.0, 2.0, 2.0, 1.0]
        assignments = assign_tasks(durations, 2)
        flat = sorted(index for slot in assignments for index in slot)
        assert flat == list(range(5))

    def test_assignment_matches_makespan(self):
        durations = [5.0, 3.0, 2.0, 2.0, 1.0]
        assignments = assign_tasks(durations, 2)
        loads = [sum(durations[i] for i in slot) for slot in assignments]
        assert max(loads) == pytest.approx(makespan(durations, 2))

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            assign_tasks([1.0], 0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            assign_tasks([-0.5], 1)
