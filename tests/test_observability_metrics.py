"""Unit tests for the labelled-metrics registry."""

import pytest

from repro.observability import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.snapshot() == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.snapshot() == 3.0

    def test_histogram_snapshot(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 55.5
        assert snap["min"] == 0.5
        assert snap["max"] == 50.0
        assert snap["buckets"] == {1.0: 1, 10.0: 1}
        assert snap["overflow"] == 1

    def test_histogram_order_independent(self):
        values = [0.003, 0.2, 7.0, 0.0001, 0.2]
        forward, backward = Histogram(), Histogram()
        for value in values:
            forward.observe(value)
        for value in reversed(values):
            backward.observe(value)
        assert forward.snapshot() == backward.snapshot()

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestRegistry:
    def test_get_or_create_same_instrument(self):
        registry = MetricsRegistry()
        registry.counter("x", stage="a").inc()
        registry.counter("x", stage="a").inc()
        registry.counter("x", stage="b").inc(5)
        assert registry.value("x", stage="a") == 2.0
        assert registry.value("x", stage="b") == 5.0

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.counter("x", b=1, a=2).inc()
        assert registry.value("x", a=2, b=1) == 1.0

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")

    def test_value_defaults_to_zero(self):
        assert MetricsRegistry().value("never_reported") == 0.0

    def test_merge_deltas(self):
        registry = MetricsRegistry()
        registry.counter("ops", op="or").inc(1)
        registry.merge_deltas([
            ("ops", (("op", "or"),), "counter", 2.0),
            ("temp", (), "gauge", 7.0),
            ("lat", (), "histogram", 0.25),
        ])
        assert registry.value("ops", op="or") == 3.0
        assert registry.value("temp") == 7.0
        assert registry.histogram("lat").count == 1

    def test_merge_deltas_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown metric kind"):
            MetricsRegistry().merge_deltas([("x", (), "summary", 1.0)])

    def test_merge_order_invariant_for_counters(self):
        deltas = [
            ("ops", (("op", "or"),), "counter", 1.0),
            ("ops", (("op", "xor"),), "counter", 2.0),
            ("ops", (("op", "or"),), "counter", 3.0),
        ]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        forward.merge_deltas(deltas)
        backward.merge_deltas(reversed(deltas))
        assert forward.collect() == backward.collect()

    def test_collect_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", z=1).inc()
        registry.counter("a", y=1).inc()
        names = [(name, labels) for name, labels, _, _ in registry.collect()]
        assert names == sorted(names)

    def test_counters_grouped_by_name(self):
        registry = MetricsRegistry()
        registry.counter("x", stage="a").inc(1)
        registry.counter("x", stage="b").inc(2)
        registry.gauge("g").set(9)
        grouped = registry.counters()
        assert grouped == {
            "x": {(("stage", "a"),): 1.0, (("stage", "b"),): 2.0}
        }

    def test_to_text(self):
        registry = MetricsRegistry()
        registry.counter("tasks_total", stage="map").inc(4)
        registry.gauge("ratio").set(0.5)
        registry.histogram("lat").observe(0.2)
        text = registry.to_text()
        assert 'tasks_total{stage="map"} 4' in text
        assert "ratio 0.500000" in text
        assert "lat count=1" in text

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0
        # The type table is cleared too: a different kind is now allowed.
        registry.gauge("x").set(1)
