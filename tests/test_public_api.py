"""Public-API surface tests: exports exist, __all__ is honest."""

import importlib

import pytest

MODULES = [
    "repro",
    "repro.bitops",
    "repro.tensor",
    "repro.distengine",
    "repro.core",
    "repro.baselines",
    "repro.metrics",
    "repro.datasets",
    "repro.experiments",
    "repro.tucker",
    "repro.nway",
    "repro.resilience",
]


@pytest.mark.parametrize("module_name", MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    """Every public callable/class carries a docstring."""
    module = importlib.import_module(module_name)
    for name in module.__all__:
        item = getattr(module, name)
        if callable(item):
            assert item.__doc__, f"{module_name}.{name} has no docstring"


def test_top_level_convenience_exports():
    import repro

    assert callable(repro.dbtf)
    assert callable(repro.boolean_tucker)
    assert callable(repro.planted_tensor)
    assert repro.__version__


def test_cli_module_importable():
    from repro.cli import build_parser, main

    assert callable(main)
    assert build_parser().prog == "repro"
