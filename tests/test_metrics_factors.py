"""Unit tests for factor-recovery metrics."""

import numpy as np
import pytest

from repro.bitops import BitMatrix
from repro.metrics import component_support, factor_match_score, jaccard
from repro.tensor import random_factors


def factors_from_columns(columns_per_mode):
    """Build factors from explicit per-mode column index sets."""
    factors = []
    for mode_columns, size in columns_per_mode:
        dense = np.zeros((size, len(mode_columns)), dtype=np.uint8)
        for r, indices in enumerate(mode_columns):
            dense[list(indices), r] = 1
        factors.append(BitMatrix.from_dense(dense))
    return tuple(factors)


class TestJaccard:
    def test_identical_blocks(self):
        left = (np.array([0, 1]), np.array([2]), np.array([3, 4]))
        assert jaccard(left, left) == pytest.approx(1.0)

    def test_disjoint_blocks(self):
        left = (np.array([0]), np.array([0]), np.array([0]))
        right = (np.array([1]), np.array([1]), np.array([1]))
        assert jaccard(left, right) == 0.0

    def test_partial_overlap(self):
        left = (np.array([0, 1]), np.array([0]), np.array([0]))
        right = (np.array([0]), np.array([0]), np.array([0]))
        assert jaccard(left, right) == pytest.approx(0.5)

    def test_empty_modes_ignored(self):
        left = (np.array([], dtype=int), np.array([0]), np.array([0]))
        right = (np.array([], dtype=int), np.array([0]), np.array([0]))
        assert jaccard(left, right) == pytest.approx(1.0)


class TestComponentSupport:
    def test_extracts_column_indices(self):
        rng = np.random.default_rng(0)
        factors = random_factors((5, 6, 7), 3, 0.5, rng)
        support = component_support(factors, 1)
        for factor, indices in zip(factors, support):
            np.testing.assert_array_equal(np.flatnonzero(factor.column(1)), indices)


class TestFactorMatchScore:
    def test_perfect_match(self):
        rng = np.random.default_rng(1)
        factors = random_factors((6, 6, 6), 3, 0.5, rng)
        assert factor_match_score(factors, factors) == pytest.approx(1.0)

    def test_permutation_invariant(self):
        rng = np.random.default_rng(2)
        factors = random_factors((6, 6, 6), 3, 0.5, rng)
        permuted = tuple(
            BitMatrix.from_dense(factor.to_dense()[:, [2, 0, 1]]) for factor in factors
        )
        assert factor_match_score(permuted, factors) == pytest.approx(1.0)

    def test_no_overlap_scores_zero(self):
        estimated = factors_from_columns(
            [([{0}], 4), ([{0}], 4), ([{0}], 4)]
        )
        planted = factors_from_columns(
            [([{3}], 4), ([{3}], 4), ([{3}], 4)]
        )
        assert factor_match_score(estimated, planted) == 0.0

    def test_zero_rank_planted(self):
        estimated = factors_from_columns([([{0}], 3), ([{0}], 3), ([{0}], 3)])
        planted = (BitMatrix.zeros(3, 0), BitMatrix.zeros(3, 0), BitMatrix.zeros(3, 0))
        assert factor_match_score(estimated, planted) == 1.0

    def test_extra_estimated_components_do_not_hurt(self):
        planted = factors_from_columns([([{0, 1}], 4), ([{2}], 4), ([{3}], 4)])
        estimated = factors_from_columns(
            [([{0, 1}, {2}], 4), ([{2}, {0}], 4), ([{3}, {1}], 4)]
        )
        assert factor_match_score(estimated, planted) == pytest.approx(1.0)
