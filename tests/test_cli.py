"""Integration tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.tensor import load_matrix, load_tensor, random_tensor, save_tensor


@pytest.fixture
def tensor_file(tmp_path):
    rng = np.random.default_rng(0)
    tensor = random_tensor((12, 12, 12), density=0.1, rng=rng)
    path = tmp_path / "input.tns"
    save_tensor(tensor, path)
    return path, tensor


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x.tns"])
        assert args.kind == "random"
        assert args.shape == [64, 64, 64]


class TestGenerate:
    def test_random(self, tmp_path, capsys):
        out = tmp_path / "random.tns"
        code = main(
            ["generate", "--kind", "random", "--shape", "8", "8", "8",
             "--density", "0.1", "--out", str(out)]
        )
        assert code == 0
        tensor = load_tensor(out)
        assert tensor.shape == (8, 8, 8)
        assert tensor.nnz == round(0.1 * 512)
        assert "wrote" in capsys.readouterr().out

    def test_planted(self, tmp_path):
        out = tmp_path / "planted.tns"
        main(["generate", "--kind", "planted", "--shape", "10", "10", "10",
              "--rank", "2", "--factor-density", "0.4", "--out", str(out)])
        assert load_tensor(out).nnz > 0

    def test_dataset(self, tmp_path):
        out = tmp_path / "fb.tns"
        main(["generate", "--kind", "dataset", "--dataset", "facebook",
              "--out", str(out)])
        assert load_tensor(out).shape == (96, 96, 16)


class TestInfo:
    def test_prints_stats(self, tensor_file, capsys):
        path, tensor = tensor_file
        assert main(["info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "12x12x12" in out
        assert str(tensor.nnz) in out


class TestFactorize:
    def test_dbtf(self, tensor_file, tmp_path, capsys):
        path, tensor = tensor_file
        factors_dir = tmp_path / "factors"
        code = main(
            ["factorize", str(path), "--method", "dbtf", "--rank", "3",
             "--max-iterations", "2", "--partitions", "4",
             "--factors-out", str(factors_dir)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DBTF" in out
        assert "relative error" in out
        a_matrix = load_matrix(factors_dir / "A.mtx")
        assert a_matrix.shape == (12, 3)

    def test_bcp_als(self, tensor_file, capsys):
        path, _ = tensor_file
        assert main(["factorize", str(path), "--method", "bcp-als",
                     "--rank", "2", "--max-iterations", "2"]) == 0
        assert "BCP_ALS" in capsys.readouterr().out

    def test_walk_n_merge(self, tensor_file, capsys):
        path, _ = tensor_file
        assert main(["factorize", str(path), "--method", "walk-n-merge",
                     "--rank", "2", "--density-threshold", "0.5"]) == 0
        assert "Walk'n'Merge" in capsys.readouterr().out

    def test_tucker(self, tensor_file, capsys):
        path, _ = tensor_file
        assert main(["factorize", str(path), "--method", "tucker",
                     "--core-shape", "2", "2", "2",
                     "--max-iterations", "2"]) == 0
        assert "Tucker" in capsys.readouterr().out

    def test_nway_cp(self, tensor_file, capsys):
        path, _ = tensor_file
        assert main(["factorize", str(path), "--method", "nway-cp",
                     "--rank", "2", "--max-iterations", "2"]) == 0
        assert "N-way" in capsys.readouterr().out

    def test_nway_cp_four_way_factor_export(self, tmp_path, capsys):
        import numpy as np

        from repro.tensor import SparseBoolTensor, save_tensor

        rng = np.random.default_rng(3)
        dense = (rng.random((5, 5, 5, 5)) < 0.1).astype(np.uint8)
        path = tmp_path / "four.tns"
        save_tensor(SparseBoolTensor.from_dense(dense), path)
        out = tmp_path / "factors4"
        assert main(["factorize", str(path), "--method", "nway-cp",
                     "--rank", "2", "--max-iterations", "2",
                     "--factors-out", str(out)]) == 0
        assert (out / "factor_0.mtx").exists()
        assert (out / "factor_3.mtx").exists()


class TestFactorizeCheckpoint:
    def test_dbtf_writes_checkpoints_and_resumes(
        self, tensor_file, tmp_path, capsys
    ):
        path, _ = tensor_file
        directory = tmp_path / "ckpt"
        base = ["factorize", str(path), "--method", "dbtf", "--rank", "2",
                "--max-iterations", "2", "--partitions", "4",
                "--checkpoint-dir", str(directory)]
        assert main(base) == 0
        snapshots = sorted(p.name for p in directory.glob("*.ckpt"))
        assert snapshots
        assert main(base + ["--resume"]) == 0
        assert "DBTF" in capsys.readouterr().out

    def test_checkpoint_every_cadence(self, tensor_file, tmp_path):
        path, _ = tensor_file
        directory = tmp_path / "ckpt"
        assert main(
            ["factorize", str(path), "--method", "tucker",
             "--core-shape", "2", "2", "2", "--max-iterations", "2",
             "--checkpoint-dir", str(directory),
             "--checkpoint-every", "2"]
        ) == 0
        assert list(directory.glob("*.ckpt"))

    def test_resume_requires_checkpoint_dir(self, tensor_file, capsys):
        path, _ = tensor_file
        assert main(["factorize", str(path), "--method", "dbtf",
                     "--rank", "2", "--resume"]) == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_checkpoint_unsupported_method(self, tensor_file, tmp_path, capsys):
        path, _ = tensor_file
        assert main(["factorize", str(path), "--method", "bcp-als",
                     "--rank", "2",
                     "--checkpoint-dir", str(tmp_path / "c")]) == 2
        assert "only supported" in capsys.readouterr().err


class TestExperiment:
    def test_table3(self, capsys):
        assert main(["experiment", "table3"]) == 0
        assert "facebook" in capsys.readouterr().out

    def test_fig7(self, capsys):
        assert main(["experiment", "fig7"]) == 0
        assert "speed-up" in capsys.readouterr().out

    def test_fig7_with_chart(self, capsys):
        assert main(["experiment", "fig7", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "█" in out

    def test_lemma_traffic(self, capsys):
        assert main(["experiment", "lemma-traffic-partitions"]) == 0
        assert "collect bytes" in capsys.readouterr().out


class TestMatrixIO:
    def test_round_trip(self, tmp_path):
        from repro.bitops import BitMatrix
        from repro.tensor import save_matrix

        rng = np.random.default_rng(1)
        matrix = BitMatrix.random(9, 4, 0.4, rng)
        path = tmp_path / "m.mtx"
        save_matrix(matrix, path)
        assert load_matrix(path) == matrix

    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("0 0\n")
        with pytest.raises(ValueError):
            load_matrix(path)

    def test_bad_line(self, tmp_path):
        path = tmp_path / "bad2.mtx"
        path.write_text("# matrix 2 2\n0 0 0\n")
        with pytest.raises(ValueError):
            load_matrix(path)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "ok.mtx"
        path.write_text("# matrix 2 2\n# comment\n\n1 1\n")
        matrix = load_matrix(path)
        assert matrix.get(1, 1) == 1
        assert matrix.count_nonzeros() == 1
