"""Backend-equivalence tests for the stage-executor seam.

The engine's contract is that serial, thread, and process backends are
observationally identical — bit-identical factors, error traces, stage
reports, and ledger byte totals — because everything the cost model
consumes is measured inside the task, not scheduled by the driver.  These
tests pin that contract, plus the process-independence of shuffle
placement (``stable_hash``).
"""

import operator
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import DbtfConfig, dbtf
from repro.distengine import (
    BACKEND_NAMES,
    ClusterConfig,
    FaultInjector,
    ProcessBackend,
    SerialBackend,
    SimulatedRuntime,
    TaskFailedError,
    ThreadBackend,
    make_backend,
    stable_hash,
)
from repro.distengine.backends import execute_task
from repro.tensor import planted_tensor

BACKENDS = list(BACKEND_NAMES)


def _square_partition(index, items):
    """Module-level task so the process backend can pickle it."""
    return [item * item for item in items]


def _runtime(backend, **cluster_overrides):
    cluster = ClusterConfig(
        n_machines=2, cores_per_machine=2, backend=backend, n_workers=2,
        **cluster_overrides,
    )
    return SimulatedRuntime(cluster)


def _dbtf_fingerprint(tensor, backend, fault_injector=None, **overrides):
    """Everything that must be identical across backends, as one tuple."""
    runtime = SimulatedRuntime(
        ClusterConfig(n_machines=2, cores_per_machine=2, backend=backend,
                      n_workers=2),
        fault_injector=fault_injector,
    )
    try:
        result = dbtf(tensor, runtime=runtime, **overrides)
    finally:
        runtime.close()
    return (
        tuple(factor.words.tobytes() for factor in result.factors),
        result.errors_per_iteration,
        result.error,
        result.report.n_stages,
        tuple(stage.name for stage in runtime.stages),
        tuple(stage.n_tasks for stage in runtime.stages),
        result.report.shuffle_bytes,
        result.report.broadcast_bytes,
        result.report.collect_bytes,
        tuple(sorted(runtime.ledger.by_stage.items())),
        dict(runtime.task_failures),
    )


class TestBackendUnits:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_ordered_by_partition(self, backend):
        with make_backend(backend, n_workers=2) as executor:
            results, durations, failures = executor.run_stage(
                "square", _square_partition,
                [(i, [i, i + 1]) for i in range(6)],
            )
        assert results == [[i * i, (i + 1) * (i + 1)] for i in range(6)]
        assert len(durations) == 6 and all(d >= 0 for d in durations)
        assert failures == [0] * 6

    def test_make_backend_factory(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread"), ThreadBackend)
        assert isinstance(make_backend("process"), ProcessBackend)
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_make_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("spark")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_invalid_worker_count(self, backend):
        with pytest.raises(ValueError):
            make_backend(backend, n_workers=0)

    def test_pool_reused_across_stages(self):
        with ThreadBackend(n_workers=2) as backend:
            backend.run_stage("a", _square_partition, [(0, [1])])
            executor = backend._executor
            backend.run_stage("b", _square_partition, [(0, [2])])
            assert backend._executor is executor
        assert backend._executor is None  # close() tore the pool down

    def test_execute_task_counts_failures(self):
        injector = FaultInjector(failure_rate=0.9, max_retries=50, seed=0)
        outcome = execute_task(_square_partition, "s", 0, [2], injector)
        assert outcome.result == [4]
        assert outcome.failures >= 1
        assert outcome.duration >= 0


class TestConfigPlumbing:
    def test_cluster_rejects_bad_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ClusterConfig(backend="mpi")
        with pytest.raises(ValueError, match="n_workers"):
            ClusterConfig(n_workers=0)

    def test_with_backend_preserves_cost_model(self):
        cluster = ClusterConfig(n_machines=7).with_backend("thread", 3)
        assert cluster.backend == "thread"
        assert cluster.n_workers == 3
        assert cluster.n_machines == 7

    def test_dbtf_config_overrides_cluster(self):
        config = DbtfConfig(rank=2, backend="process", n_workers=2)
        resolved = config.resolved_cluster()
        assert resolved.backend == "process"
        assert resolved.n_workers == 2
        # Cost-model parameters are untouched by the override.
        assert resolved.n_machines == config.cluster.n_machines

    def test_dbtf_config_defers_to_cluster(self):
        cluster = ClusterConfig(backend="thread")
        config = DbtfConfig(rank=2, cluster=cluster)
        assert config.resolved_cluster() is cluster

    def test_dbtf_config_rejects_bad_backend(self):
        with pytest.raises(ValueError):
            DbtfConfig(rank=2, backend="mpi")
        with pytest.raises(ValueError):
            DbtfConfig(rank=2, n_workers=-1)

    def test_runtime_backend_instance_override(self):
        backend = SerialBackend()
        runtime = SimulatedRuntime(ClusterConfig(backend="thread"), backend=backend)
        assert runtime.backend is backend


class TestStableHash:
    def test_deterministic_per_type(self):
        assert stable_hash(("a", 3)) == stable_hash(("a", 3))
        assert stable_hash(42) == stable_hash(np.int64(42))
        assert stable_hash("x") != stable_hash(b"x")
        assert stable_hash(("ab", "c")) != stable_hash(("a", "bc"))

    def test_spread_over_buckets(self):
        buckets = {stable_hash(("mode", i)) % 8 for i in range(256)}
        assert len(buckets) == 8

    def test_independent_of_hash_seed(self):
        """The same key lands in the same bucket under any PYTHONHASHSEED."""
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        code = (
            "from repro.distengine import stable_hash; "
            "print(stable_hash(('a', 3, b'z')))"
        )
        outputs = set()
        for seed in ("0", "4242"):
            env = {**os.environ, "PYTHONHASHSEED": seed,
                   "PYTHONPATH": src + os.pathsep + os.environ.get("PYTHONPATH", "")}
            outputs.add(
                subprocess.run(
                    [sys.executable, "-c", code],
                    env=env, capture_output=True, text=True, check=True,
                ).stdout.strip()
            )
        assert len(outputs) == 1


class TestShuffleEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reduce_by_key_matches_serial(self, backend):
        def run(name):
            runtime = _runtime(name)
            try:
                pairs = [((i % 5, "k"), i) for i in range(40)]
                rdd = runtime.parallelize(pairs, n_partitions=4)
                reduced = rdd.reduce_by_key(operator.add, n_partitions=3)
                return (
                    reduced.glom(),
                    runtime.ledger.bytes_of_kind("shuffle"),
                    [stage.name for stage in runtime.stages],
                )
            finally:
                runtime.close()

        assert run(backend) == run("serial")


class TestDbtfEquivalence:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        dim=st.integers(min_value=6, max_value=14),
        rank=st.integers(min_value=1, max_value=3),
    )
    def test_backends_bit_identical(self, seed, dim, rank):
        """Property: all backends agree on factors, traces, and ledgers."""
        rng = np.random.default_rng(seed)
        tensor, _ = planted_tensor((dim, dim, dim), rank=rank,
                                   factor_density=0.3, rng=rng)
        prints = {
            backend: _dbtf_fingerprint(
                tensor, backend, rank=rank, seed=seed, n_partitions=3,
                max_iterations=2,
            )
            for backend in BACKENDS
        }
        assert prints["thread"] == prints["serial"]
        assert prints["process"] == prints["serial"]

    def test_fault_retry_counts_survive_parallelism(self):
        rng = np.random.default_rng(3)
        tensor, _ = planted_tensor((10, 10, 10), rank=2, factor_density=0.3,
                                   rng=rng)
        injector = FaultInjector(failure_rate=0.15, max_retries=10, seed=5)
        prints = {
            backend: _dbtf_fingerprint(
                tensor, backend, fault_injector=injector, rank=2, seed=1,
                n_partitions=4, max_iterations=2,
            )
            for backend in BACKENDS
        }
        assert prints["thread"] == prints["serial"]
        assert prints["process"] == prints["serial"]
        assert sum(prints["serial"][-1].values()) > 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_retry_exhaustion_raises_under_parallel_backends(self, backend):
        runtime = SimulatedRuntime(
            ClusterConfig(n_machines=2, cores_per_machine=2, backend=backend,
                          n_workers=2),
            fault_injector=FaultInjector(failure_rate=0.9, max_retries=0,
                                         seed=0),
        )
        try:
            rdd = runtime.parallelize(list(range(20)), n_partitions=10)
            with pytest.raises(TaskFailedError):
                rdd.map_partitions_with_index(_square_partition).collect()
        finally:
            runtime.close()


class TestExtensionsUnderBackends:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_tucker_distributed_matches_serial(self, backend):
        from repro.tucker import BooleanTuckerConfig
        from repro.tucker.distributed import dbtf_tucker

        rng = np.random.default_rng(1)
        tensor, _ = planted_tensor((8, 8, 8), rank=2, factor_density=0.3,
                                   rng=rng)
        config = BooleanTuckerConfig(core_shape=(2, 2, 2), max_iterations=2)

        def run(name):
            result = dbtf_tucker(tensor, config=config, n_partitions=3,
                                 backend=name, n_workers=2)
            return (
                tuple(f.words.tobytes() for f in result.factors),
                result.core.coords.tobytes(),
                result.errors_per_iteration,
            )

        assert run(backend) == run("serial")

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_nway_restarts_match_serial(self, backend):
        from repro.nway import NwayCpConfig, cp_nway

        rng = np.random.default_rng(2)
        tensor, _ = planted_tensor((8, 8, 8), rank=2, factor_density=0.3,
                                   rng=rng)

        def run(name):
            config = NwayCpConfig(rank=2, max_iterations=2, n_initial_sets=3,
                                  seed=7, backend=name, n_workers=2)
            result = cp_nway(tensor, config=config)
            return (
                tuple(f.words.tobytes() for f in result.factors),
                result.error,
                result.errors_per_iteration,
            )

        assert run(backend) == run("serial")


class TestOwnershipBoundary:
    def test_from_partitions_copies_at_ingestion(self):
        runtime = SimulatedRuntime(ClusterConfig(n_machines=1,
                                                 cores_per_machine=1))
        source = [[1, 2], [3]]
        rdd = runtime.from_partitions(source)
        source[0].append(99)
        assert rdd.collect() == [1, 2, 3]

    def test_stages_hand_over_fresh_lists(self):
        """Cached stage outputs are owned by the new collection — even an
        identity ``map_partitions`` must not alias the source's lists."""
        runtime = SimulatedRuntime(ClusterConfig(n_machines=1,
                                                 cores_per_machine=1))
        rdd = runtime.parallelize(list(range(6)), n_partitions=2)
        mapped = rdd.map_partitions(lambda items: items).persist()
        mapped.count()  # materialize the cache
        assert mapped.node.cached is not rdd.node.cached
        assert all(a is not b
                   for a, b in zip(mapped.node.cached, rdd.node.cached))
