"""Tests for the content-addressed memmap unfolding store."""

import os

import numpy as np
import pytest

from repro.storage import MmapUnfoldingStore
from repro.storage.mmap_store import HEADER_BYTES
from repro.tensor import PackedUnfolding, random_tensor, unfold


def _packed(mode: int = 0, seed: int = 3) -> PackedUnfolding:
    tensor = random_tensor((6, 7, 8), density=0.2,
                           rng=np.random.default_rng(seed))
    return PackedUnfolding(unfold(tensor, mode))


class TestSaveLoadRoundTrip:
    def test_words_and_metadata_survive(self, tmp_path):
        packed = _packed()
        with MmapUnfoldingStore(str(tmp_path)) as store:
            loaded = store.load(store.save(packed))
            assert loaded.mode == packed.mode
            assert loaded.n_rows == packed.n_rows
            assert loaded.block_count == packed.block_count
            assert loaded.block_width == packed.block_width
            assert loaded.n_words == packed.n_words
            assert np.array_equal(np.asarray(loaded.words), packed.words)

    def test_loaded_words_are_read_only_memmap(self, tmp_path):
        with MmapUnfoldingStore(str(tmp_path)) as store:
            loaded = store.flush(_packed())
            base = loaded.words
            while base.base is not None and not isinstance(base, np.memmap):
                base = base.base
            assert isinstance(base, np.memmap)
            with pytest.raises((ValueError, OSError)):
                loaded.words[0, 0, 0] = np.uint64(1)

    def test_all_modes_round_trip(self, tmp_path):
        with MmapUnfoldingStore(str(tmp_path)) as store:
            for mode in range(3):
                packed = _packed(mode)
                loaded = store.flush(packed)
                assert np.array_equal(np.asarray(loaded.words), packed.words)


class TestContentAddressing:
    def test_identical_content_maps_to_one_file(self, tmp_path):
        with MmapUnfoldingStore(str(tmp_path)) as store:
            path_a = store.save(_packed(seed=3))
            mtime = os.path.getmtime(path_a)
            path_b = store.save(_packed(seed=3))
            assert path_a == path_b
            assert os.path.getmtime(path_a) == mtime  # no rewrite

    def test_different_content_maps_to_different_files(self, tmp_path):
        with MmapUnfoldingStore(str(tmp_path)) as store:
            assert store.save(_packed(seed=3)) != store.save(_packed(seed=4))

    def test_no_stray_tmp_files(self, tmp_path):
        with MmapUnfoldingStore(str(tmp_path)) as store:
            store.save(_packed())
            assert all(name.endswith(".unf") for name in os.listdir(tmp_path))


class TestCorruptionDetection:
    def test_truncated_file_rejected(self, tmp_path):
        store = MmapUnfoldingStore(str(tmp_path))
        path = store.save(_packed())
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 8)
        with pytest.raises(ValueError, match="truncated or corrupt"):
            store.load(path)

    def test_bad_magic_rejected(self, tmp_path):
        store = MmapUnfoldingStore(str(tmp_path))
        path = store.save(_packed())
        with open(path, "r+b") as handle:
            handle.write(b'{"magic": "something-else-entirely"}'.ljust(
                HEADER_BYTES))
        with pytest.raises(ValueError, match="magic"):
            store.load(path)

    def test_garbage_header_rejected(self, tmp_path):
        store = MmapUnfoldingStore(str(tmp_path))
        path = os.path.join(str(tmp_path), "junk.unf")
        with open(path, "wb") as handle:
            handle.write(b"\xff" * (HEADER_BYTES + 8))
        with pytest.raises(ValueError, match="malformed header"):
            store.load(path)

    def test_headerless_file_rejected(self, tmp_path):
        store = MmapUnfoldingStore(str(tmp_path))
        path = os.path.join(str(tmp_path), "short.unf")
        with open(path, "wb") as handle:
            handle.write(b"tiny")
        with pytest.raises(ValueError, match="complete header"):
            store.load(path)


class TestDirectoryOwnership:
    def test_owned_temp_directory_removed_on_close(self):
        store = MmapUnfoldingStore()
        directory = store.directory
        store.save(_packed())
        store.close()
        assert not os.path.exists(directory)

    def test_explicit_directory_left_in_place(self, tmp_path):
        store = MmapUnfoldingStore(str(tmp_path))
        path = store.save(_packed())
        store.close()
        assert os.path.exists(path)


class TestFromWords:
    def test_wrong_shape_rejected(self):
        packed = _packed()
        with pytest.raises(ValueError):
            PackedUnfolding.from_words(
                packed.mode, packed.n_rows + 1, packed.block_count,
                packed.block_width, packed.words,
            )

    def test_wrong_dtype_rejected(self):
        packed = _packed()
        with pytest.raises(ValueError):
            PackedUnfolding.from_words(
                packed.mode, packed.n_rows, packed.block_count,
                packed.block_width, packed.words.astype(np.int64),
            )

    def test_equivalent_to_packing(self):
        packed = _packed()
        rebuilt = PackedUnfolding.from_words(
            packed.mode, packed.n_rows, packed.block_count,
            packed.block_width, packed.words,
        )
        assert np.array_equal(rebuilt.words, packed.words)
        assert rebuilt.n_cols == packed.n_cols
