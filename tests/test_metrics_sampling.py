"""Unit tests for sampling-based error estimation."""

import numpy as np
import pytest

from repro.metrics import estimate_reconstruction_error, reconstruction_error
from repro.tensor import planted_tensor, random_factors, random_tensor


class TestEstimateReconstructionError:
    def test_zero_error_estimated_as_zero(self):
        rng = np.random.default_rng(0)
        tensor, factors = planted_tensor((10, 10, 10), rank=2, factor_density=0.4,
                                         rng=rng)
        estimate = estimate_reconstruction_error(tensor, factors, 500, rng)
        assert estimate.estimate == 0.0
        assert estimate.disagreements == 0

    def test_estimate_close_to_exact(self):
        rng = np.random.default_rng(1)
        tensor = random_tensor((12, 12, 12), 0.15, rng)
        factors = random_factors((12, 12, 12), 3, 0.3, rng)
        exact = reconstruction_error(tensor, factors)
        estimate = estimate_reconstruction_error(tensor, factors, 20000, rng)
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= exact <= high

    def test_std_error_shrinks_with_samples(self):
        rng = np.random.default_rng(2)
        tensor = random_tensor((10, 10, 10), 0.2, rng)
        factors = random_factors((10, 10, 10), 2, 0.3, rng)
        small = estimate_reconstruction_error(tensor, factors, 200,
                                              np.random.default_rng(3))
        large = estimate_reconstruction_error(tensor, factors, 20000,
                                              np.random.default_rng(3))
        assert large.std_error < small.std_error

    def test_empty_tensor_zero_factors(self):
        from repro.tensor import SparseBoolTensor

        rng = np.random.default_rng(4)
        tensor = SparseBoolTensor.empty((5, 5, 5))
        factors = random_factors((5, 5, 5), 2, 0.0, rng)
        estimate = estimate_reconstruction_error(tensor, factors, 100, rng)
        assert estimate.estimate == 0.0

    def test_invalid_sample_count(self):
        rng = np.random.default_rng(5)
        tensor = random_tensor((4, 4, 4), 0.2, rng)
        factors = random_factors((4, 4, 4), 1, 0.5, rng)
        with pytest.raises(ValueError):
            estimate_reconstruction_error(tensor, factors, 0, rng)

    def test_confidence_interval_non_negative(self):
        rng = np.random.default_rng(6)
        tensor = random_tensor((6, 6, 6), 0.3, rng)
        factors = random_factors((6, 6, 6), 2, 0.2, rng)
        estimate = estimate_reconstruction_error(tensor, factors, 50, rng)
        low, high = estimate.confidence_interval()
        assert 0.0 <= low <= high
