"""Unit tests for Boolean tensor algebra (outer products, reconstruction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import BitMatrix
from repro.tensor import (
    outer_product,
    random_factors,
    rank_one_coords,
    reconstruct_dense,
    tensor_from_factors,
    validate_factors,
)


class TestOuterProduct:
    def test_single_entry(self):
        tensor = outer_product([1, 0], [0, 1], [0, 0, 1])
        assert tensor.shape == (2, 2, 3)
        assert tensor.nnz == 1
        assert (0, 1, 2) in tensor

    def test_full_block(self):
        tensor = outer_product([1, 1], [1, 1], [1, 1])
        assert tensor.nnz == 8

    def test_empty_vector_gives_empty_tensor(self):
        tensor = outer_product([0, 0], [1, 1], [1, 1])
        assert tensor.nnz == 0

    def test_matches_dense_outer(self):
        rng = np.random.default_rng(5)
        a = (rng.random(4) < 0.5).astype(np.uint8)
        b = (rng.random(5) < 0.5).astype(np.uint8)
        c = (rng.random(6) < 0.5).astype(np.uint8)
        expected = np.einsum("i,j,k->ijk", a, b, c)
        np.testing.assert_array_equal(outer_product(a, b, c).to_dense(), expected)

    def test_rank_one_coords_count(self):
        coords = rank_one_coords(
            np.array([1, 1, 0]), np.array([1, 0]), np.array([1, 1, 1])
        )
        assert coords.shape == (2 * 1 * 3, 3)


class TestTensorFromFactors:
    def test_boolean_sum_not_integer_sum(self):
        # Two components covering the same cell must give 1, not 2.
        a = BitMatrix.from_dense(np.array([[1, 1]], dtype=np.uint8))
        b = BitMatrix.from_dense(np.array([[1, 1]], dtype=np.uint8))
        c = BitMatrix.from_dense(np.array([[1, 1]], dtype=np.uint8))
        tensor = tensor_from_factors((a, b, c))
        assert tensor.nnz == 1

    def test_matches_dense_reconstruction(self):
        rng = np.random.default_rng(6)
        factors = random_factors((4, 5, 6), rank=3, density=0.4, rng=rng)
        tensor = tensor_from_factors(factors)
        np.testing.assert_array_equal(tensor.to_dense(), reconstruct_dense(factors))

    def test_rank_mismatch_rejected(self):
        a = BitMatrix.zeros(2, 3)
        b = BitMatrix.zeros(2, 2)
        c = BitMatrix.zeros(2, 3)
        with pytest.raises(ValueError):
            tensor_from_factors((a, b, c))

    def test_validate_factors_returns_rank(self):
        factors = (BitMatrix.zeros(2, 5), BitMatrix.zeros(3, 5), BitMatrix.zeros(4, 5))
        assert validate_factors(factors) == 5

    def test_zero_factors_give_empty_tensor(self):
        factors = (BitMatrix.zeros(2, 2), BitMatrix.zeros(3, 2), BitMatrix.zeros(4, 2))
        assert tensor_from_factors(factors).nnz == 0

    @given(
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(1, 5),
        st.integers(1, 4),
        st.integers(0, 999),
    )
    @settings(max_examples=30, deadline=None)
    def test_reconstruction_property(self, i, j, k, rank, seed):
        rng = np.random.default_rng(seed)
        factors = random_factors((i, j, k), rank=rank, density=0.5, rng=rng)
        sparse = tensor_from_factors(factors)
        np.testing.assert_array_equal(sparse.to_dense(), reconstruct_dense(factors))

    @given(st.integers(0, 999))
    @settings(max_examples=20, deadline=None)
    def test_boolean_rank_monotonicity(self, seed):
        # Adding components can only add nonzeros (Boolean sum is monotone).
        rng = np.random.default_rng(seed)
        factors = random_factors((4, 4, 4), rank=4, density=0.4, rng=rng)
        full = tensor_from_factors(factors)

        def truncate(matrix, rank):
            return BitMatrix.from_dense(matrix.to_dense()[:, :rank])

        partial = tensor_from_factors(tuple(truncate(f, 2) for f in factors))
        assert partial.minus(full).nnz == 0
