"""Unit tests for BitMatrix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitops import BitMatrix


def random_dense(n_rows, n_cols, seed, density=0.5):
    rng = np.random.default_rng(seed)
    return (rng.random((n_rows, n_cols)) < density).astype(np.uint8)


class TestConstruction:
    def test_from_dense_round_trip(self):
        dense = random_dense(6, 70, seed=1)
        matrix = BitMatrix.from_dense(dense)
        assert matrix.shape == (6, 70)
        np.testing.assert_array_equal(matrix.to_dense(), dense)

    def test_zeros(self):
        matrix = BitMatrix.zeros(4, 9)
        assert matrix.count_nonzeros() == 0
        assert matrix.shape == (4, 9)

    def test_identity(self):
        matrix = BitMatrix.identity(5)
        np.testing.assert_array_equal(matrix.to_dense(), np.eye(5, dtype=np.uint8))

    def test_random_density(self):
        rng = np.random.default_rng(0)
        matrix = BitMatrix.random(200, 200, 0.3, rng)
        assert 0.25 < matrix.density() < 0.35

    def test_random_invalid_density(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            BitMatrix.random(2, 2, 1.5, rng)

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            BitMatrix(-1, 3)

    def test_bad_words_shape_rejected(self):
        with pytest.raises(ValueError):
            BitMatrix(2, 64, np.zeros((2, 2), dtype=np.uint64))

    def test_copy_is_independent(self):
        matrix = BitMatrix.from_dense(random_dense(3, 10, seed=2))
        clone = matrix.copy()
        clone.set(0, 0, 1 - clone.get(0, 0))
        assert matrix != clone


class TestElementAccess:
    def test_get_set(self):
        matrix = BitMatrix.zeros(3, 100)
        matrix.set(2, 99, 1)
        assert matrix.get(2, 99) == 1
        matrix.set(2, 99, 0)
        assert matrix.get(2, 99) == 0

    def test_out_of_bounds(self):
        matrix = BitMatrix.zeros(3, 4)
        with pytest.raises(IndexError):
            matrix.get(3, 0)
        with pytest.raises(IndexError):
            matrix.set(0, 4, 1)

    def test_column_round_trip(self):
        dense = random_dense(8, 5, seed=3)
        matrix = BitMatrix.from_dense(dense)
        for col in range(5):
            np.testing.assert_array_equal(matrix.column(col), dense[:, col])

    def test_set_column(self):
        matrix = BitMatrix.zeros(6, 10)
        values = np.array([1, 0, 1, 1, 0, 1], dtype=np.uint8)
        matrix.set_column(7, values)
        np.testing.assert_array_equal(matrix.column(7), values)
        # Neighbouring columns untouched.
        assert matrix.column(6).sum() == 0
        assert matrix.column(8).sum() == 0

    def test_set_column_wrong_length(self):
        matrix = BitMatrix.zeros(6, 10)
        with pytest.raises(ValueError):
            matrix.set_column(0, np.ones(5, dtype=np.uint8))

    def test_row_mask(self):
        matrix = BitMatrix.from_dense(np.array([[1, 0, 1, 1]], dtype=np.uint8))
        assert matrix.row_mask(0) == 0b1101

    def test_row_mask_beyond_64_bits(self):
        dense = np.zeros((1, 70), dtype=np.uint8)
        dense[0, 69] = 1
        dense[0, 0] = 1
        matrix = BitMatrix.from_dense(dense)
        assert matrix.row_mask(0) == (1 << 69) | 1

    def test_row_masks(self):
        dense = np.array([[1, 0], [0, 1], [1, 1]], dtype=np.uint8)
        assert BitMatrix.from_dense(dense).row_masks() == [1, 2, 3]


class TestBooleanOps:
    def test_or_and_xor(self):
        left = BitMatrix.from_dense(np.array([[1, 0, 1]], dtype=np.uint8))
        right = BitMatrix.from_dense(np.array([[0, 0, 1]], dtype=np.uint8))
        np.testing.assert_array_equal(left.boolean_or(right).to_dense(), [[1, 0, 1]])
        np.testing.assert_array_equal(left.boolean_and(right).to_dense(), [[0, 0, 1]])
        np.testing.assert_array_equal(left.xor(right).to_dense(), [[1, 0, 0]])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            BitMatrix.zeros(2, 3).boolean_or(BitMatrix.zeros(3, 2))

    def test_hamming_distance(self):
        left = BitMatrix.from_dense(random_dense(5, 33, seed=4))
        right = BitMatrix.from_dense(random_dense(5, 33, seed=5))
        expected = int((left.to_dense() != right.to_dense()).sum())
        assert left.hamming_distance(right) == expected

    def test_or_rows_matches_dense(self):
        dense = random_dense(6, 100, seed=6)
        matrix = BitMatrix.from_dense(dense)
        combined = matrix.or_rows([0, 2, 5])
        expected = (dense[[0, 2, 5]].sum(axis=0) > 0).astype(np.uint8)
        from repro.bitops import packing

        np.testing.assert_array_equal(packing.unpack_bits(combined, 100), expected)

    def test_or_rows_empty_selection(self):
        matrix = BitMatrix.from_dense(random_dense(3, 10, seed=7))
        assert matrix.or_rows([]).sum() == 0

    def test_transpose(self):
        dense = random_dense(4, 9, seed=8)
        np.testing.assert_array_equal(
            BitMatrix.from_dense(dense).transpose().to_dense(), dense.T
        )

    @given(st.integers(1, 20), st.integers(1, 130), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_or_is_commutative_idempotent(self, n_rows, n_cols, seed):
        left = BitMatrix.from_dense(random_dense(n_rows, n_cols, seed))
        right = BitMatrix.from_dense(random_dense(n_rows, n_cols, seed + 1))
        assert left.boolean_or(right) == right.boolean_or(left)
        assert left.boolean_or(left) == left


class TestDunder:
    def test_equality(self):
        dense = random_dense(3, 7, seed=10)
        assert BitMatrix.from_dense(dense) == BitMatrix.from_dense(dense)
        assert BitMatrix.from_dense(dense) != BitMatrix.zeros(3, 7)

    def test_equality_other_type(self):
        assert BitMatrix.zeros(1, 1) != "not a matrix"

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(BitMatrix.zeros(1, 1))

    def test_repr(self):
        assert "BitMatrix(2x3" in repr(BitMatrix.zeros(2, 3))
