"""Epoch-stream (delta) jobs through the FactorizationService."""

import numpy as np
import pytest

from repro import FactorizationSession
from repro.core import DbtfConfig
from repro.incremental import SessionResult
from repro.service import (
    FactorizationService,
    JobSpec,
    JobState,
    ServiceConfig,
)
from repro.tensor import SparseBoolTensor, TensorDelta, planted_tensor


def make_tensor(seed=0, dim=10):
    tensor, _ = planted_tensor(
        (dim, dim, dim), rank=3, factor_density=0.3,
        rng=np.random.default_rng(seed),
    )
    return tensor


def make_deltas(tensor, n_epochs=2, seed=1, n_changes=4):
    rng = np.random.default_rng(seed)
    deltas = []
    current = tensor
    for _ in range(n_epochs):
        coords = current.coords
        removed = coords[
            rng.choice(len(coords), size=n_changes // 2, replace=False)
        ]
        present = {tuple(int(x) for x in cell) for cell in coords}
        added = []
        while len(added) < n_changes - len(removed):
            cell = tuple(
                int(rng.integers(0, dim)) for dim in current.shape
            )
            if cell not in present:
                present.add(cell)
                added.append(cell)
        delta = TensorDelta.from_coords(
            current.shape, np.array(added, dtype=np.int64), removed
        )
        deltas.append(delta)
        current = current.apply_delta(delta)
    return deltas


def make_spec(tensor, deltas, tenant="acme", **kwargs):
    kwargs.setdefault("rank", 3)
    kwargs.setdefault("max_iterations", 3)
    return JobSpec(tenant=tenant, tensor=tensor, deltas=deltas, **kwargs)


class TestSpecValidation:
    def test_deltas_change_job_id(self):
        tensor = make_tensor()
        deltas = make_deltas(tensor)
        batch = JobSpec(tenant="a", tensor=tensor, rank=3, max_iterations=3)
        epochs = make_spec(tensor, deltas, tenant="a")
        assert batch.job_id != epochs.job_id
        assert epochs.job_id == make_spec(tensor, deltas, tenant="a").job_id
        assert epochs.job_id != make_spec(
            tensor, deltas[:1], tenant="a"
        ).job_id

    def test_deltas_require_dbtf(self):
        tensor = make_tensor()
        deltas = make_deltas(tensor)
        with pytest.raises(ValueError, match="dbtf"):
            make_spec(tensor, deltas, method="tucker")

    def test_delta_shape_must_match_tensor(self):
        tensor = make_tensor()
        with pytest.raises(ValueError, match="shape"):
            make_spec(tensor, [TensorDelta.empty((2, 2, 2))])

    def test_non_delta_entries_rejected(self):
        tensor = make_tensor()
        with pytest.raises(ValueError):
            make_spec(tensor, ["not a delta"])


class TestEpochJobs:
    def test_drain_returns_session_result(self):
        tensor = make_tensor()
        deltas = make_deltas(tensor)
        with FactorizationService() as service:
            job_id = service.submit(make_spec(tensor, deltas)).job_id
            statuses = service.drain()
            result = service.result(job_id)
        assert [s.state for s in statuses] == [JobState.DONE]
        assert isinstance(result, SessionResult)
        assert len(result.epochs) == len(deltas) + 1
        assert result.final.epoch == len(deltas)

    def test_matches_direct_session(self):
        tensor = make_tensor()
        deltas = make_deltas(tensor)
        with FactorizationService() as service:
            job_id = service.submit(make_spec(tensor, deltas)).job_id
            service.drain()
            served = service.result(job_id)
        config = DbtfConfig(
            rank=3, max_iterations=3, seed=0,
            cluster=ServiceConfig().cluster,
        )
        with FactorizationSession(tensor, config) as session:
            direct = session.run(deltas)
        assert served.errors_per_epoch == direct.errors_per_epoch
        for mine, theirs in zip(served.epochs, direct.epochs):
            for a, b in zip(mine.result.factors, theirs.result.factors):
                assert np.array_equal(a.words, b.words)

    def test_epoch_and_batch_jobs_coexist(self):
        tensor = make_tensor()
        deltas = make_deltas(tensor)
        with FactorizationService() as service:
            epochs = service.submit(make_spec(tensor, deltas)).job_id
            batch = service.submit(
                JobSpec(tenant="b", tensor=tensor, rank=3, max_iterations=3)
            ).job_id
            statuses = {s.job_id: s for s in service.drain()}
            assert statuses[epochs].state is JobState.DONE
            assert statuses[batch].state is JobState.DONE
            assert isinstance(service.result(epochs), SessionResult)
            assert not isinstance(service.result(batch), SessionResult)

    def test_no_leases_leak(self):
        tensor = make_tensor()
        deltas = make_deltas(tensor)
        with FactorizationService() as service:
            service.submit(make_spec(tensor, deltas))
            service.drain()
            assert service.factory.open_leases == 0

    def test_bad_delta_stream_fails_alone(self):
        # The second delta re-removes the first's cells: valid shape-wise,
        # but inconsistent with the evolved tensor — the job must fail
        # without taking the sibling down.
        tensor = make_tensor()
        first = make_deltas(tensor, n_epochs=1)[0]
        bad = [first, first]
        with FactorizationService() as service:
            failing = service.submit(make_spec(tensor, bad)).job_id
            good = service.submit(
                JobSpec(tenant="b", tensor=tensor, rank=3, max_iterations=2)
            ).job_id
            statuses = {s.job_id: s for s in service.drain()}
        assert statuses[failing].state is JobState.FAILED
        assert statuses[good].state is JobState.DONE


class TestEpochCheckpoints:
    def test_per_epoch_dirs_pruned(self, tmp_path):
        tensor = make_tensor()
        deltas = make_deltas(tensor, n_epochs=3)
        config = ServiceConfig(checkpoint_root=tmp_path, keep_last=2)
        with FactorizationService(config) as service:
            job_id = service.submit(make_spec(tensor, deltas)).job_id
            service.drain()
        names = sorted(p.name for p in (tmp_path / job_id).glob("epoch-*"))
        assert names == ["epoch-0002", "epoch-0003"]

    def test_kill_and_resubmit_bit_identical(self, tmp_path):
        tensor = make_tensor()
        deltas = make_deltas(tensor, n_epochs=2)
        spec_kwargs = dict(max_iterations=4)

        def run(root, kill_after=None):
            config = ServiceConfig(checkpoint_root=root, keep_last=8)
            service = FactorizationService(config)
            try:
                job_id = service.submit(
                    make_spec(tensor, deltas, **spec_kwargs)
                ).job_id
                if kill_after is not None:
                    for _ in range(kill_after):
                        if not service.step():
                            break
                    return None
                service.drain()
                return service.result(job_id)
            finally:
                service.close()

        baseline = run(tmp_path / "baseline")
        assert run(tmp_path / "killed", kill_after=4) is None
        resumed = run(tmp_path / "killed")
        assert resumed.errors_per_epoch == baseline.errors_per_epoch
        for mine, theirs in zip(resumed.epochs, baseline.epochs):
            assert mine.result.errors_per_iteration == (
                theirs.result.errors_per_iteration
            )
            for a, b in zip(mine.result.factors, theirs.result.factors):
                assert np.array_equal(a.words, b.words)
