"""End-to-end integration tests across the whole library."""

import numpy as np
import pytest

from repro import dbtf, planted_tensor
from repro.baselines import WalkNMergeConfig, bcp_als, walk_n_merge
from repro.datasets import load_dataset
from repro.metrics import (
    coverage_stats,
    description_length,
    factor_match_score,
    reconstruction_error,
)


class TestFullPipeline:
    def test_generate_factorize_evaluate_roundtrip(self, tmp_path):
        """The full user journey: generate -> save -> load -> factorize ->
        evaluate -> persist factors -> reload -> same error."""
        from repro.tensor import load_factors, load_tensor, save_factors, save_tensor

        rng = np.random.default_rng(0)
        tensor, planted = planted_tensor((20, 20, 20), rank=3,
                                         factor_density=0.3, rng=rng)
        tensor_path = tmp_path / "data.tns"
        save_tensor(tensor, tensor_path)
        loaded = load_tensor(tensor_path)
        assert loaded == tensor

        result = dbtf(loaded, rank=3, seed=0, n_initial_sets=4, n_partitions=4)
        assert result.error == reconstruction_error(tensor, result.factors)

        save_factors(result.factors, tmp_path / "factors")
        reloaded = load_factors(tmp_path / "factors")
        assert reconstruction_error(tensor, reloaded) == result.error

        stats = coverage_stats(tensor, reloaded)
        assert 0 <= stats["precision"] <= 1
        assert 0 <= stats["recall"] <= 1
        assert description_length(tensor, reloaded) > 0
        assert 0 <= factor_match_score(reloaded, planted) <= 1

    def test_three_methods_on_same_dataset(self):
        """All three paper methods run on a Table III stand-in and produce
        valid factorizations of the same tensor."""
        tensor = load_dataset("facebook", seed=0)
        dbtf_result = dbtf(tensor, rank=6, seed=0, n_partitions=8,
                           max_iterations=3, n_initial_sets=2)
        wnm_result = walk_n_merge(
            tensor, rank=6,
            config=WalkNMergeConfig(density_threshold=0.6, seed=0),
        )
        bcp_result = bcp_als(tensor, rank=6, max_iterations=3,
                             memory_budget_bytes=2**30)
        for result in (dbtf_result, wnm_result, bcp_result):
            assert result.error == reconstruction_error(tensor, result.factors)
            assert result.error <= tensor.nnz
        # DBTF should find real structure in the blocky stand-in.
        assert dbtf_result.relative_error < 0.8

    @pytest.mark.slow
    def test_dbtf_scales_to_hundred_thousand_nonzeros(self):
        from repro.datasets import scalability_tensor

        tensor = scalability_tensor(8, 0.01, seed=0)  # ~168K nonzeros
        result = dbtf(tensor, rank=5, seed=0, n_partitions=16, max_iterations=2)
        assert result.error <= tensor.nnz
        assert result.report.simulated_time > 0

    def test_mdl_and_tucker_agree_on_structure(self):
        """Rank selection + Tucker on the same planted tensor."""
        from repro.metrics import select_rank
        from repro.tucker import BooleanTuckerConfig, boolean_tucker

        rng = np.random.default_rng(1)
        tensor, _ = planted_tensor((16, 16, 16), rank=2, factor_density=0.4,
                                   rng=rng)
        selection = select_rank(tensor, ranks=(1, 2, 4))
        assert selection.best_rank == 2
        tucker_result = boolean_tucker(
            tensor,
            config=BooleanTuckerConfig(core_shape=(2, 2, 2), n_initial_sets=4),
        )
        assert tucker_result.relative_error < 0.5
