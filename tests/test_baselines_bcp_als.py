"""Unit and integration tests for the BCP_ALS baseline."""

import numpy as np
import pytest

from repro.baselines import MemoryBudgetExceeded, bcp_als, update_factor_uncached
from repro.bitops import BitMatrix
from repro.tensor import (
    SparseBoolTensor,
    planted_tensor,
    random_factors,
    reconstruct_dense,
    tensor_from_factors,
    unfold,
)


class TestUpdateFactorUncached:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        factors = random_factors((4, 5, 6), rank=3, density=0.4, rng=rng)
        tensor = tensor_from_factors(factors)
        unfolded = BitMatrix.from_dense(unfold(tensor, 0).to_dense())
        start = list(random_factors((4, 5, 6), rank=3, density=0.5,
                                    rng=np.random.default_rng(1)))
        updated, error = update_factor_uncached(
            unfolded, start[0], start[2], start[1]
        )
        start[0] = updated
        brute = int((reconstruct_dense(tuple(start)) != tensor.to_dense()).sum())
        assert error == brute

    def test_agrees_with_dbtf_update(self):
        # The cached (DBTF) and uncached (BCP_ALS) updates implement the
        # same greedy rule and must produce identical factors.
        from repro.core import DbtfConfig, prepare_partitioned_unfoldings, update_factor
        from repro.distengine import SimulatedRuntime

        rng = np.random.default_rng(2)
        factors = random_factors((6, 5, 7), rank=4, density=0.4, rng=rng)
        tensor = tensor_from_factors(factors)
        start = random_factors((6, 5, 7), rank=4, density=0.5,
                               rng=np.random.default_rng(3))

        unfolded = BitMatrix.from_dense(unfold(tensor, 0).to_dense())
        uncached_factor, uncached_error = update_factor_uncached(
            unfolded, start[0], start[2], start[1]
        )

        runtime = SimulatedRuntime()
        rdds = prepare_partitioned_unfoldings(tensor, 3, runtime)
        config = DbtfConfig(rank=4, n_partitions=3)
        cached_factor, cached_error = update_factor(
            rdds[0], start[0], start[2], start[1], config, runtime
        )
        assert uncached_factor == cached_factor
        assert uncached_error == cached_error


class TestBcpAls:
    def test_recovers_clean_planted_tensor(self):
        rng = np.random.default_rng(4)
        tensor, _ = planted_tensor((24, 24, 24), rank=4, factor_density=0.25, rng=rng)
        result = bcp_als(tensor, rank=4)
        assert result.relative_error < 0.05

    def test_error_matches_reconstruction(self):
        rng = np.random.default_rng(5)
        tensor, _ = planted_tensor((12, 12, 12), rank=3, factor_density=0.3, rng=rng)
        result = bcp_als(tensor, rank=3)
        assert result.error == tensor.hamming_distance(result.reconstruct())

    def test_errors_monotone(self):
        rng = np.random.default_rng(6)
        tensor, _ = planted_tensor((12, 12, 12), rank=3, factor_density=0.3, rng=rng,
                                   additive_noise=0.2)
        result = bcp_als(tensor, rank=3)
        errors = result.errors_per_iteration
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_factor_shapes(self):
        rng = np.random.default_rng(7)
        tensor, _ = planted_tensor((8, 9, 10), rank=2, factor_density=0.3, rng=rng)
        result = bcp_als(tensor, rank=2)
        assert result.factors[0].shape == (8, 2)
        assert result.factors[1].shape == (9, 2)
        assert result.factors[2].shape == (10, 2)

    def test_memory_budget_propagates(self):
        rng = np.random.default_rng(8)
        tensor, _ = planted_tensor((8, 8, 8), rank=2, factor_density=0.3, rng=rng)
        with pytest.raises(MemoryBudgetExceeded):
            bcp_als(tensor, rank=2, memory_budget_bytes=64)

    def test_method_name(self):
        rng = np.random.default_rng(9)
        tensor, _ = planted_tensor((8, 8, 8), rank=2, factor_density=0.3, rng=rng)
        assert bcp_als(tensor, rank=2).method == "BCP_ALS"

    @pytest.mark.parametrize(
        "kwargs", [{"rank": 0}, {"rank": 2, "max_iterations": 0}]
    )
    def test_invalid_arguments(self, kwargs):
        tensor = SparseBoolTensor.empty((4, 4, 4))
        with pytest.raises(ValueError):
            bcp_als(tensor, **kwargs)

    def test_non_three_way_rejected(self):
        with pytest.raises(ValueError):
            bcp_als(SparseBoolTensor.empty((2, 2)), rank=1)

    def test_empty_tensor(self):
        result = bcp_als(SparseBoolTensor.empty((4, 4, 4)), rank=2)
        assert result.error == 0
